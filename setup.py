"""Setup shim so ``pip install -e .`` works without the ``wheel`` package.

The environment is offline and its setuptools cannot build editable
wheels (no ``bdist_wheel``); ``python setup.py develop`` / legacy
editable installs go through this shim instead.
"""

from setuptools import setup

setup()
