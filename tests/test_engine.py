"""Tests for repro.sim.engine (the fluid discrete-event simulator)."""

import pytest

from repro.baselines.static_partition import StaticPartitionPolicy
from repro.sim.engine import SimulationError, Simulator, run_simulation
from repro.sim.job import JobPhase
from repro.sim.policy import Policy
from repro.sim.trace import TraceEvent


class _AllTilesPolicy(Policy):
    """Run one job at a time on the whole SoC (no preemption)."""

    name = "all-tiles"

    def on_event(self, sim):
        if sim.ready and not sim.running:
            sim.start_job(sim.ready[0], sim.soc.num_tiles)

    def reset(self):
        pass


class _GreedyPairPolicy(Policy):
    """Admit everything FCFS onto 2-tile slots."""

    name = "greedy"

    def on_event(self, sim):
        while sim.ready and sim.free_tiles >= 2:
            sim.start_job(sim.ready[0], 2)

    def reset(self):
        pass


class TestSingleJob:
    def test_runs_to_completion(self, soc, mem, task_factory):
        task = task_factory()
        result = run_simulation(soc, [task], _AllTilesPolicy(), mem=mem)
        assert len(result.results) == 1
        assert result.results[0].finished_at > 0

    def test_isolated_runtime_matches_prediction(self, soc, mem,
                                                 task_factory):
        # A job alone on the full SoC must finish in exactly the
        # analytical prediction (the fluid rate law's fixed point).
        task = task_factory(network="resnet50")
        result = run_simulation(soc, [task], _AllTilesPolicy(), mem=mem)
        assert result.results[0].runtime == pytest.approx(
            task.isolated_cycles, rel=1e-6
        )

    def test_dispatch_delay_respected(self, soc, mem, task_factory):
        task = task_factory(dispatch=12345.0)
        result = run_simulation(soc, [task], _AllTilesPolicy(), mem=mem)
        assert result.results[0].started_at >= 12345.0

    def test_makespan_is_last_finish(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id="a"),
            task_factory(task_id="b", dispatch=500.0),
        ]
        result = run_simulation(soc, tasks, _AllTilesPolicy(), mem=mem)
        assert result.makespan == max(r.finished_at for r in result.results)

    def test_trace_records_lifecycle(self, soc, mem, task_factory):
        task = task_factory()
        policy = _AllTilesPolicy()
        policy.reset()
        sim = Simulator(soc, [task], policy, mem=mem, trace=True)
        sim.run()
        assert sim.trace.count(TraceEvent.DISPATCH) == 1
        assert sim.trace.count(TraceEvent.START) == 1
        assert sim.trace.count(TraceEvent.FINISH) == 1
        assert sim.trace.count(TraceEvent.BLOCK_DONE) == len(task.cost.blocks)


class TestMultiJob:
    def test_concurrent_jobs_all_finish(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}", network=net)
            for i, net in enumerate(
                ("kws", "squeezenet", "yolo_lite", "alexnet")
            )
        ]
        result = run_simulation(soc, tasks, _GreedyPairPolicy(), mem=mem)
        assert len(result.results) == 4

    def test_contention_slows_corunners(self, soc, mem, task_factory):
        alone = run_simulation(
            soc, [task_factory(task_id="solo", network="alexnet")],
            _GreedyPairPolicy(), mem=mem,
        ).results[0].runtime
        tasks = [
            task_factory(task_id=f"t{i}", network="alexnet")
            for i in range(4)
        ]
        shared = run_simulation(soc, tasks, _GreedyPairPolicy(), mem=mem)
        mean_runtime = sum(r.runtime for r in shared.results) / 4
        assert mean_runtime > alone * 1.2

    def test_determinism(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}", network=n, dispatch=i * 1e5)
            for i, n in enumerate(("kws", "alexnet", "squeezenet"))
        ]
        r1 = run_simulation(soc, tasks, _GreedyPairPolicy(), mem=mem)
        r2 = run_simulation(soc, tasks, _GreedyPairPolicy(), mem=mem)
        for a, b in zip(r1.results, r2.results):
            assert a.finished_at == b.finished_at

    def test_queueing_when_slots_full(self, soc, mem, task_factory):
        # 5 tasks on 4 slots: the fifth must wait for a completion.
        tasks = [
            task_factory(task_id=f"t{i}", network="kws") for i in range(5)
        ]
        result = run_simulation(soc, tasks, _GreedyPairPolicy(), mem=mem)
        waits = sorted(r.wait_cycles for r in result.results)
        assert waits[-1] > 0

    def test_result_lookup(self, soc, mem, task_factory):
        tasks = [task_factory(task_id="a"), task_factory(task_id="b")]
        result = run_simulation(soc, tasks, _GreedyPairPolicy(), mem=mem)
        assert result.result_for("a").task_id == "a"
        with pytest.raises(KeyError):
            result.result_for("zz")


class TestEngineApi:
    def _sim(self, soc, mem, task_factory, n=2):
        tasks = [task_factory(task_id=f"t{i}") for i in range(n)]
        policy = _GreedyPairPolicy()
        policy.reset()
        return Simulator(soc, tasks, policy, mem=mem)

    def test_no_tasks_raises(self, soc, mem):
        with pytest.raises(SimulationError):
            Simulator(soc, [], _GreedyPairPolicy(), mem=mem)

    def test_duplicate_ids_raise(self, soc, mem, task_factory):
        tasks = [task_factory(task_id="x"), task_factory(task_id="x")]
        with pytest.raises(SimulationError):
            Simulator(soc, tasks, _GreedyPairPolicy(), mem=mem)

    def test_start_requires_ready(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        job = next(iter(sim.jobs.values()))
        with pytest.raises(SimulationError):
            sim.start_job(job, 2)  # still PENDING

    def test_overallocation_raises(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        job = sim.ready[0]
        with pytest.raises(SimulationError):
            sim.start_job(job, soc.num_tiles + 1)

    def test_set_tiles_charges_stall(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        job = sim.ready[0]
        sim.start_job(job, 2)
        sim.set_tiles(job, 4)
        assert job.tile_repartitions == 1
        assert job.stall_until == pytest.approx(
            sim.now + sim.policy.compute_reconfig_cycles
        )

    def test_set_tiles_same_is_noop(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        job = sim.ready[0]
        sim.start_job(job, 2)
        sim.set_tiles(job, 2)
        assert job.tile_repartitions == 0

    def test_set_bw_cap_charges_small_stall(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        job = sim.ready[0]
        sim.start_job(job, 2)
        sim.set_bw_cap(job, 4.0)
        assert job.bw_reconfigs == 1
        assert job.stall_until == pytest.approx(
            sim.now + sim.policy.memory_reconfig_cycles
        )

    def test_set_bw_cap_equal_is_noop(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        job = sim.ready[0]
        sim.start_job(job, 2)
        sim.set_bw_cap(job, 4.0)
        sim.set_bw_cap(job, 4.0)
        assert job.bw_reconfigs == 1

    def test_invalid_cap_raises(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        job = sim.ready[0]
        sim.start_job(job, 2)
        with pytest.raises(SimulationError):
            sim.set_bw_cap(job, 0.0)

    def test_preempt_returns_to_ready(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        job = sim.ready[0]
        sim.start_job(job, 2)
        sim.preempt(job)
        assert job.phase is JobPhase.READY
        assert job.tiles == 0
        assert job.preemptions == 1
        assert job in sim.ready

    def test_stall_job_accumulates(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        job = sim.ready[0]
        sim.start_job(job, 2)
        sim.stall_job(job, 100.0)
        sim.stall_job(job, 50.0)  # shorter: no extension
        assert job.stall_until == pytest.approx(100.0)
        sim.stall_job(job, 200.0)
        assert job.stall_until == pytest.approx(200.0)
        assert job.stall_cycles == pytest.approx(200.0)

    def test_free_tiles_accounting(self, soc, mem, task_factory):
        sim = self._sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        assert sim.free_tiles == soc.num_tiles
        sim.start_job(sim.ready[0], 3)
        assert sim.free_tiles == soc.num_tiles - 3


class _OverallocatingPolicy(Policy):
    name = "bad"

    def on_event(self, sim):
        for job in list(sim.ready):
            if sim.free_tiles > 0:
                sim.start_job(job, sim.free_tiles)
        # Sneak extra tiles onto the first runner, bypassing set_tiles.
        if sim.running:
            sim.running[0].tiles = sim.soc.num_tiles + 1

    def reset(self):
        pass


class TestValidation:
    def test_policy_overallocation_detected(self, soc, mem, task_factory):
        tasks = [task_factory(task_id="a")]
        with pytest.raises(SimulationError, match="over-allocated"):
            run_simulation(soc, tasks, _OverallocatingPolicy(), mem=mem)


class TestReadyQueueOrdering:
    """ISSUE satellite: the ready queue is maintained with
    bisect.insort under a (dispatch_cycle, job_id) key; dispatch and
    preemption must preserve FIFO order exactly (append + stable sort
    was the historical behaviour these must keep matching)."""

    def test_coincident_dispatches_order_by_job_id(
        self, soc, mem, task_factory
    ):
        # Shuffled construction order, three tasks sharing one
        # dispatch instant plus one earlier straggler.
        tasks = [
            task_factory(task_id="c", dispatch=1000.0),
            task_factory(task_id="a", dispatch=1000.0),
            task_factory(task_id="d", dispatch=500.0),
            task_factory(task_id="b", dispatch=1000.0),
        ]
        policy = _AllTilesPolicy()
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem)
        sim.now = 500.0
        sim._dispatch_arrivals()
        assert [j.job_id for j in sim.ready] == ["d"]
        sim.now = 1000.0
        sim._dispatch_arrivals()
        assert [j.job_id for j in sim.ready] == ["d", "a", "b", "c"]

    def test_preempted_job_reenters_at_fifo_position(
        self, soc, mem, task_factory
    ):
        # A preempted job rejoins the queue keyed by its original
        # dispatch time — ahead of later arrivals, not at the tail.
        tasks = [
            task_factory(task_id="early", dispatch=0.0),
            task_factory(task_id="late", dispatch=100.0),
        ]
        policy = _AllTilesPolicy()
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem)
        sim._dispatch_arrivals()
        early = sim.jobs["early"]
        sim.start_job(early, 2)
        sim.now = 100.0
        sim._dispatch_arrivals()
        assert [j.job_id for j in sim.ready] == ["late"]
        sim.preempt(early)
        assert [j.job_id for j in sim.ready] == ["early", "late"]

    def test_ready_order_matches_append_and_sort(
        self, soc, mem, task_factory
    ):
        # Property form: for a shuffled batch of dispatch times the
        # insort-maintained queue must equal the sorted reference.
        import random

        rng = random.Random(42)
        times = [rng.choice((0.0, 0.0, 250.0, 500.0, 500.0, 750.0))
                 for _ in range(8)]
        tasks = [
            task_factory(task_id=f"t{i}", dispatch=t)
            for i, t in enumerate(times)
        ]
        rng.shuffle(tasks)
        policy = _AllTilesPolicy()
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem)
        for instant in sorted({t for t in times}):
            sim.now = instant
            sim._dispatch_arrivals()
        want = sorted(
            sim.ready, key=lambda j: (j.task.dispatch_cycle, j.job_id)
        )
        assert [j.job_id for j in sim.ready] == [j.job_id for j in want]
        assert len(sim.ready) == len(tasks)
