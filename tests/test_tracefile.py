"""Tests for repro.sim.tracefile (scenario serialization)."""

import json

import pytest

from repro.config import DEFAULT_SOC
from repro.models.zoo import workload_set
from repro.sim.tracefile import dump_tasks, load_tasks
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def tasks(mem):
    gen = WorkloadGenerator(DEFAULT_SOC, workload_set("A"), mem)
    return gen.generate(WorkloadConfig(num_tasks=20, seed=9))


class TestRoundTrip:
    def test_bit_exact_workload_fields(self, tasks, mem):
        restored = load_tasks(dump_tasks(tasks), DEFAULT_SOC, mem)
        assert len(restored) == len(tasks)
        for a, b in zip(tasks, restored):
            assert a.task_id == b.task_id
            assert a.network_name == b.network_name
            assert a.dispatch_cycle == b.dispatch_cycle
            assert a.priority == b.priority
            assert a.qos_target_cycles == b.qos_target_cycles

    def test_costs_rederived(self, tasks, mem):
        restored = load_tasks(dump_tasks(tasks), DEFAULT_SOC, mem)
        for a, b in zip(tasks, restored):
            assert b.cost is a.cost  # same cache entry for same SoC

    def test_simulation_identical(self, tasks, mem):
        from repro.baselines.static_partition import StaticPartitionPolicy
        from repro.sim.engine import run_simulation

        restored = load_tasks(dump_tasks(tasks), DEFAULT_SOC, mem)
        r1 = run_simulation(DEFAULT_SOC, tasks, StaticPartitionPolicy(),
                            mem=mem)
        r2 = run_simulation(DEFAULT_SOC, restored, StaticPartitionPolicy(),
                            mem=mem)
        for a, b in zip(r1.results, r2.results):
            assert a.finished_at == b.finished_at


class TestValidation:
    def test_bad_json_raises(self):
        with pytest.raises(ValueError, match="not a scenario"):
            load_tasks("{nope", DEFAULT_SOC)

    def test_wrong_version_raises(self, tasks):
        payload = json.loads(dump_tasks(tasks))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            load_tasks(json.dumps(payload), DEFAULT_SOC)

    def test_sorted_on_load(self, tasks, mem):
        payload = json.loads(dump_tasks(tasks))
        payload["tasks"].reverse()
        restored = load_tasks(json.dumps(payload), DEFAULT_SOC, mem)
        dispatches = [t.dispatch_cycle for t in restored]
        assert dispatches == sorted(dispatches)
