"""Tests for repro.accelerator.area (Table IV accounting)."""

import pytest

from repro.accelerator.area import (
    TILE_AREA_BREAKDOWN,
    TILE_TOTAL_AREA_UM2,
    AreaModel,
)


class TestTable4Data:
    def test_component_areas_match_paper(self):
        assert TILE_AREA_BREAKDOWN["rocket_cpu"] == 101_000.0
        assert TILE_AREA_BREAKDOWN["scratchpad"] == 58_000.0
        assert TILE_AREA_BREAKDOWN["accumulator"] == 75_000.0
        assert TILE_AREA_BREAKDOWN["systolic_array"] == 78_000.0
        assert TILE_AREA_BREAKDOWN["instruction_queues"] == 14_000.0
        assert TILE_AREA_BREAKDOWN["memory_interface"] == 8_600.0
        assert TILE_AREA_BREAKDOWN["moca_hardware"] == 100.0

    def test_tile_total(self):
        assert TILE_TOTAL_AREA_UM2 == 493_000.0


class TestAreaModel:
    def test_moca_overhead_of_tile_is_0_02_percent(self):
        model = AreaModel()
        assert 100 * model.moca_overhead_of_tile == pytest.approx(0.02, abs=0.005)

    def test_memory_interface_fraction_matches_paper(self):
        model = AreaModel()
        # Table IV: memory interface w/o MoCA is 1.7% of the tile.
        assert 100 * model.fraction_of_tile("memory_interface") == pytest.approx(
            1.7, abs=0.1
        )

    def test_moca_small_vs_memory_interface(self):
        model = AreaModel()
        assert model.moca_overhead_of_memory_interface < 0.05

    def test_rocket_fraction(self):
        model = AreaModel()
        assert 100 * model.fraction_of_tile("rocket_cpu") == pytest.approx(
            20.5, abs=0.2
        )

    def test_itemized_below_total(self):
        model = AreaModel()
        assert model.itemized_total_um2 <= model.tile_total_um2
        assert model.glue_um2 >= 0

    def test_soc_area_scales_with_tiles(self):
        model = AreaModel()
        assert model.soc_accelerator_area_um2(8) == pytest.approx(
            8 * model.tile_total_um2
        )

    def test_soc_area_invalid_tiles(self):
        with pytest.raises(ValueError):
            AreaModel().soc_accelerator_area_um2(0)

    def test_unknown_component_raises(self):
        with pytest.raises(KeyError):
            AreaModel().fraction_of_tile("gpu")

    def test_breakdown_rows_include_total(self):
        rows = AreaModel().breakdown_rows()
        names = [r[0] for r in rows]
        assert "tile_total" in names
        assert names[-1] == "tile_total"

    def test_percentages_sum_below_100_plus_glue(self):
        rows = AreaModel().breakdown_rows()
        component_pct = sum(pct for name, _, pct in rows
                            if name != "tile_total")
        assert component_pct < 100.0

    def test_format_table_mentions_moca(self):
        text = AreaModel().format_table()
        assert "moca_hardware" in text
        assert "100.00%" in text

    def test_rejects_overcommitted_components(self):
        with pytest.raises(ValueError):
            AreaModel(components=(("x", 1e9),), tile_total_um2=100.0)

    def test_rejects_negative_area(self):
        with pytest.raises(ValueError):
            AreaModel(components=(("x", -1.0),))
