"""Tests for the Planaria dynamic-fission baseline."""

import pytest

from repro.baselines.planaria import PlanariaPolicy
from repro.sim.engine import Simulator, run_simulation


def _sim(soc, mem, tasks, policy):
    policy.reset()
    return Simulator(soc, tasks, policy, mem=mem)


class TestConstruction:
    def test_invalid_concurrency(self):
        with pytest.raises(ValueError):
            PlanariaPolicy(max_concurrent=0)

    def test_invalid_min_tiles(self):
        with pytest.raises(ValueError):
            PlanariaPolicy(min_tiles=0)


class TestFission:
    def test_single_job_gets_all_tiles(self, soc, mem, task_factory):
        tasks = [task_factory(task_id="a")]
        policy = PlanariaPolicy()
        sim = _sim(soc, mem, tasks, policy)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert sim.running[0].tiles == soc.num_tiles

    def test_tiles_fully_apportioned(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}", priority=i * 3)
                 for i in range(4)]
        policy = PlanariaPolicy()
        sim = _sim(soc, mem, tasks, policy)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert sum(j.tiles for j in sim.running) == soc.num_tiles

    def test_priority_weighted_shares(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id="low", priority=0),
            task_factory(task_id="high", priority=11),
        ]
        policy = PlanariaPolicy()
        sim = _sim(soc, mem, tasks, policy)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        by_id = {j.job_id: j.tiles for j in sim.running}
        assert by_id["high"] > by_id["low"]

    def test_everyone_gets_min_tiles(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}", priority=(11 if i == 0 else 0))
                 for i in range(4)]
        policy = PlanariaPolicy()
        sim = _sim(soc, mem, tasks, policy)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert all(j.tiles >= policy.min_tiles for j in sim.running)

    def test_max_concurrent_respected(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}") for i in range(8)]
        policy = PlanariaPolicy(max_concurrent=4)
        sim = _sim(soc, mem, tasks, policy)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert len(sim.running) == 4


class TestMigrationCost:
    def test_repartitions_charged(self, soc, mem, task_factory):
        # Staggered arrivals force refissions of running jobs.
        tasks = [
            task_factory(task_id=f"t{i}", network="resnet50",
                         dispatch=i * 2e6)
            for i in range(4)
        ]
        result = run_simulation(soc, tasks, PlanariaPolicy(), mem=mem)
        total_reparts = sum(r.tile_repartitions for r in result.results)
        total_stall = sum(r.stall_cycles for r in result.results)
        assert total_reparts > 0
        assert total_stall >= total_reparts * 0.9e6

    def test_light_models_suffer_relatively_more(self, soc, mem,
                                                 task_factory):
        # The 1 M-cycle migration is comparable to a light model's whole
        # runtime — the paper's Workload-A QoS-H collapse mechanism.
        light = task_factory(task_id="x", network="squeezenet")
        assert light.isolated_cycles < 5e6

    def test_all_finish_under_churn(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}",
                         network=["kws", "squeezenet", "alexnet",
                                  "resnet50"][i % 4],
                         dispatch=i * 1e6, priority=i % 12)
            for i in range(8)
        ]
        result = run_simulation(soc, tasks, PlanariaPolicy(), mem=mem)
        assert len(result.results) == 8

    def test_no_bandwidth_management(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}", network="alexnet")
                 for i in range(4)]
        policy = PlanariaPolicy()
        sim = _sim(soc, mem, tasks, policy)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert all(j.bw_cap is None for j in sim.running)
