"""Tests for repro.sim.qos (SLA target construction)."""

import pytest

from repro.config import DEFAULT_SOC
from repro.models.zoo import build_model, model_names
from repro.sim.qos import QosLevel, QosModel


class TestQosLevel:
    def test_multipliers_match_paper(self):
        assert QosLevel.HARD.multiplier == 0.8
        assert QosLevel.MEDIUM.multiplier == 1.0
        assert QosLevel.LIGHT.multiplier == 1.2

    def test_labels(self):
        assert QosLevel.HARD.value == "QoS-H"
        assert QosLevel.MEDIUM.value == "QoS-M"
        assert QosLevel.LIGHT.value == "QoS-L"


class TestQosModel:
    def test_target_ordering(self, mem):
        qos = QosModel(DEFAULT_SOC)
        net = build_model("resnet50")
        hard = qos.target(net, QosLevel.HARD, mem)
        medium = qos.target(net, QosLevel.MEDIUM, mem)
        light = qos.target(net, QosLevel.LIGHT, mem)
        assert hard < medium < light

    def test_target_scales_by_multiplier(self, mem):
        qos = QosModel(DEFAULT_SOC)
        net = build_model("kws")
        base = qos.baseline_target(net, mem)
        assert qos.target(net, QosLevel.HARD, mem) == pytest.approx(0.8 * base)
        assert qos.target(net, QosLevel.LIGHT, mem) == pytest.approx(1.2 * base)

    def test_baseline_uses_slack(self, mem):
        tight = QosModel(DEFAULT_SOC, slack_factor=1.0)
        loose = QosModel(DEFAULT_SOC, slack_factor=4.0)
        net = build_model("kws")
        assert loose.baseline_target(net, mem) == pytest.approx(
            4.0 * tight.baseline_target(net, mem)
        )

    def test_isolated_latency_defaults_to_full_soc(self, mem):
        qos = QosModel(DEFAULT_SOC)
        net = build_model("squeezenet")
        full = qos.isolated_latency(net, mem)
        two = qos.isolated_latency(net, mem, num_tiles=2)
        assert full < two

    @pytest.mark.parametrize("name", model_names())
    def test_targets_positive_for_all_models(self, mem, name):
        qos = QosModel(DEFAULT_SOC)
        assert qos.target(build_model(name), QosLevel.MEDIUM, mem) > 0

    def test_heavier_models_get_larger_targets(self, mem):
        qos = QosModel(DEFAULT_SOC)
        light = qos.baseline_target(build_model("yolo_lite"), mem)
        heavy = qos.baseline_target(build_model("yolov2"), mem)
        assert heavy > light

    def test_invalid_reference_tiles(self):
        with pytest.raises(ValueError):
            QosModel(DEFAULT_SOC, reference_tiles=0)

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            QosModel(DEFAULT_SOC, slack_factor=0.0)

    def test_from_cost_consistent(self, mem):
        from repro.core.latency import build_network_cost

        qos = QosModel(DEFAULT_SOC)
        net = build_model("kws")
        cost = build_network_cost(net, DEFAULT_SOC, mem)
        assert qos.isolated_latency_from_cost(cost, mem) == pytest.approx(
            qos.isolated_latency(net, mem)
        )
