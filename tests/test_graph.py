"""Tests for repro.models.graph (network graphs)."""

import pytest

from repro.models.graph import GraphError, Network, validate_chain
from repro.models.layers import ConvLayer, DenseLayer, LayerKind, PoolLayer


def _tiny_network():
    return Network(
        name="tiny",
        layers=(
            ConvLayer("c1", in_h=8, in_w=8, in_ch=4, out_ch=8, kernel=3,
                      padding=1),
            PoolLayer("p1", in_h=8, in_w=8, channels=8, kernel=2, stride=2),
            DenseLayer("fc", in_features=4 * 4 * 8, out_features=10),
        ),
        input_bytes=8 * 8 * 4,
        domain="test",
    )


class TestNetwork:
    def test_len_and_iter(self):
        net = _tiny_network()
        assert len(net) == 3
        assert [l.name for l in net] == ["c1", "p1", "fc"]

    def test_getitem(self):
        assert _tiny_network()[0].name == "c1"

    def test_total_macs_is_sum(self):
        net = _tiny_network()
        assert net.total_macs == sum(l.macs for l in net.layers)

    def test_total_weight_includes_bias(self):
        net = _tiny_network()
        expected = sum(l.weight_bytes + l.bias_bytes for l in net.layers)
        assert net.total_weight_bytes == expected

    def test_compute_and_mem_split(self):
        net = _tiny_network()
        assert len(net.compute_layers) == 2
        assert len(net.mem_layers) == 1
        assert all(l.kind is LayerKind.COMPUTE for l in net.compute_layers)

    def test_arithmetic_intensity(self):
        net = _tiny_network()
        assert net.arithmetic_intensity == pytest.approx(
            net.total_macs / net.total_mem_bytes
        )

    def test_layer_index(self):
        assert _tiny_network().layer_index("p1") == 1

    def test_layer_index_missing_raises(self):
        with pytest.raises(KeyError):
            _tiny_network().layer_index("nope")

    def test_summary_mentions_every_layer(self):
        text = _tiny_network().summary()
        for name in ("c1", "p1", "fc"):
            assert name in text

    def test_empty_layers_raise(self):
        with pytest.raises(GraphError):
            Network(name="x", layers=(), input_bytes=1)

    def test_missing_name_raises(self):
        with pytest.raises(GraphError):
            Network(name="", layers=_tiny_network().layers, input_bytes=1)

    def test_nonpositive_input_raises(self):
        with pytest.raises(GraphError):
            Network(name="x", layers=_tiny_network().layers, input_bytes=0)

    def test_duplicate_layer_names_raise(self):
        layers = (
            DenseLayer("fc", 4, 4),
            DenseLayer("fc", 4, 4),
        )
        with pytest.raises(GraphError, match="duplicate"):
            Network(name="x", layers=layers, input_bytes=4)


class TestValidateChain:
    def test_consistent_chain_no_warnings(self):
        assert validate_chain(_tiny_network().layers) == []

    def test_wild_mismatch_warns(self):
        layers = [
            DenseLayer("a", in_features=10, out_features=10),
            DenseLayer("b", in_features=1000, out_features=10),
        ]
        warnings = validate_chain(layers)
        assert len(warnings) == 1
        assert "a -> b" in warnings[0]
