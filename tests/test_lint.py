"""Fixture tests for repro.devtools.lint: every rule family must
fire on a seeded violation and stay quiet on the compliant twin, the
suppression directives must work (and police themselves), the
baseline must round-trip, and — the gate itself — the repo's own
tree must lint clean."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    RULES,
    LintConfig,
    baseline_entries,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)
from repro.devtools.lint.core import apply_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(findings):
    return [f.rule for f in findings]


def check(source, rel="src/repro/x.py", config=None):
    return lint_source(textwrap.dedent(source), rel, config)


# ---------------------------------------------------------------------
# D-rules: determinism
# ---------------------------------------------------------------------

class TestD101UnseededRng:
    def test_unseeded_random_constructor_flagged(self):
        findings = check("""
            import random
            rng = random.Random()
        """)
        assert rules_of(findings) == ["D101"]

    def test_seeded_random_constructor_clean(self):
        findings = check("""
            import random
            rng = random.Random(42)
        """)
        assert findings == []

    def test_module_level_draw_flagged(self):
        findings = check("""
            import random
            x = random.random()
            y = random.shuffle([1, 2])
        """)
        assert rules_of(findings) == ["D101", "D101"]

    def test_aliased_import_still_caught(self):
        findings = check("""
            import random as rnd
            x = rnd.choice([1, 2])
        """)
        assert rules_of(findings) == ["D101"]


class TestD102WallClock:
    def test_time_time_flagged(self):
        findings = check("""
            import time
            t = time.time()
        """)
        assert rules_of(findings) == ["D102"]

    def test_datetime_now_flagged(self):
        findings = check("""
            from datetime import datetime
            t = datetime.now()
        """)
        assert rules_of(findings) == ["D102"]

    def test_plain_datetime_module_chain_flagged(self):
        findings = check("""
            import datetime
            t = datetime.datetime.now()
        """)
        assert rules_of(findings) == ["D102"]

    def test_monotonic_clean(self):
        findings = check("""
            import time
            t = time.monotonic()
        """)
        assert findings == []

    def test_allowlisted_path_clean(self):
        findings = check("""
            import time
            t = time.time()
        """, rel="scripts/bench.py")
        assert findings == []


class TestD103SetIteration:
    def test_set_into_ordered_accumulation_flagged(self):
        findings = check("""
            def f(items):
                seen = set(items)
                out = []
                for x in seen:
                    out.append(x)
                return out
        """)
        assert rules_of(findings) == ["D103"]

    def test_sorted_set_clean(self):
        findings = check("""
            def f(items):
                seen = set(items)
                out = []
                for x in sorted(seen):
                    out.append(x)
                return out
        """)
        assert findings == []

    def test_set_literal_comprehension_flagged(self):
        findings = check("""
            def f(fields):
                shared = {a for a in fields}
                return [str(name) for name in shared]
        """)
        assert rules_of(findings) == ["D103"]

    def test_sorted_genexp_over_set_clean(self):
        findings = check("""
            def f(rules, known):
                bad = set(rules)
                return sorted(r for r in bad if r not in known)
        """)
        assert findings == []


class TestD104UnsortedListing:
    def test_bare_listdir_flagged(self):
        findings = check("""
            import os
            def f(d):
                for name in os.listdir(d):
                    print(name)
        """)
        assert rules_of(findings) == ["D104"]

    def test_sorted_listdir_clean(self):
        findings = check("""
            import os
            def f(d):
                for name in sorted(os.listdir(d)):
                    print(name)
        """)
        assert findings == []

    def test_bare_glob_and_iterdir_flagged(self):
        findings = check("""
            import glob
            def f(d, p):
                files = glob.glob("*.json")
                more = list(p.iterdir())
                return files, more
        """)
        assert rules_of(findings) == ["D104", "D104"]

    def test_sorted_rglob_clean(self):
        findings = check("""
            def f(p):
                return sorted(p.rglob("*.py"))
        """)
        assert findings == []


class TestD105BuiltinHash:
    def test_hash_flagged_in_src(self):
        findings = check("""
            def key(s):
                return hash(s) % 16
        """)
        assert rules_of(findings) == ["D105"]

    def test_hash_allowed_in_scripts(self):
        findings = check("""
            def key(s):
                return hash(s) % 16
        """, rel="scripts/tool.py")
        assert findings == []


# ---------------------------------------------------------------------
# R-rules: lock coverage
# ---------------------------------------------------------------------

THREADED_OK = """
    import threading

    # repro-lint: thread-shared lock=_lock guards=ledger
    class Server:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0
            self.ledger = []

        def bump(self):
            with self._lock:
                self._count += 1
                self.ledger.append(self._count)

        def snapshot(self):
            with self._lock:
                return self._sync()

        def _sync(self):
            return list(self.ledger)
"""


#: The shape of the on-disk precompute store (ISSUE 10): file I/O on
#: locals stays outside the lock, the shared counter dict is only
#: touched through a lock-holding helper.
PRECOMPUTE_STORE_OK = """
    import json
    import threading

    # repro-lint: thread-shared lock=_lock guards=_stats
    class Store:
        def __init__(self, root):
            self.root = root
            self._lock = threading.Lock()
            self._stats = {"loads": 0, "misses": 0}

        def get(self, digest):
            try:
                with open(digest) as fh:
                    payload = json.load(fh)
            except OSError:
                payload = None
            with self._lock:
                self._count("loads" if payload else "misses")
            return payload

        def _count(self, field):
            self._stats[field] += 1

        def stats(self):
            with self._lock:
                return dict(self._stats)
"""


class TestRRules:
    def test_compliant_class_clean(self):
        assert check(THREADED_OK) == []

    def test_precompute_store_shape_clean(self):
        """The store's idiom — unlocked file I/O on locals, counters
        only via a lock-held private helper — is R-clean."""
        assert check(PRECOMPUTE_STORE_OK) == []

    def test_precompute_store_unlocked_counter_r203(self):
        """Dropping the lock around the counter helper is the store's
        characteristic race; the fixed-point helper analysis flags
        the unlocked call."""
        findings = check(
            PRECOMPUTE_STORE_OK.replace(
                "            with self._lock:\n"
                "                self._count(\"loads\" if payload"
                " else \"misses\")",
                "            self._count(\"loads\" if payload"
                " else \"misses\")",
            )
        )
        assert "R203" in rules_of(findings)

    def test_precompute_store_unlocked_stats_read_r202(self):
        """A public snapshot of the guarded counter dict taken
        without the lock is flagged."""
        findings = check(
            PRECOMPUTE_STORE_OK.replace(
                "        def stats(self):\n"
                "            with self._lock:\n"
                "                return dict(self._stats)",
                "        def stats(self):\n"
                "            return dict(self._stats)",
            )
        )
        assert "R202" in rules_of(findings)

    def test_unlocked_write_r201(self):
        findings = check("""
            # repro-lint: thread-shared lock=_lock
            class Server:
                def __init__(self):
                    self._count = 0

                def bump(self):
                    self._count += 1
        """)
        assert "R201" in rules_of(findings)

    def test_unlocked_guarded_read_r202(self):
        findings = check("""
            # repro-lint: thread-shared lock=_lock guards=ledger
            class Server:
                def __init__(self):
                    self.ledger = []

                def snapshot(self):
                    return list(self.ledger)
        """)
        assert rules_of(findings) == ["R202"]

    def test_unlocked_call_to_needy_helper_r203(self):
        findings = check("""
            # repro-lint: thread-shared lock=_lock
            class Server:
                def __init__(self):
                    self._items = []

                def flush(self):
                    self._drain()

                def _drain(self):
                    self._items.clear()
        """)
        assert "R203" in rules_of(findings)

    def test_needs_lock_propagates_through_private_calls(self):
        findings = check("""
            # repro-lint: thread-shared lock=_lock
            class Server:
                def __init__(self):
                    self._items = []

                def flush(self):
                    self._outer()

                def _outer(self):
                    self._inner()

                def _inner(self):
                    self._items.clear()
        """)
        assert "R203" in rules_of(findings)

    def test_lock_none_flags_every_write(self):
        findings = check("""
            # repro-lint: thread-shared lock=none
            class Flag:
                def __init__(self):
                    self._halt = False

                def stop(self):
                    self._halt = True
        """)
        assert rules_of(findings) == ["R201"]

    def test_single_writer_marker_not_checked(self):
        findings = check("""
            # repro-lint: single-writer owner=Coordinator._lock
            class Ledger:
                def __init__(self):
                    self._state = []

                def settle(self, i):
                    self._state[i] = "done"
        """)
        assert findings == []

    def test_unmarked_class_not_checked(self):
        findings = check("""
            class Plain:
                def __init__(self):
                    self._x = 0

                def bump(self):
                    self._x += 1
        """)
        assert findings == []

    def test_trailing_marker_on_class_line(self):
        findings = check("""
            class Server:  # repro-lint: thread-shared lock=_lock
                def __init__(self):
                    self._n = 0

                def bump(self):
                    self._n += 1
        """)
        assert "R201" in rules_of(findings)

    def test_nested_function_inherits_lock_domination(self):
        findings = check("""
            # repro-lint: thread-shared lock=_lock
            class Server:
                def __init__(self):
                    self._items = []

                def flush(self):
                    with self._lock:
                        def cb():
                            self._items.clear()
                        cb()
        """)
        assert findings == []


# ---------------------------------------------------------------------
# P-rules: purity / trust boundary
# ---------------------------------------------------------------------

class TestPRules:
    def test_foreign_setattr_p301(self):
        findings = check("""
            def poke(plan):
                object.__setattr__(plan, "bw_caps", ())
        """)
        assert rules_of(findings) == ["P301"]

    def test_aliased_setattr_p301(self):
        findings = check("""
            def poke(plan):
                st = object.__setattr__
                st(plan, "bw_caps", ())
        """)
        assert rules_of(findings) == ["P301"]

    def test_self_setattr_clean(self):
        findings = check("""
            class Spec:
                def __post_init__(self):
                    object.__setattr__(self, "seeds", tuple(self.seeds))
        """)
        assert findings == []

    def test_allowlisted_module_clean(self):
        findings = check("""
            def build(plan):
                object.__setattr__(plan, "_trusted", True)
        """, rel="src/repro/sim/plan.py")
        assert findings == []

    def test_trusted_call_outside_boundary_p302(self):
        findings = check("""
            from repro.sim.plan import AllocationPlan

            def decide():
                return AllocationPlan.trusted(bw_caps=(("j", 1.0),))
        """)
        assert rules_of(findings) == ["P302"]

    def test_trusted_call_inside_boundary_clean(self):
        findings = check("""
            from repro.sim.plan import AllocationPlan

            def decide():
                return AllocationPlan.trusted(bw_caps=(("j", 1.0),))
        """, rel="src/repro/core/policy.py")
        assert findings == []

    def test_unrelated_trusted_method_clean(self):
        findings = check("""
            def f(store):
                return store.trusted()
        """)
        assert findings == []


# ---------------------------------------------------------------------
# Directives: suppression and its self-policing
# ---------------------------------------------------------------------

class TestDirectives:
    def test_inline_suppression_with_reason(self):
        findings = check("""
            import time
            t = time.time()  # repro-lint: allow[D102] -- bench timing only
        """)
        assert findings == []

    def test_standalone_suppression_covers_next_line(self):
        findings = check("""
            import time
            # repro-lint: allow[D102] -- bench timing only
            t = time.time()
        """)
        assert findings == []

    def test_suppression_without_reason_is_l001(self):
        findings = check("""
            import time
            t = time.time()  # repro-lint: allow[D102]
        """)
        # The reasonless directive is rejected AND does not suppress.
        assert sorted(rules_of(findings)) == ["D102", "L001"]

    def test_unknown_rule_is_l002(self):
        findings = check("""
            x = 1  # repro-lint: allow[D999] -- no such rule
        """)
        assert rules_of(findings) == ["L002"]

    def test_l_rules_cannot_be_suppressed(self):
        findings = check("""
            # repro-lint: allow[L001] -- trying to silence the police
            x = 1  # repro-lint: allow[D102]
        """)
        assert "L001" in rules_of(findings)

    def test_wrong_rule_does_not_suppress(self):
        findings = check("""
            import time
            t = time.time()  # repro-lint: allow[D101] -- wrong rule
        """)
        assert "D102" in rules_of(findings)

    def test_directive_examples_in_docstrings_ignored(self):
        findings = check('''
            def f():
                """Use '# repro-lint: allow[D102]' to suppress."""
                return 1
        ''')
        assert findings == []

    def test_syntax_error_is_l003(self):
        findings = check("""
            def f(:
        """)
        assert rules_of(findings) == ["L003"]

    def test_malformed_marker_is_l002(self):
        findings = check("""
            # repro-lint: thread-shared bogus
            class C:
                pass
        """)
        assert rules_of(findings) == ["L002"]


# ---------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------

BASELINE_SRC = """
import time
t = time.time()
"""


class TestBaseline:
    def test_round_trip_and_apply(self, tmp_path):
        findings = lint_source(BASELINE_SRC, "src/repro/x.py")
        assert rules_of(findings) == ["D102"]
        entries = baseline_entries(findings, reason="startup banner")
        path = tmp_path / "baseline.json"
        save_baseline(path, entries)
        loaded = load_baseline(path)
        assert loaded == entries
        remaining, matched, stale = apply_baseline(findings, loaded)
        assert remaining == [] and matched == 1 and stale == []

    def test_baseline_survives_line_drift(self, tmp_path):
        findings = lint_source(BASELINE_SRC, "src/repro/x.py")
        entries = baseline_entries(findings, reason="startup banner")
        moved = lint_source(
            "\n\n\n" + BASELINE_SRC, "src/repro/x.py"
        )
        remaining, matched, _ = apply_baseline(moved, entries)
        assert remaining == [] and matched == 1

    def test_stale_entries_reported_not_fatal(self, tmp_path):
        entries = baseline_entries(
            lint_source(BASELINE_SRC, "src/repro/x.py"),
            reason="gone now",
        )
        remaining, matched, stale = apply_baseline([], entries)
        assert matched == 0 and stale == entries

    def test_reasonless_entry_rejected_at_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [{
            "rule": "D102", "path": "src/repro/x.py",
            "snippet": "t = time.time()", "reason": "  ",
        }])
        with pytest.raises(ValueError, match="no reason"):
            load_baseline(path)

    def test_unknown_rule_rejected_at_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [{
            "rule": "D999", "path": "x.py",
            "snippet": "x", "reason": "y",
        }])
        with pytest.raises(ValueError, match="unknown rule"):
            load_baseline(path)

    def test_non_baseline_json_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# ---------------------------------------------------------------------
# Driver, rendering, and the gate itself
# ---------------------------------------------------------------------

class TestDriver:
    def test_select_filters_rules(self):
        config = LintConfig(select=frozenset({"D101"}))
        findings = check("""
            import random
            import time
            rng = random.Random()
            t = time.time()
        """, config=config)
        assert rules_of(findings) == ["D101"]

    def test_render_text_and_json_agree(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("import time\nt = time.time()\n")
        report = lint_paths([f], tmp_path)
        assert not report.clean
        assert "D102" in render_text(report)
        payload = json.loads(render_json(report))
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "D102"

    def test_rule_catalogue_matches_emitters(self):
        # Every documented rule id is well-formed; families partition.
        assert set(RULES) == {
            "L001", "L002", "L003",
            "D101", "D102", "D103", "D104", "D105",
            "R201", "R202", "R203",
            "P301", "P302",
        }

    def test_repo_tree_lints_clean_against_baseline(self):
        baseline = load_baseline(REPO_ROOT / "lint_baseline.json")
        report = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "scripts"],
            REPO_ROOT,
            baseline=baseline,
        )
        assert report.clean, render_text(report)
        assert report.stale_baseline == []
