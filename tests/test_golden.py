"""Golden regression: pin the reference matrix's metric fingerprints.

The 36 reference (scenario, policy) cells — Table III sets A/B/C
crossed with QoS-H/M/L, all four policies — are fingerprinted at full
float precision and compared against ``tests/goldens/
reference_matrix.json``.  A refactor that silently changes simulator
outputs fails here.

After an *intentional* output change, re-bless with::

    PYTHONPATH=src python scripts/bless_goldens.py
"""

import json
from pathlib import Path

from repro.experiments.golden import (
    compute_reference_fingerprints,
    matrix_fingerprint,
)
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import run_matrix

GOLDEN_PATH = Path(__file__).parent / "goldens" / "reference_matrix.json"

RE_BLESS = "PYTHONPATH=src python scripts/bless_goldens.py"


def load_golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; create it with: {RE_BLESS}"
    )
    return json.loads(GOLDEN_PATH.read_text())


def test_reference_matrix_matches_goldens():
    golden = load_golden()
    actual = compute_reference_fingerprints(
        num_tasks=golden["num_tasks"], seeds=tuple(golden["seeds"])
    )
    expected = golden["cells"]
    assert set(actual) == set(expected), (
        "reference matrix cells changed shape; if intentional, "
        f"re-bless with: {RE_BLESS}"
    )
    mismatched = sorted(
        cell for cell in expected if actual[cell] != expected[cell]
    )
    assert not mismatched, (
        f"{len(mismatched)}/{len(expected)} reference cells changed "
        f"metrics: {mismatched[:6]}{'...' if len(mismatched) > 6 else ''} "
        f"— simulator outputs moved. If intentional, re-bless with: "
        f"{RE_BLESS}"
    )


def test_parallel_path_matches_goldens_too():
    """The golden pins must hold through the parallel executor as well
    (serial/parallel bit-identity, enforced end to end)."""
    golden = load_golden()
    from repro.experiments.golden import reference_specs

    specs = reference_specs(
        num_tasks=golden["num_tasks"], seeds=tuple(golden["seeds"])
    )[:3]  # one workload set is enough here; the serial test covers all
    runner = ParallelRunner(workers=2)
    matrix = runner.run_matrix(specs)
    actual = matrix_fingerprint(matrix)
    expected = {
        cell: digest
        for cell, digest in golden["cells"].items()
        if cell.startswith("Workload-A/")
    }
    for cell, digest in expected.items():
        assert actual[cell] == digest, cell
    if runner.last_mode != "parallel":
        import pytest

        pytest.skip(
            "process pool unavailable: goldens checked via serial fallback"
        )
