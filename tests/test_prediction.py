"""Tests for repro.core.prediction (remaining-latency suffix cache)."""

import pytest

from repro.config import DEFAULT_SOC
from repro.core.latency import build_network_cost
from repro.core.prediction import RemainingPrediction
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model

SOC = DEFAULT_SOC
MEM = MemoryHierarchy.from_soc(SOC)


@pytest.fixture()
def predictor():
    return RemainingPrediction(SOC, MEM)


@pytest.fixture()
def cost():
    return build_network_cost(build_model("squeezenet"), SOC, MEM)


class TestRemainingPrediction:
    def test_total_is_remaining_from_zero(self, predictor, cost):
        assert predictor.total(cost, 2) == predictor.remaining(cost, 0, 2)

    def test_matches_direct_sum(self, predictor, cost):
        direct = sum(
            b.predict(2, MEM.dram_bandwidth, MEM.l2_bandwidth, SOC.overlap_f)
            for b in cost.blocks[3:]
        )
        assert predictor.remaining(cost, 3, 2) == pytest.approx(direct)

    def test_end_is_zero(self, predictor, cost):
        assert predictor.remaining(cost, len(cost.blocks), 2) == 0.0

    def test_monotone_decreasing(self, predictor, cost):
        values = [
            predictor.remaining(cost, i, 2)
            for i in range(len(cost.blocks) + 1)
        ]
        assert values == sorted(values, reverse=True)

    def test_more_tiles_less_remaining(self, predictor, cost):
        assert predictor.remaining(cost, 0, 8) <= predictor.remaining(
            cost, 0, 1
        )

    def test_cache_hit_same_result(self, predictor, cost):
        first = predictor.remaining(cost, 5, 2)
        second = predictor.remaining(cost, 5, 2)
        assert first == second

    def test_clear(self, predictor, cost):
        predictor.remaining(cost, 0, 2)
        predictor.clear()
        assert predictor.remaining(cost, 0, 2) > 0

    def test_invalid_tiles(self, predictor, cost):
        with pytest.raises(ValueError):
            predictor.remaining(cost, 0, 0)

    def test_invalid_block_idx(self, predictor, cost):
        with pytest.raises(ValueError):
            predictor.remaining(cost, len(cost.blocks) + 1, 2)
        with pytest.raises(ValueError):
            predictor.remaining(cost, -1, 2)
