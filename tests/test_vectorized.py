"""Bit-identity of the vectorized hot path against its scalar oracles.

Three seams got fast twins in the plan-seam performance work, each
keeping the original implementation as the reference oracle:

- ``Simulator._solve_vector`` (runtime-table SoA solve) vs
  ``Simulator._solve_scalar`` (per-job ``predict`` + dict arbiter);
- ``MoCARuntime.regulate_batch`` (single-sweep Algorithm 2) vs
  ``MoCARuntime.update_app`` (the validated per-app reference);
- ``MoCAPolicy.fast_path`` (retired-blocks counter skip) vs the full
  per-event re-decision.

These tests pin every pair **bit-identical** (``==`` on floats, not
approx) over randomized job states — random tiles, caps, stalls,
progress, zero-DRAM blocks and oversubscribed channels — and over
whole simulations, so neither twin can drift from its oracle.
"""

import pickle
import random

import pytest

from repro.config import DEFAULT_SOC
from repro.core.latency import (
    BlockCost,
    NetworkCost,
    build_network_cost,
)
from repro.core.policy import MoCAPolicy
from repro.core.runtime import MoCARuntime
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.layers import LayerKind
from repro.models.zoo import build_model
from repro.sim.engine import Simulator, run_simulation
from repro.sim.workload import WorkloadConfig, WorkloadGenerator
from repro.sim.qos import QosLevel, QosModel

NETWORKS = ("kws", "squeezenet", "yolo_lite")


def _random_state_sim(soc, mem, task_factory, rng,
                      networks=NETWORKS, n_jobs=6):
    """A simulator frozen mid-flight in a random allocation state.

    Jobs get random tiles (always fitting the SoC), random block
    indices/progress, random bandwidth caps (including tight ones that
    oversubscribe the channel when combined) and random stalls; some
    jobs are left in the ready queue so the solvers see a partial
    running set.
    """
    tasks = [
        task_factory(task_id=f"t{i}",
                     network=networks[rng.randrange(len(networks))])
        for i in range(n_jobs)
    ]
    sim = Simulator(soc, tasks, MoCAPolicy(), mem=mem)
    sim._dispatch_arrivals()
    free = soc.num_tiles
    for job in list(sim.ready):
        if free == 0 or rng.random() < 0.2:
            continue  # stays READY: solvers must ignore it
        tiles = rng.randint(1, free)
        sim.start_job(job, tiles)
        free -= tiles
        job.block_idx = rng.randrange(job.num_blocks)
        job.progress = rng.random() * 0.99
        roll = rng.random()
        if roll < 0.4:
            # Tight cap: a few of these together oversubscribe DRAM.
            job.bw_cap = rng.uniform(0.05, 0.5) * mem.dram_bandwidth
        elif roll < 0.6:
            job.bw_cap = rng.uniform(0.5, 2.0) * mem.dram_bandwidth
        if rng.random() < 0.3:
            job.stall_until = sim.now + rng.uniform(0.0, 1e4)
    sim.now += rng.random() * 1e3
    return sim


class TestSolverBitIdentity:
    """tentpole (b): vectorized SoA solve == scalar reference, exactly."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_states_solve_identically(self, soc, mem,
                                              task_factory, seed):
        rng = random.Random(seed)
        sim = _random_state_sim(soc, mem, task_factory, rng)
        scalar = sim._solve_scalar()
        vector = sim._solve_vector()
        # Bit-identity: same keys, same floats, no tolerance.
        assert scalar == vector
        for jid in scalar:
            assert scalar[jid] == vector[jid]

    def test_oversubscribed_channel_matches(self, soc, mem,
                                            task_factory):
        # Deterministic oversubscription: every job capped far below
        # its demand, sum of demands far above the channel.
        rng = random.Random(99)
        sim = _random_state_sim(soc, mem, task_factory, rng, n_jobs=4)
        for job in sim.running:
            job.bw_cap = None
            job.stall_until = 0.0
        scalar = sim._solve_scalar()
        vector = sim._solve_vector()
        assert scalar == vector

    def test_zero_dram_block_takes_t_full(self, soc, mem,
                                          task_factory):
        # A block with no DRAM traffic must take the pure t_full
        # branch in both solvers (no division by a zero demand).
        base = build_network_cost(build_model("kws"), soc, mem)
        blk = base.blocks[0]
        compute_only = BlockCost(
            name="compute-only",
            kind=LayerKind.COMPUTE,
            compute_terms=blk.compute_terms,
            from_dram_bytes=0.0,
            total_mem_bytes=blk.total_mem_bytes,
            scaling_alpha=blk.scaling_alpha,
        )
        cost = NetworkCost(network_name="zero-dram",
                           blocks=(compute_only,) + base.blocks)
        task = task_factory(task_id="z0")
        task = type(task)(
            task_id="z0", network_name="zero-dram", cost=cost,
            dispatch_cycle=0.0, priority=5,
            qos_target_cycles=task.qos_target_cycles,
            isolated_cycles=task.isolated_cycles,
        )
        peers = [task_factory(task_id=f"p{i}") for i in range(2)]
        sim = Simulator(soc, [task] + peers, MoCAPolicy(), mem=mem)
        sim._dispatch_arrivals()
        free = soc.num_tiles
        for job in list(sim.ready):
            tiles = max(1, free // 2)
            sim.start_job(job, tiles)
            free -= tiles
            if free == 0:
                break
        zjob = sim.jobs["z0"]
        assert zjob.block_idx == 0  # sitting on the zero-DRAM block
        scalar = sim._solve_scalar()
        vector = sim._solve_vector()
        assert scalar == vector
        table = zjob._table
        assert scalar["z0"] == table.t_full_rows[0][zjob.tiles - 1]

    def test_zero_share_is_inf_in_both_solvers(self, soc, mem,
                                               task_factory,
                                               monkeypatch):
        # A zero bandwidth grant must map to an infinite block time in
        # both solvers (the job is starved, not instantly finished).
        # A real water-fill never returns exactly 0 for a positive
        # want, so pin the branch by stubbing both arbiter entry
        # points to starve every requestor.
        import repro.sim.engine as engine_mod

        rng = random.Random(7)
        sim = _random_state_sim(soc, mem, task_factory, rng, n_jobs=4)
        for job in sim.running:
            job.stall_until = 0.0
            # Caps summing well above the channel force the
            # oversubscribed (water-fill) route in both solvers.
            job.bw_cap = 0.8 * mem.dram_bandwidth
        monkeypatch.setattr(
            engine_mod, "allocate_bandwidth",
            lambda demands, total, caps=None, weights=None: {
                jid: 0.0 for jid in demands
            },
        )
        monkeypatch.setattr(
            engine_mod, "waterfill_grants",
            lambda wants, weights, total: ([0.0] * len(wants),
                                           list(range(len(wants)))),
        )
        scalar = sim._solve_scalar()
        vector = sim._solve_vector()
        assert scalar == vector
        inf = float("inf")
        for job in sim.running:
            if job.current_block.from_dram_bytes > 0:
                assert scalar[job.job_id] == inf

    @pytest.mark.parametrize("seed", (0, 1))
    def test_full_simulation_identical_across_solvers(self, soc, mem,
                                                      seed):
        qos = QosModel(soc, slack_factor=2.0)
        from repro.models.zoo import workload_set

        gen = WorkloadGenerator(soc, workload_set("A"), mem, qos)
        tasks = gen.generate(WorkloadConfig(
            num_tasks=40, qos_level=QosLevel.MEDIUM,
            load_factor=0.7, seed=seed,
        ))
        runs = {}
        for solver in ("vector", "scalar"):
            policy = MoCAPolicy()
            policy.reset()
            result = Simulator(
                soc, tasks, policy, mem=mem, solver=solver
            ).run()
            runs[solver] = result
        assert runs["vector"].makespan == runs["scalar"].makespan
        assert tuple(runs["vector"].results) == tuple(
            runs["scalar"].results
        )


class TestRegulateBatchOracle:
    """tentpole (c): regulate_batch == a sequence of update_app calls."""

    def _seeded_runtime(self, soc, mem, rng, apps):
        runtime = MoCARuntime(soc, mem=mem)
        for app in apps:
            runtime.scoreboard.update(
                app,
                bw_rate=rng.uniform(0.1, 2.0) * mem.dram_bandwidth,
                score=rng.uniform(0.0, 20.0),
                demand=rng.uniform(0.05, 1.5) * mem.dram_bandwidth,
            )
        return runtime

    @pytest.mark.parametrize("seed", range(15))
    def test_batch_matches_update_app_sequence(self, soc, mem, seed):
        rng = random.Random(seed)
        apps = [f"a{i}" for i in range(rng.randint(2, 6))]
        costs = {
            app: build_network_cost(
                build_model(NETWORKS[rng.randrange(len(NETWORKS))]),
                soc, mem,
            )
            for app in apps
        }
        state = [
            (
                app,
                rng.randrange(len(costs[app].blocks)),
                rng.randint(1, soc.num_tiles),
                rng.randint(0, 11),
                rng.uniform(0.0, 1e8),
                rng.uniform(-1e6, 1e8),  # negative slack included
            )
            for app in apps
        ]
        seed_entries = rng.getstate()
        oracle = self._seeded_runtime(soc, mem, rng, apps)
        rng.setstate(seed_entries)
        batch = self._seeded_runtime(soc, mem, rng, apps)

        dram_bw = mem.dram_bandwidth
        l2_bw = mem.l2_bandwidth
        expected = []
        for app, bi, tiles, prio, remain, slack in state:
            block = costs[app].blocks[bi]
            decision = oracle.update_app(
                app, block, tiles, prio, remain, slack
            )
            expected.append(
                (app, decision.contention, decision.bw_rate)
            )
        items = [
            (
                app,
                costs[app].blocks[bi].bw_demand(
                    tiles, dram_bw, l2_bw, soc.overlap_f
                ),
                float(prio),
                remain,
                slack,
            )
            for app, bi, tiles, prio, remain, slack in state
        ]
        got = batch.regulate_batch(items)
        assert got == expected  # bit-identical rates, same flags
        # The published scoreboard state must match too: the next
        # decision round reads it.
        oracle_entries = oracle.scoreboard.entries()
        batch_entries = batch.scoreboard.entries()
        assert list(oracle_entries) == list(batch_entries)
        for app in oracle_entries:
            a, b = oracle_entries[app], batch_entries[app]
            assert (a.bw_rate, a.demand) == (b.bw_rate, b.demand)


class TestFastPathIdentity:
    """tentpole (c): the retired-blocks fast path changes nothing."""

    class _NoFastPath(MoCAPolicy):
        fast_path = False

    @pytest.mark.parametrize("seed", (0, 3))
    def test_fast_path_off_is_identical(self, soc, mem, seed):
        from repro.models.zoo import workload_set

        qos = QosModel(soc, slack_factor=2.0)
        gen = WorkloadGenerator(soc, workload_set("B"), mem, qos)
        tasks = gen.generate(WorkloadConfig(
            num_tasks=40, qos_level=QosLevel.MEDIUM,
            load_factor=0.7, seed=seed,
        ))
        runs = {}
        for label, policy_cls in (
            ("on", MoCAPolicy), ("off", self._NoFastPath),
        ):
            policy = policy_cls()
            policy.reset()
            runs[label] = Simulator(soc, tasks, policy, mem=mem).run()
        assert runs["on"].makespan == runs["off"].makespan
        assert tuple(runs["on"].results) == tuple(runs["off"].results)


class TestPredictMemoPickleFlat:
    """satellite: the predict memo must not leak into pickles.

    A warm parent process was shipping every ``BlockCost``'s memo dict
    (and every ``NetworkCost``'s runtime-table cache) inside the task
    payload of each pool worker; payload size grew with how long the
    parent had been running.  ``__getstate__`` drops both caches, so a
    warm instance pickles byte-for-byte like a cold one.
    """

    def test_warm_cost_pickles_byte_identical_to_cold(self, soc, mem):
        cost = build_network_cost(build_model("squeezenet"), soc, mem)
        for block in cost.blocks:
            block.clear_predict_memo()
        cost.__dict__.pop("_runtime_tables", None)
        cold = pickle.dumps(cost)
        # Warm the caches hard: many predict points + runtime tables.
        for tiles in range(1, soc.num_tiles + 1):
            cost.total_prediction(
                tiles, mem.dram_bandwidth, mem.l2_bandwidth,
                soc.overlap_f,
            )
            for block in cost.blocks:
                block.predict(
                    tiles, mem.dram_bandwidth * 1.5,
                    mem.l2_bandwidth, soc.overlap_f,
                )
        cost.runtime_table(
            mem.dram_bandwidth, mem.l2_bandwidth, soc.overlap_f,
            soc.num_tiles,
        )
        assert any(
            "_predict_memo" in b.__dict__ for b in cost.blocks
        )
        warm = pickle.dumps(cost)
        assert warm == cold

    def test_unpickled_cost_predicts_identically(self, soc, mem):
        cost = build_network_cost(build_model("kws"), soc, mem)
        args = (4, mem.dram_bandwidth, mem.l2_bandwidth, soc.overlap_f)
        want = cost.total_prediction(*args)
        clone = pickle.loads(pickle.dumps(cost))
        assert clone.total_prediction(*args) == want
