"""Tests for the streaming results pipeline: iter_cells, the
SweepResults accumulator (completion-order independence), the cell
manifest, and the warm-worker cache telemetry."""

import json
import random

import pytest

from repro.experiments.parallel import ParallelRunner
from repro.experiments.results import (
    CellResult,
    SweepResults,
    cell_manifest,
)
from repro.experiments.runner import (
    ScenarioSpec,
    default_policies,
    run_matrix,
)
from repro.scenarios import ScenarioSpec as RegistrySpec
from repro.sim.qos import QosLevel

SPECS = [
    ScenarioSpec(
        workload_set="A", qos_level=QosLevel.MEDIUM,
        num_tasks=12, seeds=(1, 2),
    ),
    ScenarioSpec(
        workload_set="A", qos_level=QosLevel.LIGHT,
        num_tasks=12, seeds=(3,),
    ),
]


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix(SPECS)


@pytest.fixture(scope="module")
def streamed_cells():
    runner = ParallelRunner(workers=2)
    return list(runner.iter_cells(SPECS)), runner


class TestIterCells:
    def test_yields_every_cell_exactly_once(self, streamed_cells):
        cells, _ = streamed_cells
        expected = len(SPECS[0].seeds + SPECS[1].seeds) * len(
            default_policies()
        )
        assert len(cells) == expected
        assert sorted(c.index for c in cells) == list(range(expected))

    def test_cells_carry_identity_and_telemetry(self, streamed_cells):
        cells, _ = streamed_cells
        for cell in cells:
            assert cell.label == SPECS[cell.spec_index].label
            assert cell.seed in SPECS[cell.spec_index].seeds
            assert cell.policy in default_policies()
            assert cell.seconds >= 0
            assert cell.worker_pid > 0
            assert cell.cost_cache_hits >= 0

    def test_aggregate_identical_to_serial(
        self, streamed_cells, serial_matrix
    ):
        """ISSUE tentpole: streaming aggregation must be bit-identical
        to the serial path on the same specs."""
        cells, _ = streamed_cells
        acc = SweepResults(SPECS, list(default_policies()))
        for cell in cells:
            acc.add(cell)
        matrix = acc.matrix()
        assert set(matrix) == set(serial_matrix)
        for label, cell in serial_matrix.items():
            for policy, result in cell.items():
                assert (
                    matrix[label][policy].per_seed == result.per_seed
                ), (label, policy)

    def test_warm_workers_pay_no_cost_cache_misses(self, streamed_cells):
        """ISSUE tentpole: the pool initializer pre-warms each worker,
        so pool-mode cells run at a 100 % cost-cache hit rate."""
        cells, runner = streamed_cells
        if runner.last_mode != "parallel":
            pytest.skip("process pool unavailable; warm path not exercised")
        assert sum(c.cost_cache_misses for c in cells) == 0
        assert sum(c.cost_cache_hits for c in cells) > 0

    def test_run_matrix_records_cells_in_submission_order(
        self, serial_matrix
    ):
        runner = ParallelRunner(workers=2)
        matrix = runner.run_matrix(SPECS)
        assert [c.index for c in runner.last_cells] == list(
            range(len(runner.last_cells))
        )
        assert [t.seconds for t in runner.last_timings] == [
            c.seconds for c in runner.last_cells
        ]
        for label, cell in serial_matrix.items():
            for policy, result in cell.items():
                assert matrix[label][policy].per_seed == result.per_seed


class TestSweepResultsOrderIndependence:
    def _cells(self):
        runner = ParallelRunner(workers=1)
        return list(runner.iter_cells(SPECS))

    def test_shuffled_completion_order_same_matrix(self, serial_matrix):
        """ISSUE satellite: feeding the stream in any completion order
        must produce the identical aggregate."""
        cells = self._cells()
        for trial in range(4):
            shuffled = cells[:]
            random.Random(trial).shuffle(shuffled)
            acc = SweepResults(SPECS, list(default_policies()))
            for cell in shuffled:
                acc.add(cell)
            matrix = acc.matrix()
            for label, cell in serial_matrix.items():
                for policy, result in cell.items():
                    assert (
                        matrix[label][policy].per_seed == result.per_seed
                    )

    def test_incomplete_matrix_raises(self):
        cells = self._cells()
        acc = SweepResults(SPECS, list(default_policies()))
        for cell in cells[:-1]:
            acc.add(cell)
        assert not acc.complete
        with pytest.raises(ValueError, match="incomplete"):
            acc.matrix()

    def test_duplicate_cell_rejected(self):
        cells = self._cells()
        acc = SweepResults(SPECS, list(default_policies()))
        acc.add(cells[0])
        with pytest.raises(ValueError, match="duplicate"):
            acc.add(cells[0])

    def test_mismatched_cell_rejected(self):
        cells = self._cells()
        acc = SweepResults(SPECS, list(default_policies()))
        imposter = CellResult(
            index=cells[0].index,
            spec_index=cells[0].spec_index,
            label=cells[0].label,
            policy="not-a-policy",
            seed=cells[0].seed,
            summary=cells[0].summary,
            seconds=0.0,
        )
        with pytest.raises(ValueError, match="expected"):
            acc.add(imposter)

    def test_duplicate_labels_rejected_at_construction(self):
        with pytest.raises(ValueError, match="duplicate scenario label"):
            SweepResults([SPECS[0], SPECS[0]], list(default_policies()))

    def test_cache_stats_aggregate(self):
        acc = SweepResults(SPECS, list(default_policies()))
        for cell in self._cells():
            acc.add(cell)
        stats = acc.cache_stats()
        assert set(stats) == {
            "cost_cache_hits", "cost_cache_misses",
            "predict_memo_hits", "predict_memo_misses",
        }
        assert stats["predict_memo_hits"] > 0


class TestCellManifest:
    def test_manifest_is_json_serialisable_and_complete(self):
        manifest = cell_manifest(SPECS)
        text = json.dumps(manifest, sort_keys=True)
        back = json.loads(text)
        expected_cells = len(SPECS[0].seeds + SPECS[1].seeds) * len(
            default_policies()
        )
        assert len(back["cells"]) == expected_cells
        assert [c["index"] for c in back["cells"]] == list(
            range(expected_cells)
        )
        assert back["policies"] == list(default_policies())
        labels = [s["label"] for s in back["scenarios"]]
        assert labels == [spec.label for spec in SPECS]

    def test_manifest_specs_round_trip(self):
        manifest = cell_manifest(SPECS)
        for entry, spec in zip(manifest["scenarios"], SPECS):
            rebuilt = RegistrySpec.from_dict(entry["spec"])
            assert rebuilt == spec

    def test_manifest_accepts_registry_names(self):
        manifest = cell_manifest(["bursty-mixed"])
        assert manifest["scenarios"][0]["label"] == "bursty-mixed"
        assert all(
            c["scenario"] == "bursty-mixed" for c in manifest["cells"]
        )

    def test_spec_to_dict_round_trips_rich_fields(self):
        spec = RegistrySpec(
            workload_set="A",
            num_tasks=8,
            seeds=(1, 2),
            arrival="bursty",
            model_mix=(("kws", 0.6), ("squeezenet", 0.4)),
            priority_weights=tuple(float(i + 1) for i in range(12)),
        )
        assert RegistrySpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="unknown"):
            RegistrySpec.from_dict({"not_a_field": 1})


class TestEngineCacheCounters:
    def _tasks(self, task_factory):
        return [
            task_factory(task_id=f"t{i}", dispatch=float(i) * 10.0)
            for i in range(4)
        ]

    @staticmethod
    def _deltas(result):
        from repro.core.latency import CACHE_COUNTER_FIELDS

        return {name: getattr(result, name) for name in CACHE_COUNTER_FIELDS}

    def test_sim_result_carries_cache_deltas(self, task_factory):
        from repro.config import DEFAULT_SOC
        from repro.core.policy import MoCAPolicy
        from repro.sim.engine import run_simulation

        tasks = self._tasks(task_factory)
        result = run_simulation(DEFAULT_SOC, tasks, MoCAPolicy())
        assert result.predict_memo_hits + result.predict_memo_misses > 0
        assert result.cost_cache_hits >= 0
        assert result.cost_cache_misses >= 0

    def test_interleaved_runs_do_not_double_count(self, task_factory):
        """ISSUE satellite: deltas used to be diffs of process-global
        counters snapshotted at *construction*, so constructing two
        simulators and running them in reverse order attributed the
        first run's probes to both results."""
        from repro.config import DEFAULT_SOC
        from repro.core.policy import MoCAPolicy
        from repro.sim.engine import Simulator

        tasks = self._tasks(task_factory)
        # Warm every cache, then measure one clean run as reference.
        Simulator(DEFAULT_SOC, tasks, MoCAPolicy()).run()
        reference = self._deltas(
            Simulator(DEFAULT_SOC, tasks, MoCAPolicy()).run()
        )
        sim_a = Simulator(DEFAULT_SOC, tasks, MoCAPolicy())
        sim_b = Simulator(DEFAULT_SOC, tasks, MoCAPolicy())
        result_b = sim_b.run()
        result_a = sim_a.run()
        assert self._deltas(result_b) == reference
        assert self._deltas(result_a) == reference

    def test_reset_between_construction_and_run_stays_non_negative(
        self, task_factory
    ):
        """A reset_cache_stats() after construction used to drive the
        deltas negative (after-run counters < at-init snapshot)."""
        from repro.config import DEFAULT_SOC
        from repro.core.latency import reset_cache_stats
        from repro.core.policy import MoCAPolicy
        from repro.sim.engine import Simulator

        tasks = self._tasks(task_factory)
        Simulator(DEFAULT_SOC, tasks, MoCAPolicy()).run()
        reference = self._deltas(
            Simulator(DEFAULT_SOC, tasks, MoCAPolicy()).run()
        )
        sim = Simulator(DEFAULT_SOC, tasks, MoCAPolicy())
        reset_cache_stats()
        deltas = self._deltas(sim.run())
        assert all(v >= 0 for v in deltas.values())
        assert deltas == reference

    def test_track_cache_deltas_nests_without_sibling_leakage(
        self, task_factory
    ):
        """An outer frame (a sweep cell) contains its inner run's
        probes; a sibling frame opened afterwards sees none of them."""
        from repro.config import DEFAULT_SOC
        from repro.core.latency import track_cache_deltas
        from repro.core.policy import MoCAPolicy
        from repro.sim.engine import run_simulation

        tasks = self._tasks(task_factory)
        with track_cache_deltas() as outer:
            result = run_simulation(DEFAULT_SOC, tasks, MoCAPolicy())
        inner = self._deltas(result)
        for name, count in inner.items():
            assert outer[name] >= count
        with track_cache_deltas() as sibling:
            pass
        assert all(v == 0 for v in sibling.values())

    def test_nested_equal_frames_close_by_identity(self):
        """Regression (review finding): two nested frames must each
        close their own frame on exit — equality-based removal used to
        pop the wrong frame when their contents compared equal."""
        from repro.core import latency
        from repro.core.latency import (
            CACHE_COUNTER_FIELDS,
            track_cache_deltas,
        )

        probe = CACHE_COUNTER_FIELDS[0]
        with track_cache_deltas() as outer:
            with track_cache_deltas() as inner:
                latency._CACHE_STATS[probe] += 1  # what a probe site does
            latency._CACHE_STATS[probe] += 1  # belongs to outer only
        assert inner[probe] == 1
        assert outer[probe] == 2

    def test_reset_mid_frame_keeps_delta_continuous(self):
        """reset_cache_stats() inside an open frame re-bases it: the
        probes made before the reset stay counted, nothing negative."""
        from repro.core import latency
        from repro.core.latency import (
            CACHE_COUNTER_FIELDS,
            reset_cache_stats,
            track_cache_deltas,
        )

        probe = CACHE_COUNTER_FIELDS[0]
        with track_cache_deltas() as frame:
            latency._CACHE_STATS[probe] += 1
            reset_cache_stats()
            latency._CACHE_STATS[probe] += 1
        assert frame[probe] == 2
        assert all(v >= 0 for v in frame.values())


class TestCellFailure:
    """CellFailure records (ISSUE tentpole): quarantine bookkeeping on
    the accumulator and the serialization round-trip."""

    @staticmethod
    def _failure(index=0, **overrides):
        from repro.experiments.results import CellFailure

        acc = SweepResults(SPECS, list(default_policies()))
        spec_index, policy, seed = acc._slots[index]
        base = dict(
            index=index, spec_index=spec_index,
            label=SPECS[spec_index].label, policy=policy, seed=seed,
            kind="error", attempts=1, message="boom",
        )
        base.update(overrides)
        return CellFailure(**base)

    def test_invalid_kind_and_attempts_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            self._failure(kind="melted")
        with pytest.raises(ValueError, match="attempts"):
            self._failure(attempts=0)

    def test_dict_round_trip(self):
        from repro.experiments.results import (
            failure_from_dict,
            failure_to_dict,
        )

        failure = self._failure(index=2, kind="timeout", attempts=3)
        payload = json.loads(json.dumps(failure_to_dict(failure)))
        assert failure_from_dict(payload) == failure

    def test_add_failure_validates_like_add(self):
        import dataclasses

        acc = SweepResults(SPECS, list(default_policies()))
        outside = dataclasses.replace(self._failure(index=0), index=10**6)
        with pytest.raises(ValueError, match="outside sweep"):
            acc.add_failure(outside)
        with pytest.raises(ValueError, match="expected"):
            acc.add_failure(self._failure(index=0, seed=999))

    def test_degraded_flag_and_missing_semantics(self):
        acc = SweepResults(SPECS, list(default_policies()))
        assert not acc.degraded
        failure = self._failure(index=1)
        acc.add_failure(failure)
        assert acc.degraded
        assert acc.failed_indices() == [1]
        # Quarantined cells count as missing: resume re-runs them.
        assert 1 in acc.missing_indices()

    def test_success_supersedes_failure(self):
        runner = ParallelRunner(workers=1)
        cells = list(runner.iter_cells(SPECS))
        acc = SweepResults(SPECS, list(default_policies()))
        acc.add_failure(self._failure(index=0))
        acc.add(next(c for c in cells if c.index == 0))
        assert acc.failed_indices() == []
        # ... and a stale failure arriving after the result is dropped.
        acc.add_failure(self._failure(index=0))
        assert acc.failed_indices() == []
        assert acc.has_cell(0)

    def test_incomplete_matrix_error_counts_quarantined(self):
        acc = SweepResults(SPECS, list(default_policies()))
        acc.add_failure(self._failure(index=1))
        with pytest.raises(ValueError, match="quarantined"):
            acc.matrix()
