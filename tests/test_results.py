"""Tests for the streaming results pipeline: iter_cells, the
SweepResults accumulator (completion-order independence), the cell
manifest, and the warm-worker cache telemetry."""

import json
import random

import pytest

from repro.experiments.parallel import ParallelRunner
from repro.experiments.results import (
    CellResult,
    SweepResults,
    cell_manifest,
)
from repro.experiments.runner import (
    ScenarioSpec,
    default_policies,
    run_matrix,
)
from repro.scenarios import ScenarioSpec as RegistrySpec
from repro.sim.qos import QosLevel

SPECS = [
    ScenarioSpec(
        workload_set="A", qos_level=QosLevel.MEDIUM,
        num_tasks=12, seeds=(1, 2),
    ),
    ScenarioSpec(
        workload_set="A", qos_level=QosLevel.LIGHT,
        num_tasks=12, seeds=(3,),
    ),
]


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix(SPECS)


@pytest.fixture(scope="module")
def streamed_cells():
    runner = ParallelRunner(workers=2)
    return list(runner.iter_cells(SPECS)), runner


class TestIterCells:
    def test_yields_every_cell_exactly_once(self, streamed_cells):
        cells, _ = streamed_cells
        expected = len(SPECS[0].seeds + SPECS[1].seeds) * len(
            default_policies()
        )
        assert len(cells) == expected
        assert sorted(c.index for c in cells) == list(range(expected))

    def test_cells_carry_identity_and_telemetry(self, streamed_cells):
        cells, _ = streamed_cells
        for cell in cells:
            assert cell.label == SPECS[cell.spec_index].label
            assert cell.seed in SPECS[cell.spec_index].seeds
            assert cell.policy in default_policies()
            assert cell.seconds >= 0
            assert cell.worker_pid > 0
            assert cell.cost_cache_hits >= 0

    def test_aggregate_identical_to_serial(
        self, streamed_cells, serial_matrix
    ):
        """ISSUE tentpole: streaming aggregation must be bit-identical
        to the serial path on the same specs."""
        cells, _ = streamed_cells
        acc = SweepResults(SPECS, list(default_policies()))
        for cell in cells:
            acc.add(cell)
        matrix = acc.matrix()
        assert set(matrix) == set(serial_matrix)
        for label, cell in serial_matrix.items():
            for policy, result in cell.items():
                assert (
                    matrix[label][policy].per_seed == result.per_seed
                ), (label, policy)

    def test_warm_workers_pay_no_cost_cache_misses(self, streamed_cells):
        """ISSUE tentpole: the pool initializer pre-warms each worker,
        so pool-mode cells run at a 100 % cost-cache hit rate."""
        cells, runner = streamed_cells
        if runner.last_mode != "parallel":
            pytest.skip("process pool unavailable; warm path not exercised")
        assert sum(c.cost_cache_misses for c in cells) == 0
        assert sum(c.cost_cache_hits for c in cells) > 0

    def test_run_matrix_records_cells_in_submission_order(
        self, serial_matrix
    ):
        runner = ParallelRunner(workers=2)
        matrix = runner.run_matrix(SPECS)
        assert [c.index for c in runner.last_cells] == list(
            range(len(runner.last_cells))
        )
        assert [t.seconds for t in runner.last_timings] == [
            c.seconds for c in runner.last_cells
        ]
        for label, cell in serial_matrix.items():
            for policy, result in cell.items():
                assert matrix[label][policy].per_seed == result.per_seed


class TestSweepResultsOrderIndependence:
    def _cells(self):
        runner = ParallelRunner(workers=1)
        return list(runner.iter_cells(SPECS))

    def test_shuffled_completion_order_same_matrix(self, serial_matrix):
        """ISSUE satellite: feeding the stream in any completion order
        must produce the identical aggregate."""
        cells = self._cells()
        for trial in range(4):
            shuffled = cells[:]
            random.Random(trial).shuffle(shuffled)
            acc = SweepResults(SPECS, list(default_policies()))
            for cell in shuffled:
                acc.add(cell)
            matrix = acc.matrix()
            for label, cell in serial_matrix.items():
                for policy, result in cell.items():
                    assert (
                        matrix[label][policy].per_seed == result.per_seed
                    )

    def test_incomplete_matrix_raises(self):
        cells = self._cells()
        acc = SweepResults(SPECS, list(default_policies()))
        for cell in cells[:-1]:
            acc.add(cell)
        assert not acc.complete
        with pytest.raises(ValueError, match="incomplete"):
            acc.matrix()

    def test_duplicate_cell_rejected(self):
        cells = self._cells()
        acc = SweepResults(SPECS, list(default_policies()))
        acc.add(cells[0])
        with pytest.raises(ValueError, match="duplicate"):
            acc.add(cells[0])

    def test_mismatched_cell_rejected(self):
        cells = self._cells()
        acc = SweepResults(SPECS, list(default_policies()))
        imposter = CellResult(
            index=cells[0].index,
            spec_index=cells[0].spec_index,
            label=cells[0].label,
            policy="not-a-policy",
            seed=cells[0].seed,
            summary=cells[0].summary,
            seconds=0.0,
        )
        with pytest.raises(ValueError, match="expected"):
            acc.add(imposter)

    def test_duplicate_labels_rejected_at_construction(self):
        with pytest.raises(ValueError, match="duplicate scenario label"):
            SweepResults([SPECS[0], SPECS[0]], list(default_policies()))

    def test_cache_stats_aggregate(self):
        acc = SweepResults(SPECS, list(default_policies()))
        for cell in self._cells():
            acc.add(cell)
        stats = acc.cache_stats()
        assert set(stats) == {
            "cost_cache_hits", "cost_cache_misses",
            "predict_memo_hits", "predict_memo_misses",
        }
        assert stats["predict_memo_hits"] > 0


class TestCellManifest:
    def test_manifest_is_json_serialisable_and_complete(self):
        manifest = cell_manifest(SPECS)
        text = json.dumps(manifest, sort_keys=True)
        back = json.loads(text)
        expected_cells = len(SPECS[0].seeds + SPECS[1].seeds) * len(
            default_policies()
        )
        assert len(back["cells"]) == expected_cells
        assert [c["index"] for c in back["cells"]] == list(
            range(expected_cells)
        )
        assert back["policies"] == list(default_policies())
        labels = [s["label"] for s in back["scenarios"]]
        assert labels == [spec.label for spec in SPECS]

    def test_manifest_specs_round_trip(self):
        manifest = cell_manifest(SPECS)
        for entry, spec in zip(manifest["scenarios"], SPECS):
            rebuilt = RegistrySpec.from_dict(entry["spec"])
            assert rebuilt == spec

    def test_manifest_accepts_registry_names(self):
        manifest = cell_manifest(["bursty-mixed"])
        assert manifest["scenarios"][0]["label"] == "bursty-mixed"
        assert all(
            c["scenario"] == "bursty-mixed" for c in manifest["cells"]
        )

    def test_spec_to_dict_round_trips_rich_fields(self):
        spec = RegistrySpec(
            workload_set="A",
            num_tasks=8,
            seeds=(1, 2),
            arrival="bursty",
            model_mix=(("kws", 0.6), ("squeezenet", 0.4)),
            priority_weights=tuple(float(i + 1) for i in range(12)),
        )
        assert RegistrySpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="unknown"):
            RegistrySpec.from_dict({"not_a_field": 1})


class TestEngineCacheCounters:
    def test_sim_result_carries_cache_deltas(self, task_factory):
        from repro.core.policy import MoCAPolicy
        from repro.sim.engine import run_simulation

        tasks = [
            task_factory(task_id=f"t{i}", dispatch=float(i) * 10.0)
            for i in range(4)
        ]
        from repro.config import DEFAULT_SOC

        result = run_simulation(DEFAULT_SOC, tasks, MoCAPolicy())
        assert result.predict_memo_hits + result.predict_memo_misses > 0
        assert result.cost_cache_hits >= 0
        assert result.cost_cache_misses >= 0
