"""Tests for repro.sanitizer (REPRO_CHECK=1 runtime cross-checks).

Three properties: sanitized mode is a *pure observer* (identical
results to an unchecked run), each hook actually catches an injected
violation of its invariant, and the errors are SanitizerError (an
AssertionError — always a bug, never user input)."""

import pytest

import repro.sanitizer as sanitizer
from repro.core.policy import MoCAPolicy
from repro.experiments.execution.leases import WorkLedger
from repro.experiments.results import cell_manifest
from repro.scenarios import ScenarioSpec
from repro.sim.engine import Simulator
from repro.sim.plan import AllocationPlan


@pytest.fixture()
def sanitized(monkeypatch):
    """Sanitized mode on for one test, off again after."""
    monkeypatch.setattr(sanitizer, "enabled", True)


@pytest.fixture()
def unsanitized(monkeypatch):
    monkeypatch.setattr(sanitizer, "enabled", False)


def _run(soc, mem, task_factory, n=4):
    tasks = [
        task_factory(task_id=f"t{i}", dispatch=50.0 * i)
        for i in range(n)
    ]
    policy = MoCAPolicy()
    policy.reset()
    sim = Simulator(soc, tasks, policy, mem=mem)
    outcome = sim.run()
    return sim, {
        r.task_id: (r.started_at, r.finished_at)
        for r in outcome.results
    }


TINY_MANIFEST_SPECS = [
    ScenarioSpec(workload_set="A", num_tasks=4, seeds=(1,))
]


def _ledger(**kwargs):
    manifest = cell_manifest(TINY_MANIFEST_SPECS)
    return WorkLedger(manifest, **kwargs)


class TestSwitch:
    def test_enable_disable_toggle(self):
        before = sanitizer.enabled
        try:
            sanitizer.enable()
            assert sanitizer.enabled
            sanitizer.disable()
            assert not sanitizer.enabled
        finally:
            sanitizer.enabled = before

    def test_env_seeding(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert sanitizer._env_enabled()
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not sanitizer._env_enabled()
        monkeypatch.delenv("REPRO_CHECK")
        assert not sanitizer._env_enabled()

    def test_sanitizer_error_is_assertion_error(self):
        assert issubclass(sanitizer.SanitizerError, AssertionError)
        with pytest.raises(AssertionError):
            sanitizer.require(False, "nope")


class TestPureObserver:
    def test_sanitized_run_identical_to_unchecked(
        self, soc, mem, task_factory, monkeypatch
    ):
        monkeypatch.setattr(sanitizer, "enabled", False)
        _, plain = _run(soc, mem, task_factory)
        monkeypatch.setattr(sanitizer, "enabled", True)
        sim, checked = _run(soc, mem, task_factory)
        assert checked == plain
        # The solver spot-check actually ran (first recompute at
        # minimum) — identity above wasn't vacuous.
        assert sim._solve_checks >= 1

    def test_scalar_solver_runs_unchecked(
        self, soc, mem, task_factory, sanitized
    ):
        # The spot-check compares vector against the scalar oracle;
        # a scalar-solver sim has nothing to cross-check.
        tasks = [task_factory(task_id="t0")]
        sim = Simulator(
            soc, tasks, MoCAPolicy(), mem=mem, solver="scalar"
        )
        sim.run()
        assert sim._solve_checks == 0


class TestSolverSpotCheck:
    def test_injected_divergence_caught(
        self, soc, mem, task_factory, sanitized
    ):
        tasks = [task_factory(task_id=f"t{i}") for i in range(2)]
        sim = Simulator(soc, tasks, MoCAPolicy(), mem=mem)

        def lying_scalar():
            return {}

        sim._solve_scalar = lying_scalar
        with pytest.raises(
            sanitizer.SanitizerError, match="solver divergence"
        ):
            sim.run()

    def test_check_solver_agreement_reports_job_detail(self):
        with pytest.raises(
            sanitizer.SanitizerError, match="job 'a'"
        ):
            sanitizer.check_solver_agreement(
                {"a": 1.0}, {"a": 2.0}, now=7.0
            )
        with pytest.raises(
            sanitizer.SanitizerError, match="missing jobs \\['b'\\]"
        ):
            sanitizer.check_solver_agreement(
                {}, {"b": 2.0}, now=7.0
            )
        # Agreement is silent.
        sanitizer.check_solver_agreement(
            {"a": 1.0}, {"a": 1.0}, now=7.0
        )


class TestTrustedPlanRevalidation:
    def test_duplicate_caps_caught(
        self, soc, mem, task_factory, sanitized
    ):
        tasks = [task_factory(task_id="t0")]
        sim = Simulator(soc, tasks, MoCAPolicy(), mem=mem)
        sim._dispatch_arrivals()
        sim.start_job(sim.ready[0], tiles=2)
        # The trusted caps-only hot path would apply this silently
        # (last write wins); under REPRO_CHECK it is a broken proof
        # obligation.
        plan = AllocationPlan.trusted(
            bw_caps=(("t0", 4.0), ("t0", 2.0))
        )
        with pytest.raises(
            sanitizer.SanitizerError, match="duplicate"
        ):
            sim.controller.apply(plan)

    def test_finished_job_caught(
        self, soc, mem, task_factory, sanitized
    ):
        tasks = [task_factory(task_id=f"t{i}") for i in range(2)]
        sim = Simulator(soc, tasks, MoCAPolicy(), mem=mem)
        sim.run()
        assert sim.jobs["t0"].phase.name == "FINISHED"
        plan = AllocationPlan.trusted(bw_caps=(("t0", 4.0),))
        with pytest.raises(
            sanitizer.SanitizerError, match="finished"
        ):
            sim.controller.apply(plan)

    def test_valid_trusted_plan_passes(
        self, soc, mem, task_factory, sanitized
    ):
        tasks = [task_factory(task_id="t0")]
        sim = Simulator(soc, tasks, MoCAPolicy(), mem=mem)
        sim._dispatch_arrivals()
        sim.start_job(sim.ready[0], tiles=2)
        plan = AllocationPlan.trusted(bw_caps=(("t0", 4.0),))
        sim.controller.apply(plan)  # no raise

    def test_unchecked_mode_skips_revalidation(
        self, soc, mem, task_factory, unsanitized
    ):
        # Without REPRO_CHECK the duplicate sails through the hot
        # path (last write wins) — pinned so the sanitizer test
        # above is known to be testing the sanitizer, not apply().
        tasks = [task_factory(task_id="t0")]
        sim = Simulator(soc, tasks, MoCAPolicy(), mem=mem)
        sim._dispatch_arrivals()
        sim.start_job(sim.ready[0], tiles=2)
        plan = AllocationPlan.trusted(
            bw_caps=(("t0", 4.0), ("t0", 2.0))
        )
        sim.controller.apply(plan)  # no raise


class TestLedgerInvariants:
    def test_clean_lifecycle_passes(self, sanitized):
        ledger = _ledger(lease_ttl=None)
        while True:
            lease = ledger.request_lease("w1")
            if lease is None:
                break
            for index in lease.indices:
                ledger.complete(index)
        assert ledger.drained

    def test_corrupted_owner_map_caught(self, sanitized):
        ledger = _ledger(lease_ttl=None)
        lease = ledger.request_lease("w1")
        # Orphan a cell: owned by a lease id that was never issued.
        ledger._owner[lease.indices[0]] = 999
        with pytest.raises(
            sanitizer.SanitizerError, match="dead lease"
        ):
            ledger.heartbeat(lease.lease_id)

    def test_corrupted_state_caught(self, sanitized):
        ledger = _ledger(lease_ttl=None)
        lease = ledger.request_lease("w1")
        ledger._state[lease.indices[0]] = "gremlin"
        with pytest.raises(
            sanitizer.SanitizerError, match="invalid cell state"
        ):
            ledger.heartbeat(lease.lease_id)

    def test_owner_state_disagreement_caught(self, sanitized):
        ledger = _ledger(lease_ttl=None)
        lease = ledger.request_lease("w1")
        # A LEASED cell with no owner entry breaks the covering map.
        del ledger._owner[lease.indices[0]]
        with pytest.raises(
            sanitizer.SanitizerError, match="owner map"
        ):
            ledger.heartbeat(lease.lease_id)

    def test_unchecked_mode_never_checks(self, unsanitized):
        ledger = _ledger(lease_ttl=None)
        lease = ledger.request_lease("w1")
        ledger._owner[lease.indices[0]] = 999
        # No invariant pass, no raise: the corruption only surfaces
        # under REPRO_CHECK (or as downstream misbehaviour).
        ledger.heartbeat(lease.lease_id)
