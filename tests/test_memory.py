"""Tests for repro.memory (L2, DRAM, hierarchy)."""

import pytest

from repro.config import DEFAULT_SOC
from repro.memory.dram import DramModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.l2 import L2Model


class TestL2Model:
    def test_from_soc(self):
        l2 = L2Model.from_soc(DEFAULT_SOC)
        assert l2.capacity_bytes == DEFAULT_SOC.l2_bytes
        assert l2.banks == 8

    def test_peak_bandwidth(self):
        l2 = L2Model.from_soc(DEFAULT_SOC)
        assert l2.peak_bandwidth == pytest.approx(128.0)

    def test_effective_capacity_partitions(self):
        l2 = L2Model.from_soc(DEFAULT_SOC)
        assert l2.effective_capacity(2) == pytest.approx(
            l2.effective_capacity(1) / 2
        )

    def test_fits_small(self):
        l2 = L2Model.from_soc(DEFAULT_SOC)
        assert l2.fits(1024)

    def test_does_not_fit_oversized(self):
        l2 = L2Model.from_soc(DEFAULT_SOC)
        assert not l2.fits(l2.capacity_bytes + 1)

    def test_sharers_evict(self):
        l2 = L2Model.from_soc(DEFAULT_SOC)
        size = int(l2.effective_capacity(1) * 0.6)
        assert l2.fits(size, num_sharers=1)
        assert not l2.fits(size, num_sharers=2)

    def test_invalid_sharers(self):
        with pytest.raises(ValueError):
            L2Model.from_soc(DEFAULT_SOC).effective_capacity(0)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            L2Model.from_soc(DEFAULT_SOC).fits(-1)

    @pytest.mark.parametrize("kwargs", [
        dict(capacity_bytes=0, banks=8, bytes_per_bank_cycle=16),
        dict(capacity_bytes=1024, banks=0, bytes_per_bank_cycle=16),
        dict(capacity_bytes=1024, banks=8, bytes_per_bank_cycle=0),
        dict(capacity_bytes=1024, banks=8, bytes_per_bank_cycle=16,
             residency_fraction=0.0),
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            L2Model(**kwargs)


class TestDramModel:
    def test_from_soc(self):
        dram = DramModel.from_soc(DEFAULT_SOC)
        assert dram.peak_bytes_per_cycle == 16.0

    def test_usable_bandwidth(self):
        dram = DramModel(peak_bytes_per_cycle=16.0, efficiency=0.75)
        assert dram.usable_bandwidth == pytest.approx(12.0)

    def test_transfer_cycles(self):
        dram = DramModel(peak_bytes_per_cycle=16.0)
        assert dram.transfer_cycles(160) == pytest.approx(10.0)

    def test_transfer_negative(self):
        with pytest.raises(ValueError):
            DramModel(peak_bytes_per_cycle=16.0).transfer_cycles(-1)

    def test_single_stream_no_penalty(self):
        dram = DramModel.from_soc(DEFAULT_SOC)
        assert dram.effective_bandwidth(1, oversubscribed=True) == (
            dram.usable_bandwidth
        )

    def test_no_penalty_when_undersubscribed(self):
        dram = DramModel.from_soc(DEFAULT_SOC)
        assert dram.effective_bandwidth(4, oversubscribed=False) == (
            dram.usable_bandwidth
        )

    def test_penalty_grows_with_streams(self):
        dram = DramModel.from_soc(DEFAULT_SOC)
        b2 = dram.effective_bandwidth(2, oversubscribed=True)
        b4 = dram.effective_bandwidth(4, oversubscribed=True)
        b8 = dram.effective_bandwidth(8, oversubscribed=True)
        assert dram.usable_bandwidth > b2 > b4 > b8

    def test_penalty_bounded(self):
        dram = DramModel.from_soc(DEFAULT_SOC)
        floor = dram.usable_bandwidth * (1 - dram.contention_penalty)
        assert dram.effective_bandwidth(1000, oversubscribed=True) >= floor

    def test_negative_streams_raise(self):
        with pytest.raises(ValueError):
            DramModel.from_soc(DEFAULT_SOC).effective_bandwidth(-1, True)

    @pytest.mark.parametrize("kwargs", [
        dict(peak_bytes_per_cycle=0),
        dict(peak_bytes_per_cycle=16, efficiency=0),
        dict(peak_bytes_per_cycle=16, efficiency=1.5),
        dict(peak_bytes_per_cycle=16, contention_penalty=1.0),
        dict(peak_bytes_per_cycle=16, contention_penalty=-0.1),
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            DramModel(**kwargs)


class TestMemoryHierarchy:
    def test_from_soc(self):
        mem = MemoryHierarchy.from_soc(DEFAULT_SOC)
        assert mem.dram_bandwidth == pytest.approx(16.0)
        assert mem.l2_bandwidth == pytest.approx(128.0)

    def test_input_cached_small(self):
        mem = MemoryHierarchy.from_soc(DEFAULT_SOC)
        assert mem.input_cached(224 * 224 * 3)  # 147 KB fits in 2 MB

    def test_input_not_cached_large(self):
        mem = MemoryHierarchy.from_soc(DEFAULT_SOC)
        assert not mem.input_cached(4 * 1024 * 1024)

    def test_tile_cached(self):
        mem = MemoryHierarchy.from_soc(DEFAULT_SOC)
        assert mem.tile_cached(64 * 1024)

    def test_share_dram_empty(self):
        mem = MemoryHierarchy.from_soc(DEFAULT_SOC)
        assert mem.share_dram({}) == {}

    def test_share_dram_respects_total(self):
        mem = MemoryHierarchy.from_soc(DEFAULT_SOC)
        shares = mem.share_dram({"a": 20.0, "b": 20.0})
        assert sum(shares.values()) <= mem.dram_bandwidth * 1.001
