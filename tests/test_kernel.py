"""Property pins for the epoch-horizon kernel (ISSUE 10 tentpole).

``solver="kernel"`` collapses runs of pure-completion events into one
fused advance+retire sweep, but it replicates the incremental loop's
float sequence operation for operation — so every simulation it runs
must be **bit-identical** (``==`` on floats, no tolerance) to both the
incremental vector path and the scalar reference.  These tests pin
that across:

- random scenarios (workload set, QoS level, load factor, task count
  all drawn from a seeded RNG) crossed with *all three* decision
  cadences;
- fault-injected supervised sweeps (transient faults + retries), where
  the retried cells must land bit-identical whichever solver ran them;
- the 36-cell reference matrix (nine scenarios x four policies) at
  spot-check size;
- the REPRO_CHECK sanitizer hook: an injected kernel divergence is
  caught, and agreement reports carry per-job detail.
"""

import random

import pytest

import repro.sanitizer as sanitizer
from repro.core.policy import MoCAPolicy
from repro.experiments.faults import FaultPlan
from repro.experiments.golden import reference_specs, summary_fingerprint
from repro.experiments.parallel import ParallelRunner, Supervision
from repro.experiments.runner import default_policies, run_cell_detail
from repro.models.zoo import workload_set
from repro.scenarios import ScenarioSpec
from repro.sim.engine import Simulator
from repro.sim.plan import DecisionCadence
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

SOLVERS = ("kernel", "vector", "scalar")

#: Every decision-cadence mode the engine supports.
CADENCES = (
    DecisionCadence(),
    DecisionCadence(mode="block-boundary"),
    DecisionCadence(mode="interval", interval=5e5),
)

QOS_LEVELS = (QosLevel.HARD, QosLevel.MEDIUM, QosLevel.LIGHT)


def _random_tasks(soc, mem, seed):
    """A randomized scenario: workload set, QoS level, slack, load and
    task count all drawn from the seed."""
    rng = random.Random(seed)
    qos = QosModel(soc, slack_factor=rng.uniform(1.5, 3.0))
    gen = WorkloadGenerator(
        soc, workload_set(rng.choice("ABC")), mem, qos
    )
    return gen.generate(
        WorkloadConfig(
            num_tasks=rng.randint(10, 20),
            qos_level=rng.choice(QOS_LEVELS),
            load_factor=rng.uniform(0.4, 1.2),
            seed=seed,
        )
    )


def _run(soc, mem, tasks, cadence, solver):
    policy = MoCAPolicy()
    policy.reset()
    return Simulator(
        soc, tasks, policy, mem=mem, cadence=cadence, solver=solver
    ).run()


class TestKernelBitIdentity:
    """Random scenarios x all cadences: three solvers, one result."""

    @pytest.mark.parametrize(
        "cadence", CADENCES, ids=[c.key for c in CADENCES]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_random_scenarios_identical_across_solvers(
        self, soc, mem, seed, cadence
    ):
        tasks = _random_tasks(soc, mem, seed)
        runs = {
            solver: _run(soc, mem, tasks, cadence, solver)
            for solver in SOLVERS
        }
        kernel = runs["kernel"]
        for other in ("vector", "scalar"):
            assert kernel.makespan == runs[other].makespan
            assert tuple(kernel.results) == tuple(runs[other].results)

    def test_kernel_fuses_events(self, soc, mem):
        """The kernel must actually reuse the epoch solve across the
        fused sweeps — otherwise it is just a slower incremental
        loop wearing the default's name."""
        tasks = _random_tasks(soc, mem, seed=0)
        result = _run(soc, mem, tasks, DecisionCadence(), "kernel")
        assert result.block_time_reuses > 0
        assert result.block_time_recomputes < result.events


class TestKernelUnderSupervision:
    """Fault-injected supervised sweeps land bit-identical whichever
    solver ran the (possibly retried) cells."""

    SPEC = ScenarioSpec(
        workload_set="A", qos_level=QosLevel.MEDIUM, num_tasks=8,
        seeds=(1, 2),
    )
    PLAN = FaultPlan.parse("transient:cells=0,5")

    def _supervised(self, solver):
        runner = ParallelRunner(workers=1, solver=solver)
        return runner.run_supervised(
            [self.SPEC],
            supervision=Supervision(
                fault_plan=self.PLAN, backoff_base=0.0
            ),
        )

    def test_fault_injected_sweep_identical_across_solvers(self):
        accs = {s: self._supervised(s) for s in SOLVERS}
        for acc in accs.values():
            assert acc.complete and not acc.degraded
        reference = accs["kernel"].matrix()
        assert accs["vector"].matrix() == reference
        assert accs["scalar"].matrix() == reference


class TestReferenceMatrixSpotCheck:
    """The 36 reference cells (nine scenarios x four policies) at
    spot-check size: kernel and incremental fingerprints identical."""

    def test_all_36_cells_identical(self):
        specs = reference_specs(num_tasks=10, seeds=(1,))
        policies = default_policies()
        assert len(specs) * len(policies) == 36
        for spec in specs:
            for name, factory in policies.items():
                prints = {}
                for solver in ("kernel", "vector"):
                    summary, _ = run_cell_detail(
                        spec, name, factory, seed=1, solver=solver
                    )
                    prints[solver] = summary_fingerprint(summary)
                assert prints["kernel"] == prints["vector"], (
                    f"cell ({spec.label}, {name}) diverged"
                )


class TestKernelSanitizer:
    """REPRO_CHECK=1 spot-checks the fused solve against the
    incremental oracle; an injected divergence must be caught."""

    def test_injected_kernel_divergence_caught(
        self, soc, mem, task_factory, monkeypatch
    ):
        monkeypatch.setattr(sanitizer, "enabled", True)
        tasks = [task_factory(task_id=f"t{i}") for i in range(3)]
        sim = Simulator(soc, tasks, MoCAPolicy(), mem=mem)
        assert sim.solver == "kernel"
        # Lie consistently through both incremental oracles so the
        # vector-vs-scalar agreement check stays silent and the
        # divergence is attributed to the kernel solve itself.
        sim._solve = lambda: {}
        sim._solve_scalar = lambda: {}
        with pytest.raises(
            sanitizer.SanitizerError, match="horizon-kernel divergence"
        ):
            sim.run()

    def test_check_kernel_agreement_reports_job_detail(self):
        with pytest.raises(
            sanitizer.SanitizerError, match="job 'a'"
        ):
            sanitizer.check_kernel_agreement(
                {"a": 1.0}, {"a": 2.0}, now=3.0
            )
        with pytest.raises(
            sanitizer.SanitizerError, match="extra jobs \\['x'\\]"
        ):
            sanitizer.check_kernel_agreement(
                {"x": 1.0}, {}, now=3.0
            )
        # Agreement is silent.
        sanitizer.check_kernel_agreement(
            {"a": 1.0}, {"a": 1.0}, now=3.0
        )

    def test_sanitized_kernel_run_identical_to_unchecked(
        self, soc, mem, monkeypatch
    ):
        """The spot-check is a pure observer: a sanitized kernel run
        returns the same floats as an unchecked one."""
        tasks = _random_tasks(soc, mem, seed=2)
        monkeypatch.setattr(sanitizer, "enabled", False)
        plain = _run(soc, mem, tasks, DecisionCadence(), "kernel")
        monkeypatch.setattr(sanitizer, "enabled", True)
        checked = _run(soc, mem, tasks, DecisionCadence(), "kernel")
        assert checked.makespan == plain.makespan
        assert tuple(checked.results) == tuple(plain.results)
