"""Tests for repro.accelerator.tiling (scratchpad tiling plans)."""

import pytest
from hypothesis import given, strategies as st

from repro.accelerator.tiling import TilingPlan, plan_tiling
from repro.config import DEFAULT_SOC
from repro.models.layers import ConvLayer, DenseLayer, PoolLayer
from repro.models.zoo import build_model, model_names


class TestTilingPlan:
    def test_validates_factor(self):
        with pytest.raises(ValueError):
            TilingPlan(per_tile_bytes=10, tiling_factor=0, refetch_bytes=0)

    def test_validates_bytes(self):
        with pytest.raises(ValueError):
            TilingPlan(per_tile_bytes=-1, tiling_factor=1, refetch_bytes=0)


class TestPlanTiling:
    def test_mem_layer_trivial(self):
        pool = PoolLayer("p", in_h=8, in_w=8, channels=16)
        plan = plan_tiling(pool, DEFAULT_SOC)
        assert plan.tiling_factor == 1
        assert plan.refetch_bytes == 0

    def test_small_layer_fits(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=16, out_ch=16, kernel=3,
                         padding=1)
        plan = plan_tiling(conv, DEFAULT_SOC)
        assert plan.tiling_factor == 1
        assert plan.per_tile_bytes == (
            conv.weight_bytes + conv.input_bytes + conv.output_bytes
        )

    def test_large_dense_splits_outputs(self):
        fc = DenseLayer("fc", in_features=9216, out_features=4096)
        plan = plan_tiling(fc, DEFAULT_SOC)
        assert plan.tiling_factor > 1
        assert plan.refetch_bytes == 0  # weights stream once

    def test_large_conv_weights_resident(self):
        # Activations too big, weights small: spatial split, no refetch.
        conv = ConvLayer("c", in_h=416, in_w=416, in_ch=32, out_ch=64,
                         kernel=3, padding=1)
        plan = plan_tiling(conv, DEFAULT_SOC)
        assert plan.tiling_factor > 1
        assert plan.refetch_bytes == 0

    def test_huge_weights_force_channel_split_and_refetch(self):
        conv = ConvLayer("c", in_h=14, in_w=14, in_ch=512, out_ch=1024,
                         kernel=3, padding=1)
        assert conv.weight_bytes > DEFAULT_SOC.tile.scratchpad_bytes
        plan = plan_tiling(conv, DEFAULT_SOC)
        assert plan.tiling_factor > 1
        assert plan.refetch_bytes > 0

    def test_per_tile_never_exceeds_scratchpad_for_compute(self):
        conv = ConvLayer("c", in_h=14, in_w=14, in_ch=512, out_ch=1024,
                         kernel=3, padding=1)
        plan = plan_tiling(conv, DEFAULT_SOC)
        assert plan.per_tile_bytes <= DEFAULT_SOC.tile.scratchpad_bytes

    @pytest.mark.parametrize("name", model_names())
    def test_zoo_layers_all_plannable(self, name):
        for layer in build_model(name).layers:
            plan = plan_tiling(layer, DEFAULT_SOC)
            assert plan.tiling_factor >= 1
            assert plan.per_tile_bytes >= 0
            assert plan.refetch_bytes >= 0

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=2048),
        st.integers(min_value=1, max_value=2048),
    )
    def test_property_dense_plans_valid(self, h, in_f, out_f):
        fc = DenseLayer("fc", in_features=in_f * 8, out_features=out_f)
        plan = plan_tiling(fc, DEFAULT_SOC)
        assert plan.tiling_factor >= 1
        assert plan.per_tile_bytes > 0
