"""Tests for repro.core.latency (Algorithm 1)."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.config import DEFAULT_SOC
from repro.core.latency import (
    BlockCost,
    EstimationError,
    build_block_cost,
    build_network_cost,
    clear_network_cost_cache,
    estimate_layer,
    estimate_network,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.blocks import LayerBlock, partition_into_blocks
from repro.models.layers import (
    ConvLayer,
    DenseLayer,
    LayerKind,
    PoolLayer,
    ResidualAddLayer,
)
from repro.models.zoo import build_model, model_names

SOC = DEFAULT_SOC
MEM = MemoryHierarchy.from_soc(SOC)


def _conv(ch=64):
    return ConvLayer("c", in_h=28, in_w=28, in_ch=ch, out_ch=ch, kernel=3,
                     padding=1)


class TestEstimateLayerCompute:
    def test_compute_path_populated(self):
        est = estimate_layer(_conv(), SOC, MEM, num_tiles=1)
        assert est.kind is LayerKind.COMPUTE
        assert est.compute_ideal > 0
        assert est.memory_ideal > 0
        assert est.prediction > 0

    def test_prediction_is_overlap_formula(self):
        est = estimate_layer(_conv(), SOC, MEM, num_tiles=1)
        hi = max(est.compute_ideal, est.memory_ideal)
        lo = min(est.compute_ideal, est.memory_ideal)
        assert est.prediction == pytest.approx(hi + lo * SOC.overlap_f)

    def test_from_dram_includes_weights_and_outputs(self):
        conv = _conv()
        est = estimate_layer(conv, SOC, MEM, num_tiles=1)
        base = conv.weight_bytes + conv.output_bytes + conv.bias_bytes
        assert est.from_dram_bytes >= base

    def test_cached_input_not_refetched(self):
        conv = _conv()
        est = estimate_layer(conv, SOC, MEM, num_tiles=1, num_sharers=1)
        base = conv.weight_bytes + conv.output_bytes + conv.bias_bytes
        # 28x28x64 input easily fits in the 2 MB L2.
        assert est.from_dram_bytes == pytest.approx(base)

    def test_uncached_input_refetched_under_sharing(self):
        # 224x224x16 = 802 KB: resident when alone in the 2 MB L2, but
        # evicted once eight applications share the capacity.
        mid = ConvLayer("c", in_h=224, in_w=224, in_ch=16, out_ch=16,
                        kernel=3, padding=1)
        est1 = estimate_layer(mid, SOC, MEM, num_tiles=1, num_sharers=1)
        est8 = estimate_layer(mid, SOC, MEM, num_tiles=1, num_sharers=8)
        assert est8.from_dram_bytes > est1.from_dram_bytes

    def test_more_tiles_lower_compute(self):
        conv = _conv()
        e1 = estimate_layer(conv, SOC, MEM, num_tiles=1)
        e4 = estimate_layer(conv, SOC, MEM, num_tiles=4)
        assert e4.compute_ideal < e1.compute_ideal

    def test_lower_bandwidth_higher_memory_time(self):
        conv = _conv()
        full = estimate_layer(conv, SOC, MEM, num_tiles=1)
        slow = estimate_layer(conv, SOC, MEM, num_tiles=1, dram_bw=1.0)
        assert slow.memory_ideal > full.memory_ideal

    def test_bw_demand_definition(self):
        est = estimate_layer(_conv(), SOC, MEM, num_tiles=1)
        assert est.bw_demand == pytest.approx(
            est.from_dram_bytes / est.prediction
        )

    def test_invalid_tiles(self):
        with pytest.raises(EstimationError):
            estimate_layer(_conv(), SOC, MEM, num_tiles=0)

    def test_invalid_sharers(self):
        with pytest.raises(EstimationError):
            estimate_layer(_conv(), SOC, MEM, num_sharers=0)

    def test_invalid_bw(self):
        with pytest.raises(EstimationError):
            estimate_layer(_conv(), SOC, MEM, dram_bw=0.0)


class TestEstimateLayerMem:
    def test_residual_add_path(self):
        add = ResidualAddLayer("a", h=28, w=28, channels=64)
        est = estimate_layer(add, SOC, MEM, num_tiles=1)
        assert est.kind is LayerKind.MEM
        assert est.compute_ideal == 0.0
        # From DRAM: skip operand + output.
        assert est.from_dram_bytes == pytest.approx(
            add.skip_operand_bytes + add.output_bytes
        )

    def test_mem_prediction_is_sum_of_terms(self):
        add = ResidualAddLayer("a", h=28, w=28, channels=64)
        est = estimate_layer(add, SOC, MEM, num_tiles=1)
        expected = (est.from_dram_bytes / MEM.dram_bandwidth
                    + est.total_mem_bytes / MEM.l2_bandwidth)
        assert est.prediction == pytest.approx(expected)

    def test_small_pool_input_cached(self):
        pool = PoolLayer("p", in_h=28, in_w=28, channels=64, kernel=2,
                         stride=2)
        est = estimate_layer(pool, SOC, MEM, num_tiles=1)
        assert est.from_dram_bytes == pytest.approx(pool.output_bytes)

    def test_huge_pool_input_spills(self):
        pool = PoolLayer("p", in_h=416, in_w=416, channels=32, kernel=2,
                         stride=2)
        est = estimate_layer(pool, SOC, MEM, num_tiles=1)
        assert est.from_dram_bytes > pool.output_bytes

    def test_mem_layer_tiles_irrelevant(self):
        add = ResidualAddLayer("a", h=28, w=28, channels=64)
        e1 = estimate_layer(add, SOC, MEM, num_tiles=1)
        e8 = estimate_layer(add, SOC, MEM, num_tiles=8)
        assert e1.prediction == pytest.approx(e8.prediction)


class TestBlockCost:
    def _block_cost(self):
        block = LayerBlock(0, layers=(_conv(), _conv(128)))
        return build_block_cost(block, SOC, MEM)

    def test_aggregates_layers(self):
        block = LayerBlock(0, layers=(_conv(), _conv(128)))
        cost = build_block_cost(block, SOC, MEM)
        parts = [estimate_layer(l, SOC, MEM) for l in block.layers]
        assert cost.from_dram_bytes == pytest.approx(
            sum(p.from_dram_bytes for p in parts)
        )
        assert cost.total_mem_bytes == pytest.approx(
            sum(p.total_mem_bytes for p in parts)
        )

    def test_predict_monotone_in_tiles(self):
        cost = self._block_cost()
        times = [
            cost.predict(k, MEM.dram_bandwidth, MEM.l2_bandwidth,
                         SOC.overlap_f)
            for k in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)

    def test_predict_monotone_in_bandwidth(self):
        cost = self._block_cost()
        slow = cost.predict(2, 2.0, MEM.l2_bandwidth, SOC.overlap_f)
        fast = cost.predict(2, 16.0, MEM.l2_bandwidth, SOC.overlap_f)
        assert slow >= fast

    def test_bw_demand_positive(self):
        cost = self._block_cost()
        assert cost.bw_demand(2, MEM.dram_bandwidth, MEM.l2_bandwidth,
                              SOC.overlap_f) > 0

    def test_mem_block_no_compute_terms(self):
        block = LayerBlock(0, layers=(
            ResidualAddLayer("a", h=28, w=28, channels=64),
        ))
        cost = build_block_cost(block, SOC, MEM)
        assert cost.compute_terms == ()
        assert cost.compute_ideal(4) == 0.0

    def test_invalid_tiles(self):
        with pytest.raises(EstimationError):
            self._block_cost().compute_ideal(0)

    def test_invalid_bandwidths(self):
        with pytest.raises(EstimationError):
            self._block_cost().memory_ideal(0.0, 128.0)

    @given(st.integers(min_value=1, max_value=8),
           st.floats(min_value=0.5, max_value=16.0))
    def test_property_prediction_positive(self, tiles, bw):
        cost = self._block_cost()
        assert cost.predict(tiles, bw, MEM.l2_bandwidth, SOC.overlap_f) > 0


class TestNetworkCost:
    def test_blocks_match_partition(self):
        net = build_model("squeezenet")
        cost = build_network_cost(net, SOC, MEM)
        blocks = partition_into_blocks(net)
        assert len(cost.blocks) == len(blocks)

    def test_cache_returns_same_object(self):
        net = build_model("alexnet")
        a = build_network_cost(net, SOC, MEM)
        b = build_network_cost(net, SOC, MEM)
        assert a is b

    def test_cache_distinguishes_sharers(self):
        net = build_model("alexnet")
        a = build_network_cost(net, SOC, MEM, num_sharers=1)
        b = build_network_cost(net, SOC, MEM, num_sharers=4)
        assert a is not b
        assert b.total_from_dram() >= a.total_from_dram()

    def test_cache_distinguishes_soc(self):
        net = build_model("alexnet")
        soc2 = dataclasses.replace(SOC, multi_tile_alpha=0.9)
        a = build_network_cost(net, SOC, MEM)
        b = build_network_cost(net, soc2, MemoryHierarchy.from_soc(soc2))
        assert a is not b

    def test_total_prediction_sums_blocks(self):
        cost = build_network_cost(build_model("kws"), SOC, MEM)
        total = cost.total_prediction(2, MEM.dram_bandwidth,
                                      MEM.l2_bandwidth, SOC.overlap_f)
        parts = sum(
            b.predict(2, MEM.dram_bandwidth, MEM.l2_bandwidth, SOC.overlap_f)
            for b in cost.blocks
        )
        assert total == pytest.approx(parts)

    def test_avg_bw_demand_consistent(self):
        cost = build_network_cost(build_model("alexnet"), SOC, MEM)
        avg = cost.avg_bw_demand(2, MEM.dram_bandwidth, MEM.l2_bandwidth,
                                 SOC.overlap_f)
        total = cost.total_prediction(2, MEM.dram_bandwidth,
                                      MEM.l2_bandwidth, SOC.overlap_f)
        assert avg == pytest.approx(cost.total_from_dram() / total)

    def test_alexnet_is_most_bandwidth_hungry(self):
        demands = {}
        for name in model_names():
            cost = build_network_cost(build_model(name), SOC, MEM)
            demands[name] = cost.avg_bw_demand(
                2, MEM.dram_bandwidth, MEM.l2_bandwidth, SOC.overlap_f
            )
        assert max(demands, key=demands.get) == "alexnet"


class TestEstimateNetwork:
    @pytest.mark.parametrize("name", model_names())
    def test_all_networks_estimable(self, name):
        total, layers = estimate_network(build_model(name), SOC, MEM,
                                         num_tiles=2)
        assert total > 0
        assert len(layers) == len(build_model(name))

    def test_more_tiles_never_slower(self):
        net = build_model("resnet50")
        t2, _ = estimate_network(net, SOC, MEM, num_tiles=2)
        t8, _ = estimate_network(net, SOC, MEM, num_tiles=8)
        assert t8 <= t2

    def test_alexnet_poor_tile_scaling(self):
        # AlexNet is dominated by memory-bound FC layers: 8 tiles barely
        # help (the paper's motivation for its contention sensitivity).
        net = build_model("alexnet")
        t1, _ = estimate_network(net, SOC, MEM, num_tiles=1)
        t8, _ = estimate_network(net, SOC, MEM, num_tiles=8)
        assert t1 / t8 < 2.5

    def test_resnet_good_tile_scaling(self):
        net = build_model("resnet50")
        t1, _ = estimate_network(net, SOC, MEM, num_tiles=8)
        t8, _ = estimate_network(net, SOC, MEM, num_tiles=1)
        assert t8 / t1 > 3.0


class TestNetworkCostCache:
    """The memo key must cover every input the block accounting reads
    (the seed omitted the memory hierarchy and the block granularity,
    so differing configurations returned stale entries)."""

    def test_block_granularity_not_aliased(self):
        net = build_model("alexnet")
        coarse = build_network_cost(net, SOC, MEM, max_layers_per_block=6)
        fine = build_network_cost(net, SOC, MEM, max_layers_per_block=1)
        assert len(fine.blocks) > len(coarse.blocks)

    def test_memory_hierarchy_not_aliased(self):
        net = build_model("alexnet")
        small_soc = dataclasses.replace(SOC, l2_bytes=64 * 1024)
        small_mem = MemoryHierarchy.from_soc(small_soc)
        default = build_network_cost(net, SOC, MEM)
        tiny_l2 = build_network_cost(net, SOC, small_mem)
        # A 64 KiB L2 can keep almost nothing resident: DRAM traffic
        # must strictly grow, not alias the 2 MiB entry.
        assert tiny_l2.total_from_dram() > default.total_from_dram()

    def test_repeated_build_is_cached(self):
        net = build_model("kws")
        a = build_network_cost(net, SOC, MEM)
        b = build_network_cost(net, SOC, MEM)
        assert a is b

    def test_clear_cache(self):
        net = build_model("kws")
        a = build_network_cost(net, SOC, MEM)
        clear_network_cost_cache()
        b = build_network_cost(net, SOC, MEM)
        assert a is not b
        assert a.blocks == b.blocks
