"""Tests for repro.experiments.sweeps (appendix-F customization)."""

import pytest

from repro.experiments.sweeps import (
    SweepPoint,
    format_sweep,
    sweep_dram_bandwidth,
    sweep_l2_capacity,
    sweep_num_tiles,
)


class TestSweepPoint:
    def test_advantage(self):
        p = SweepPoint(label="x", moca_sla=0.8, static_sla=0.4)
        assert p.advantage == pytest.approx(2.0)

    def test_advantage_zero_static(self):
        p = SweepPoint(label="x", moca_sla=0.8, static_sla=0.0)
        assert p.advantage == float("inf")


class TestSweeps:
    def test_dram_sweep_points(self):
        points = sweep_dram_bandwidth(values=(8.0, 16.0), num_tasks=24,
                                      seeds=(1,))
        assert [p.label for p in points] == ["8 B/cyc", "16 B/cyc"]
        assert all(0.0 <= p.moca_sla <= 1.0 for p in points)

    def test_l2_sweep_points(self):
        points = sweep_l2_capacity(values=(2 * 1024 * 1024,), num_tasks=24,
                                   seeds=(1,))
        assert points[0].label == "2 MiB"

    def test_tiles_sweep_points(self):
        points = sweep_num_tiles(values=(4, 8), num_tasks=24, seeds=(1,))
        assert [p.label for p in points] == ["4 tiles", "8 tiles"]

    def test_format(self):
        points = [SweepPoint(label="a", moca_sla=0.5, static_sla=0.25)]
        text = format_sweep("title", points)
        assert "title" in text
        assert "2.00x" in text
