"""Tests for the experiment harness (runner + per-figure modules).

These use tiny scenario sizes so the suite stays fast; the full-size
runs live in benchmarks/.
"""

import pytest

from repro.experiments.fig1_motivation import (
    FIG1_NETWORKS,
    format_fig1,
    run_fig1,
)
from repro.experiments.fig5_sla import format_fig5
from repro.experiments.fig6_priority import format_fig6, group_rates
from repro.experiments.fig7_stp import (
    format_fig7,
    stp_normalized_to_planaria,
)
from repro.experiments.fig8_fairness import (
    fairness_normalized_to_planaria,
    format_fig8,
)
from repro.experiments.runner import (
    POLICY_ORDER,
    ScenarioSpec,
    default_policies,
    format_matrix_table,
    geomean_improvement,
    improvement_ratios,
    run_matrix,
    run_scenario,
    standard_matrix,
)
from repro.experiments.table4_area import format_table4, run_table4
from repro.experiments.validation import (
    run_validation,
    summarize_validation,
)
from repro.sim.qos import QosLevel


@pytest.fixture(scope="module")
def tiny_matrix():
    specs = [
        ScenarioSpec(workload_set="A", qos_level=QosLevel.MEDIUM,
                     num_tasks=24, seeds=(1,)),
        ScenarioSpec(workload_set="A", qos_level=QosLevel.HARD,
                     num_tasks=24, seeds=(1,)),
    ]
    return run_matrix(specs)


class TestRunner:
    def test_default_policies_are_the_papers_four(self):
        assert set(default_policies()) == set(POLICY_ORDER)

    def test_standard_matrix_has_nine_cells(self):
        specs = standard_matrix()
        assert len(specs) == 9
        labels = {s.label for s in specs}
        assert "Workload-A/QoS-H" in labels
        assert "Workload-C/QoS-L" in labels

    def test_scenario_runs_all_policies(self):
        spec = ScenarioSpec(workload_set="A", num_tasks=16, seeds=(1,))
        cell = run_scenario(spec)
        assert set(cell) == set(POLICY_ORDER)
        for result in cell.values():
            assert 0.0 <= result.sla_rate <= 1.0
            assert result.stp > 0
            assert 0.0 < result.fairness <= 1.0

    def test_seed_aggregation(self):
        spec = ScenarioSpec(workload_set="A", num_tasks=16, seeds=(1, 2))
        cell = run_scenario(spec, policies={"static": default_policies()["static"]})
        assert len(cell["static"].per_seed) == 2

    def test_improvement_ratios(self, tiny_matrix):
        ratios = improvement_ratios(tiny_matrix, "sla_rate", "prema")
        assert len(ratios) == len(tiny_matrix)
        assert all(r > 0 for r in ratios.values())

    def test_geomean_improvement_positive(self, tiny_matrix):
        assert geomean_improvement(tiny_matrix, "stp", "prema") > 0

    def test_format_matrix_table(self, tiny_matrix):
        text = format_matrix_table(tiny_matrix, "sla_rate", "SLA")
        assert "SLA" in text
        for policy in POLICY_ORDER:
            assert policy in text


class TestFig1:
    def test_rows_cover_networks_and_degrees(self):
        rows = run_fig1(trials=24, seed=0)
        nets = {r.network for r in rows}
        assert nets == set(FIG1_NETWORKS)

    def test_isolated_degree_is_unity(self):
        rows = run_fig1(trials=24, seed=0)
        for r in rows:
            if r.degree == 1:
                assert r.avg_increase == pytest.approx(1.0, abs=0.01)

    def test_colocated_never_faster(self):
        rows = run_fig1(trials=24, seed=0)
        assert all(r.avg_increase >= 0.999 for r in rows)
        assert all(r.worst_increase >= r.avg_increase - 1e-9 for r in rows)

    def test_format(self):
        text = format_fig1(run_fig1(trials=12, seed=0))
        assert "Figure 1" in text


class TestFigureFormatters:
    def test_fig5_format(self, tiny_matrix):
        text = format_fig5(tiny_matrix)
        assert "Figure 5" in text
        assert "geomean" in text

    def test_fig6_groups(self, tiny_matrix):
        rates = group_rates(tiny_matrix)
        for label in tiny_matrix:
            assert set(rates[label]) == set(POLICY_ORDER)
        text = format_fig6(tiny_matrix)
        assert "p-High" in text

    def test_fig7_normalization(self, tiny_matrix):
        norm = stp_normalized_to_planaria(tiny_matrix)
        for row in norm.values():
            assert row["planaria"] == pytest.approx(1.0)
        assert "Figure 7" in format_fig7(tiny_matrix)

    def test_fig8_normalization(self, tiny_matrix):
        norm = fairness_normalized_to_planaria(tiny_matrix)
        for row in norm.values():
            assert row["planaria"] == pytest.approx(1.0)
        assert "Figure 8" in format_fig8(tiny_matrix)


class TestTable4:
    def test_headline_numbers(self):
        _, headline = run_table4()
        assert headline["moca_pct_of_tile"] == pytest.approx(0.02, abs=0.005)
        assert headline["memory_interface_pct_of_tile"] == pytest.approx(
            1.7, abs=0.1
        )

    def test_format(self):
        text = format_table4()
        assert "0.02" in text


class TestValidation:
    def test_within_paper_bound(self):
        rows = run_validation(tile_counts=(1, 4))
        mean_err, max_err = summarize_validation(rows)
        assert mean_err < 0.10
        assert max_err < 0.10

    def test_covers_all_networks(self):
        rows = run_validation(tile_counts=(2,))
        assert len({r.network for r in rows}) == 7
