"""Tests for repro.accelerator.isa (instruction lowering)."""

import pytest

from repro.accelerator.isa import (
    Instruction,
    Opcode,
    compute_rate_for,
    lower_layer,
    stream_totals,
)
from repro.config import DEFAULT_SOC
from repro.models.layers import ConvLayer, DenseLayer, PoolLayer, ResidualAddLayer
from repro.models.zoo import build_model, model_names

SOC = DEFAULT_SOC


class TestInstruction:
    def test_compute_moves_no_bytes(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.COMPUTE, num_bytes=4)

    def test_moves_do_no_macs(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MVIN, num_bytes=4, macs=1)

    def test_negative_sizes_raise(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MVIN, num_bytes=-1)


class TestLowering:
    def test_small_conv_single_tile(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=16, out_ch=16, kernel=3,
                         padding=1)
        stream = lower_layer(conv, SOC)
        assert {i.tile_index for i in stream} == {0}
        ops = [i.op for i in stream]
        assert ops == [Opcode.MVIN, Opcode.MVIN, Opcode.COMPUTE, Opcode.MVOUT]

    def test_large_dense_multi_tile(self):
        fc = DenseLayer("fc", in_features=9216, out_features=4096)
        stream = lower_layer(fc, SOC)
        tiles = {i.tile_index for i in stream}
        assert len(tiles) > 1

    def test_mem_layer_pure_moves(self):
        add = ResidualAddLayer("a", h=28, w=28, channels=64)
        stream = lower_layer(add, SOC)
        assert all(i.op is not Opcode.COMPUTE for i in stream)

    def test_conservation_conv(self):
        conv = ConvLayer("c", in_h=56, in_w=56, in_ch=64, out_ch=64,
                         kernel=3, padding=1)
        totals = stream_totals(lower_layer(conv, SOC))
        assert totals["macs"] == conv.macs
        assert totals["store_bytes"] == conv.output_bytes
        assert totals["load_bytes"] >= conv.total_load_bytes

    def test_conservation_mem(self):
        pool = PoolLayer("p", in_h=28, in_w=28, channels=64)
        totals = stream_totals(lower_layer(pool, SOC))
        assert totals["load_bytes"] == pool.total_load_bytes
        assert totals["store_bytes"] == pool.total_store_bytes
        assert totals["macs"] == 0

    @pytest.mark.parametrize("name", model_names())
    def test_whole_network_conserved(self, name):
        net = build_model(name)
        total_macs = 0
        for layer in net.layers:
            totals = stream_totals(lower_layer(layer, SOC))
            total_macs += totals["macs"]
        assert total_macs == net.total_macs

    def test_compute_per_tile_balanced(self):
        fc = DenseLayer("fc", in_features=9216, out_features=4096)
        stream = lower_layer(fc, SOC)
        computes = [i.macs for i in stream if i.op is Opcode.COMPUTE]
        assert max(computes) - min(computes) <= 1 * (max(computes) // min(computes) + 1)


class TestComputeRate:
    def test_full_util_layer(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=64, out_ch=64, kernel=3,
                         padding=1)
        assert compute_rate_for(conv, SOC) == pytest.approx(
            SOC.tile.effective_macs_per_cycle
        )

    def test_mem_layer_zero(self):
        pool = PoolLayer("p", in_h=8, in_w=8, channels=16)
        assert compute_rate_for(pool, SOC) == 0.0
