"""Tests for repro.accelerator.moca_hw (access counter + thresholding FSM)."""

import pytest
from hypothesis import given, strategies as st

from repro.accelerator.moca_hw import (
    RECONFIG_CYCLES,
    AccessCounter,
    MoCAHardwareEngine,
    MoCAHardwareError,
    ThresholdingModule,
)


class TestAccessCounter:
    def test_starts_zero(self):
        assert AccessCounter().count == 0

    def test_record_accumulates(self):
        c = AccessCounter()
        c.record(3)
        c.record()
        assert c.count == 4

    def test_reset(self):
        c = AccessCounter()
        c.record(5)
        c.reset()
        assert c.count == 0

    def test_negative_raises(self):
        with pytest.raises(MoCAHardwareError):
            AccessCounter().record(-1)


class TestThresholdingModule:
    def test_disabled_never_alerts(self):
        t = ThresholdingModule(threshold_load=0)
        c = AccessCounter(count=10**9)
        assert not t.alert(c)

    def test_alert_at_threshold(self):
        t = ThresholdingModule(threshold_load=5)
        c = AccessCounter(count=5)
        assert t.alert(c)

    def test_no_alert_below(self):
        t = ThresholdingModule(threshold_load=5)
        c = AccessCounter(count=4)
        assert not t.alert(c)


class TestEngineConfig:
    def test_default_disabled(self):
        assert not MoCAHardwareEngine().enabled

    def test_configure_enables(self):
        hw = MoCAHardwareEngine()
        hw.configure(window=100, threshold_load=25)
        assert hw.enabled
        assert hw.allowed_rate() == pytest.approx(0.25)

    def test_disabled_rate_infinite(self):
        assert MoCAHardwareEngine().allowed_rate() == float("inf")

    def test_configure_zero_disables(self):
        hw = MoCAHardwareEngine()
        hw.configure(100, 25)
        hw.configure(0, 0)
        assert not hw.enabled

    def test_mixed_zero_raises(self):
        hw = MoCAHardwareEngine()
        with pytest.raises(MoCAHardwareError):
            hw.configure(100, 0)
        with pytest.raises(MoCAHardwareError):
            hw.configure(0, 10)

    def test_negative_raises(self):
        with pytest.raises(MoCAHardwareError):
            MoCAHardwareEngine().configure(-1, 5)

    def test_reconfig_clears_stall(self):
        hw = MoCAHardwareEngine()
        hw.configure(10, 1)
        hw.try_issue()
        assert hw.stalled
        hw.configure(10, 1)
        assert not hw.stalled

    def test_reconfig_cycles_paper_range(self):
        # The paper reports 5-10 cycles for a memory reconfiguration.
        assert 5 <= RECONFIG_CYCLES <= 10


class TestEngineThrottling:
    def test_unthrottled_issues_freely(self):
        hw = MoCAHardwareEngine()
        for _ in range(1000):
            assert hw.try_issue()
        assert hw.total_issued == 1000

    def test_stalls_after_threshold(self):
        hw = MoCAHardwareEngine()
        hw.configure(window=10, threshold_load=3)
        assert hw.try_issue()
        assert hw.try_issue()
        assert hw.try_issue()   # hits threshold, raises alert
        assert not hw.try_issue()  # bubble

    def test_window_rollover_lifts_stall(self):
        hw = MoCAHardwareEngine()
        hw.configure(window=4, threshold_load=1)
        assert hw.try_issue()
        assert not hw.try_issue()
        hw.step(4)  # window expires
        assert hw.try_issue()

    def test_average_rate_enforced(self):
        hw = MoCAHardwareEngine()
        hw.configure(window=10, threshold_load=2)
        issued = 0
        for _ in range(100):  # 100 cycles = 10 windows
            if hw.try_issue():
                issued += 1
            hw.step()
        assert issued <= 2 * 10
        assert issued == 20  # exactly the budget when always trying

    def test_bubbles_counted(self):
        hw = MoCAHardwareEngine()
        hw.configure(window=10, threshold_load=1)
        hw.try_issue()
        hw.try_issue()
        hw.step(5)
        assert hw.total_bubbles == 5

    def test_step_disabled_is_noop(self):
        hw = MoCAHardwareEngine()
        hw.step(100)
        assert hw.cycles_into_window == 0

    def test_step_negative_raises(self):
        with pytest.raises(MoCAHardwareError):
            MoCAHardwareEngine().step(-1)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=400),
    )
    def test_property_rate_never_exceeded(self, window, threshold, horizon):
        """Over any whole number of windows, issued <= budget."""
        hw = MoCAHardwareEngine()
        hw.configure(window=window, threshold_load=threshold)
        cycles = (horizon // window) * window
        issued = 0
        for _ in range(cycles):
            if hw.try_issue():
                issued += 1
            hw.step()
        assert issued <= threshold * max(1, cycles // window)
