"""Tests for the parallel experiment executor and the engine's
incremental (epoch-cached) hot path — the two must be invisible:
numerically identical outputs to the serial / always-recompute paths.
"""

import pytest

from repro.baselines import PremaPolicy
from repro.config import DEFAULT_SOC
from repro.core.policy import MoCAPolicy
from repro.experiments.parallel import CellTiming, ParallelRunner
from repro.experiments.runner import (
    POLICY_ORDER,
    ScenarioSpec,
    default_policies,
    run_matrix,
    run_scenario,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import workload_set
from repro.sim.engine import Simulator
from repro.sim.qos import QosLevel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

SPEC = ScenarioSpec(
    workload_set="A", qos_level=QosLevel.MEDIUM, num_tasks=16, seeds=(1, 2)
)


@pytest.fixture(scope="module")
def serial_cell():
    return run_scenario(SPEC)


class TestParallelDeterminism:
    def test_two_workers_identical_to_serial(self, serial_cell):
        """ISSUE satellite: ParallelRunner(workers=2) must produce
        numerically identical MetricsSummary values for all four
        policies."""
        runner = ParallelRunner(workers=2)
        parallel_cell = runner.run_scenario(SPEC)
        assert set(parallel_cell) == set(POLICY_ORDER)
        for policy in POLICY_ORDER:
            assert (
                parallel_cell[policy].per_seed
                == serial_cell[policy].per_seed
            ), policy
        if runner.last_mode != "parallel":
            pytest.skip(
                "process pool unavailable: cross-process identity "
                "not exercised (serial fallback compared)"
            )

    def test_run_matrix_workers_wiring(self, serial_cell):
        matrix = run_matrix([SPEC], workers=2)
        assert set(matrix) == {SPEC.label}
        for policy in POLICY_ORDER:
            assert (
                matrix[SPEC.label][policy].per_seed
                == serial_cell[policy].per_seed
            )

    def test_serial_fallback_workers_1(self, serial_cell):
        runner = ParallelRunner(workers=1)
        cell = runner.run_scenario(SPEC)
        assert runner.last_mode == "serial"
        for policy in POLICY_ORDER:
            assert cell[policy].per_seed == serial_cell[policy].per_seed

    def test_non_picklable_policy_falls_back_to_serial(self):
        runner = ParallelRunner(workers=2)
        policies = {"moca": lambda: MoCAPolicy()}  # lambdas don't pickle
        cell = runner.run_scenario(SPEC, policies=policies)
        assert runner.last_mode == "serial"
        assert cell["moca"].per_seed == run_scenario(
            SPEC, policies=default_policies()
        )["moca"].per_seed

    def test_per_cell_timings_recorded(self):
        runner = ParallelRunner(workers=2)
        runner.run_scenario(SPEC)
        cells = len(default_policies()) * len(SPEC.seeds)
        assert len(runner.last_timings) == cells
        for timing in runner.last_timings:
            assert isinstance(timing, CellTiming)
            assert timing.label == SPEC.label
            assert timing.seconds >= 0

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=0)
        with pytest.raises(ValueError):
            ParallelRunner(workers=2, chunk_size=0)
        with pytest.raises(ValueError):
            run_scenario(SPEC, workers=-1)
        with pytest.raises(ValueError):
            run_matrix([SPEC], workers=-2)


def _tasks(num_tasks=12, seed=3):
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    gen = WorkloadGenerator(soc, workload_set("A"), mem)
    return soc, mem, gen.generate(
        WorkloadConfig(
            num_tasks=num_tasks, qos_level=QosLevel.MEDIUM, seed=seed
        )
    )


def _force_recompute(sim):
    """Drop the epoch cache and the per-block prediction memos and
    solve from scratch (via the base implementation, so subclass
    instrumentation doesn't recurse)."""
    sim._times_epoch = -1
    for job in sim.running:
        job.current_block.clear_predict_memo()
    return dict(Simulator._times_now(sim))


class _CheckedSimulator(Simulator):
    """Cross-checks every cached solve against a from-scratch one.

    Hooks ``_times_now`` — the internal cache probe every engine read
    (including the fused ``_step`` loop) funnels through.
    """

    checks = 0

    def _times_now(self):
        cached = super()._times_now()
        forced = _force_recompute(self)
        assert cached == forced, (
            f"epoch cache diverged at t={self.now}: {cached} != {forced}"
        )
        type(self).checks += 1
        return cached


class TestEpochCachedBlockTimes:
    def test_cache_matches_recompute_under_churn(self):
        """ISSUE satellite: epoch-cached current_block_times must match
        a from-scratch recompute after tile / bandwidth / preemption
        churn."""
        soc, mem, tasks = _tasks()
        policy = PremaPolicy()
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem)
        sim.now = max(t.dispatch_cycle for t in tasks)
        sim._dispatch_arrivals()
        jobs = list(sim.ready)
        sim.start_job(jobs[0], 2)
        sim.start_job(jobs[1], 2)
        assert sim.current_block_times() == _force_recompute(sim)
        sim.set_tiles(jobs[0], 4)
        assert sim.current_block_times() == _force_recompute(sim)
        sim.set_bw_cap(jobs[1], 2.0)
        assert sim.current_block_times() == _force_recompute(sim)
        # Advance past the reconfiguration stalls: the stall expiry
        # must invalidate the cache even without an allocation call.
        sim._block_T = sim.current_block_times()
        sim._advance(float(policy.compute_reconfig_cycles) + 1.0)
        assert sim.current_block_times() == _force_recompute(sim)
        sim.preempt(jobs[0])
        assert sim.current_block_times() == _force_recompute(sim)

    def test_full_run_cross_checked(self):
        """Every solve of a whole MoCA simulation agrees with a
        from-scratch recompute (stall expiries, block retirements,
        repartitions, the lot).  Pinned to the incremental engine:
        ``_times_now`` is that path's cache seam — the horizon
        kernel's own epoch cache is pinned bit-identical against this
        path in tests/test_kernel.py."""
        soc, mem, tasks = _tasks(num_tasks=10, seed=5)
        policy = MoCAPolicy()
        policy.reset()
        _CheckedSimulator.checks = 0
        sim = _CheckedSimulator(
            soc, tasks, policy, mem=mem, solver="vector"
        )
        result = sim.run()
        assert len(result.results) == 10
        assert _CheckedSimulator.checks > 0

    def test_reuse_counters_exposed(self):
        soc, mem, tasks = _tasks(num_tasks=10, seed=5)
        policy = MoCAPolicy()
        policy.reset()
        result = Simulator(soc, tasks, policy, mem=mem).run()
        assert result.events > 0
        assert result.block_time_recomputes > 0
        assert (
            result.block_time_recomputes + result.block_time_reuses
            >= result.events
        )
