"""Tests for the model zoo: published shapes and Table III grouping."""

import pytest

from repro.models.graph import Network
from repro.models.layers import LayerKind
from repro.models.zoo import (
    MODEL_BUILDERS,
    WORKLOAD_SET_A,
    WORKLOAD_SET_B,
    WORKLOAD_SET_C,
    build_model,
    model_names,
    workload_set,
)


class TestRegistry:
    def test_seven_models(self):
        assert len(model_names()) == 7

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("vgg16")

    def test_models_cached(self):
        assert build_model("alexnet") is build_model("alexnet")

    @pytest.mark.parametrize("name", model_names())
    def test_builders_produce_networks(self, name):
        assert isinstance(build_model(name), Network)


class TestWorkloadSets:
    def test_set_a_is_light(self):
        assert set(WORKLOAD_SET_A) == {"squeezenet", "yolo_lite", "kws"}

    def test_set_b_is_heavy(self):
        assert set(WORKLOAD_SET_B) == {
            "googlenet", "alexnet", "resnet50", "yolov2"
        }

    def test_set_c_is_union(self):
        assert set(WORKLOAD_SET_C) == set(WORKLOAD_SET_A) | set(WORKLOAD_SET_B)

    def test_light_models_smaller_than_heavy(self):
        light = max(build_model(n).total_weight_bytes for n in WORKLOAD_SET_A)
        heavy = min(build_model(n).total_weight_bytes for n in WORKLOAD_SET_B)
        assert light < heavy

    def test_workload_set_lookup(self):
        nets = workload_set("a")
        assert [n.name for n in nets] == list(WORKLOAD_SET_A)

    def test_workload_set_invalid(self):
        with pytest.raises(KeyError):
            workload_set("D")


class TestPublishedShapes:
    """Check the zoo against the models' published parameter/MAC counts."""

    def test_alexnet_params(self):
        # ~61 M parameters (Krizhevsky et al.).
        net = build_model("alexnet")
        assert 58e6 < net.total_weight_bytes < 64e6

    def test_alexnet_macs(self):
        # ~0.72 GMACs at 227x227.
        assert 0.6e9 < build_model("alexnet").total_macs < 0.8e9

    def test_alexnet_fc_dominated(self):
        net = build_model("alexnet")
        fc_weights = sum(
            l.weight_bytes for l in net.layers if l.name.startswith("fc")
        )
        assert fc_weights > 0.9 * net.total_weight_bytes

    def test_squeezenet_params(self):
        # 1.25 M parameters — "50x fewer than AlexNet".
        net = build_model("squeezenet")
        assert 1.1e6 < net.total_weight_bytes < 1.5e6
        ratio = build_model("alexnet").total_weight_bytes / net.total_weight_bytes
        assert ratio > 40

    def test_resnet50_params(self):
        # ~25.5 M parameters.
        net = build_model("resnet50")
        assert 24e6 < net.total_weight_bytes < 27e6

    def test_resnet50_macs(self):
        # ~4.1 GMACs at 224x224.
        assert 3.8e9 < build_model("resnet50").total_macs < 4.3e9

    def test_resnet50_has_16_residual_adds(self):
        net = build_model("resnet50")
        adds = [l for l in net.layers if l.name.endswith("_add")]
        assert len(adds) == 16

    def test_googlenet_params(self):
        # ~7 M parameters.
        net = build_model("googlenet")
        assert 6e6 < net.total_weight_bytes < 8e6

    def test_googlenet_macs(self):
        # ~1.6 GMACs.
        assert 1.4e9 < build_model("googlenet").total_macs < 1.8e9

    def test_googlenet_nine_inceptions(self):
        net = build_model("googlenet")
        concats = [l for l in net.layers if l.name.endswith("_concat")]
        assert len(concats) == 9

    def test_yolov2_macs(self):
        # ~14.7 GMACs at 416x416 (29.5 GFLOPs).
        assert 13e9 < build_model("yolov2").total_macs < 16e9

    def test_yolov2_params(self):
        # ~50 M parameters.
        net = build_model("yolov2")
        assert 45e6 < net.total_weight_bytes < 55e6

    def test_yolo_lite_tiny(self):
        # < 1 M parameters, < 0.5 GMACs: the real-time non-GPU detector.
        net = build_model("yolo_lite")
        assert net.total_weight_bytes < 1e6
        assert net.total_macs < 0.5e9

    def test_kws_smallest_params(self):
        # res15 has ~238k parameters, the smallest in the suite.
        net = build_model("kws")
        assert net.total_weight_bytes == min(
            build_model(n).total_weight_bytes for n in model_names()
        )

    def test_kws_res15_depth(self):
        # Stem + 6 residual blocks x 2 convs = 13 convolutions.
        net = build_model("kws")
        convs = [l for l in net.layers
                 if l.kind is LayerKind.COMPUTE and "conv" in l.name]
        assert len(convs) == 13


class TestStructuralSanity:
    @pytest.mark.parametrize("name", model_names())
    def test_positive_macs(self, name):
        assert build_model(name).total_macs > 0

    @pytest.mark.parametrize("name", model_names())
    def test_has_compute_layers(self, name):
        assert len(build_model(name).compute_layers) > 0

    @pytest.mark.parametrize("name", model_names())
    def test_unique_layer_names(self, name):
        net = build_model(name)
        names = [l.name for l in net.layers]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("name", model_names())
    def test_input_bytes_positive(self, name):
        assert build_model(name).input_bytes > 0

    @pytest.mark.parametrize("name", model_names())
    def test_domain_assigned(self, name):
        assert build_model(name).domain

    def test_classification_nets_end_in_1000_classes(self):
        for name in ("alexnet", "resnet50", "googlenet"):
            net = build_model(name)
            last_compute = net.compute_layers[-1]
            assert last_compute.output_bytes in (1000, 4000)
