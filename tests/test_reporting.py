"""Tests for repro.reporting (charts and exports)."""

import json

import pytest

from repro.experiments.runner import ScenarioSpec, run_scenario
from repro.reporting import (
    ascii_bar_chart,
    matrix_bar_charts,
    matrix_to_csv,
    matrix_to_json,
    results_from_csv,
    results_to_csv,
)
from repro.sim.job import TaskResult


@pytest.fixture(scope="module")
def tiny_matrix():
    spec = ScenarioSpec(workload_set="A", num_tasks=16, seeds=(1,))
    return {spec.label: run_scenario(spec)}


def _result(task_id="t0"):
    return TaskResult(
        task_id=task_id, network_name="kws", priority=3,
        dispatch_cycle=0.0, started_at=10.0, finished_at=110.0,
        qos_target_cycles=200.0, isolated_cycles=50.0, preemptions=1,
        tile_repartitions=2, bw_reconfigs=3, stall_cycles=4.5,
    )


class TestAsciiBars:
    def test_renders_all_labels(self):
        chart = ascii_bar_chart({"a": 1.0, "bb": 0.5}, title="demo")
        assert "demo" in chart
        assert "a " in chart and "bb" in chart

    def test_bar_lengths_proportional(self):
        chart = ascii_bar_chart({"full": 1.0, "half": 0.5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({"x": -1.0})

    def test_zero_values_ok(self):
        chart = ascii_bar_chart({"x": 0.0})
        assert "0.000" in chart

    def test_matrix_charts(self, tiny_matrix):
        text = matrix_bar_charts(tiny_matrix, "sla_rate", "SLA")
        assert "SLA" in text
        assert "moca" in text


class TestMatrixExport:
    def test_csv_header_and_rows(self, tiny_matrix):
        text = matrix_to_csv(tiny_matrix, "sla_rate")
        lines = text.strip().splitlines()
        assert lines[0] == "scenario,prema,static,planaria,moca"
        assert len(lines) == 1 + len(tiny_matrix)

    def test_json_round_trip(self, tiny_matrix):
        payload = json.loads(matrix_to_json(tiny_matrix))
        label = next(iter(tiny_matrix))
        assert set(payload[label]) == {"prema", "static", "planaria", "moca"}
        assert 0.0 <= payload[label]["moca"]["sla_rate"] <= 1.0


class TestResultsCsv:
    def test_round_trip(self):
        original = [_result("a"), _result("b")]
        text = results_to_csv(original)
        restored = results_from_csv(text)
        assert len(restored) == 2
        for orig, back in zip(original, restored):
            assert back.task_id == orig.task_id
            assert back.latency == pytest.approx(orig.latency)
            assert back.met_sla == orig.met_sla
            assert back.bw_reconfigs == orig.bw_reconfigs

    def test_derived_columns_present(self):
        text = results_to_csv([_result()])
        header = text.splitlines()[0]
        for col in ("latency", "runtime", "met_sla", "slowdown"):
            assert col in header
