"""Tests for repro.reporting (charts and exports)."""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.runner import ScenarioSpec, run_matrix, run_scenario
from repro.reporting import (
    ascii_bar_chart,
    matrix_bar_charts,
    matrix_to_csv,
    matrix_to_json,
    results_from_csv,
    results_to_csv,
    sweep_from_csv,
    sweep_from_json,
    sweep_to_csv,
    sweep_to_json,
)
from repro.sim.job import TaskResult

#: The fixed matrix the sweep-export goldens pin (see
#: tests/goldens/sweep_exports.json and scripts/bless_goldens.py).
GOLDEN_EXPORT_SPECS = [
    ScenarioSpec(workload_set="A", num_tasks=16, seeds=(1, 2)),
]

GOLDEN_EXPORT_PATH = (
    Path(__file__).parent / "goldens" / "sweep_exports.json"
)

RE_BLESS = "PYTHONPATH=src python scripts/bless_goldens.py"


@pytest.fixture(scope="module")
def tiny_matrix():
    spec = ScenarioSpec(workload_set="A", num_tasks=16, seeds=(1,))
    return {spec.label: run_scenario(spec)}


@pytest.fixture(scope="module")
def golden_matrix():
    return run_matrix(GOLDEN_EXPORT_SPECS)


def _result(task_id="t0"):
    return TaskResult(
        task_id=task_id, network_name="kws", priority=3,
        dispatch_cycle=0.0, started_at=10.0, finished_at=110.0,
        qos_target_cycles=200.0, isolated_cycles=50.0, preemptions=1,
        tile_repartitions=2, bw_reconfigs=3, stall_cycles=4.5,
    )


class TestAsciiBars:
    def test_renders_all_labels(self):
        chart = ascii_bar_chart({"a": 1.0, "bb": 0.5}, title="demo")
        assert "demo" in chart
        assert "a " in chart and "bb" in chart

    def test_bar_lengths_proportional(self):
        chart = ascii_bar_chart({"full": 1.0, "half": 0.5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({"x": -1.0})

    def test_zero_values_ok(self):
        chart = ascii_bar_chart({"x": 0.0})
        assert "0.000" in chart

    def test_matrix_charts(self, tiny_matrix):
        text = matrix_bar_charts(tiny_matrix, "sla_rate", "SLA")
        assert "SLA" in text
        assert "moca" in text


class TestMatrixExport:
    def test_csv_header_and_rows(self, tiny_matrix):
        text = matrix_to_csv(tiny_matrix, "sla_rate")
        lines = text.strip().splitlines()
        assert lines[0] == "scenario,prema,static,planaria,moca"
        assert len(lines) == 1 + len(tiny_matrix)

    def test_json_round_trip(self, tiny_matrix):
        payload = json.loads(matrix_to_json(tiny_matrix))
        label = next(iter(tiny_matrix))
        assert set(payload[label]) == {"prema", "static", "planaria", "moca"}
        assert 0.0 <= payload[label]["moca"]["sla_rate"] <= 1.0


class TestSweepExports:
    def test_json_round_trip_exact(self, golden_matrix):
        """ISSUE satellite: sweep_to_json -> sweep_from_json rebuilds
        every spec and per-seed summary exactly."""
        text = sweep_to_json(golden_matrix)
        back = sweep_from_json(text)
        assert set(back) == set(golden_matrix)
        for label, cell in golden_matrix.items():
            assert set(back[label]) == set(cell)
            for policy, result in cell.items():
                assert back[label][policy].per_seed == result.per_seed
                assert back[label][policy].spec == result.spec

    def test_csv_round_trip_exact(self, golden_matrix):
        """The CSV is self-describing: specs and per-seed summaries
        rebuild exactly, like the JSON export."""
        text = sweep_to_csv(golden_matrix)
        back = sweep_from_csv(text)
        assert set(back) == set(golden_matrix)
        for label, cell in golden_matrix.items():
            for policy, result in cell.items():
                assert back[label][policy].per_seed == result.per_seed
                assert back[label][policy].spec == result.spec

    def test_csv_round_trip_hostile_names(self):
        """ISSUE satellite: scenario labels carrying the CSV
        delimiter, quotes or newlines must survive the text
        round-trip (the csv module quotes them) instead of
        corrupting rows."""
        hostile = 'evil,label "quoted"\nnewline'
        spec = ScenarioSpec(
            workload_set="A", num_tasks=8, seeds=(1,), name=hostile,
            priority_weights=tuple(float(i + 1) for i in range(12)),
            model_mix=(("kws", 0.5), ("squeezenet", 0.5)),
        )
        matrix = {spec.label: run_scenario(spec)}
        back = sweep_from_csv(sweep_to_csv(matrix))
        assert set(back) == {hostile}
        for policy, result in matrix[hostile].items():
            assert back[hostile][policy].per_seed == result.per_seed
            assert back[hostile][policy].spec == spec

    def test_csv_without_spec_column_rejected(self):
        with pytest.raises(ValueError, match="spec"):
            sweep_from_csv("scenario,policy,seed\na,moca,1\n")

    def test_csv_missing_metric_column_rejected(self, golden_matrix):
        """Review finding: a dropped metric column must refuse with a
        ValueError naming it, not leak a KeyError."""
        text = sweep_to_csv(golden_matrix)
        header, rest = text.split("\r\n", 1)
        mangled = header.replace("sla_rate,", "") + "\r\n" + rest
        with pytest.raises(ValueError, match="sla_rate"):
            sweep_from_csv(mangled)

    def test_csv_row_cut_mid_line_rejected(self, golden_matrix):
        """A file truncated mid-row reads as truncation, not a
        float(None) TypeError."""
        text = sweep_to_csv(golden_matrix)
        lines = text.split("\r\n")
        cut = "\r\n".join(lines[:2]) + "\r\n" + lines[2][:40] + "\r\n"
        with pytest.raises(ValueError):
            sweep_from_csv(cut)

    def test_csv_scenario_column_must_match_spec_label(
        self, golden_matrix
    ):
        """A hand-edited scenario column that disagrees with the
        embedded spec's label must be refused, not rebuilt into an
        internally inconsistent matrix."""
        text = sweep_to_csv(golden_matrix)
        label = next(iter(golden_matrix))
        with pytest.raises(ValueError, match="does not match"):
            sweep_from_csv(text.replace(f"\r\n{label},", "\r\nrenamed,"))

    def test_csv_truncated_rows_rejected(self, golden_matrix):
        """Dropping a seed row must fail the seeds consistency check,
        not silently rebuild a shorter per_seed tuple."""
        lines = sweep_to_csv(golden_matrix).splitlines(keepends=True)
        with pytest.raises(ValueError, match="seed"):
            sweep_from_csv("".join(lines[:-1]))

    def test_json_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="repro-sweep"):
            sweep_from_json(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="repro-sweep"):
            sweep_from_json("[1, 2]")  # valid JSON, wrong shape

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            sweep_to_json({})
        with pytest.raises(ValueError):
            sweep_to_csv({})

    def test_exports_deterministic(self, golden_matrix):
        assert sweep_to_json(golden_matrix) == sweep_to_json(golden_matrix)
        assert sweep_to_csv(golden_matrix) == sweep_to_csv(golden_matrix)

    def test_export_files_match_goldens(self, golden_matrix):
        """ISSUE satellite: golden fingerprints for the new export
        files — a refactor that perturbs exporter bytes (or the
        underlying metrics) fails here.  Re-bless after intentional
        changes with scripts/bless_goldens.py."""
        assert GOLDEN_EXPORT_PATH.exists(), (
            f"missing golden file {GOLDEN_EXPORT_PATH}; "
            f"create it with: {RE_BLESS}"
        )
        golden = json.loads(GOLDEN_EXPORT_PATH.read_text())
        actual = {
            "json": hashlib.sha256(
                sweep_to_json(golden_matrix).encode()
            ).hexdigest()[:16],
            "csv": hashlib.sha256(
                sweep_to_csv(golden_matrix).encode()
            ).hexdigest()[:16],
        }
        assert actual == golden["digests"], (
            f"sweep export bytes changed; if intentional, re-bless "
            f"with: {RE_BLESS}"
        )


class TestResultsCsv:
    def test_round_trip(self):
        original = [_result("a"), _result("b")]
        text = results_to_csv(original)
        restored = results_from_csv(text)
        assert len(restored) == 2
        for orig, back in zip(original, restored):
            assert back.task_id == orig.task_id
            assert back.latency == pytest.approx(orig.latency)
            assert back.met_sla == orig.met_sla
            assert back.bw_reconfigs == orig.bw_reconfigs

    def test_derived_columns_present(self):
        text = results_to_csv([_result()])
        header = text.splitlines()[0]
        for col in ("latency", "runtime", "met_sla", "slowdown"):
            assert col in header
