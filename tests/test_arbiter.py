"""Tests for repro.memory.arbiter (bandwidth water-filling)."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.arbiter import AllocationError, allocate_bandwidth


class TestBasics:
    def test_undersubscribed_everyone_satisfied(self):
        grants = allocate_bandwidth({"a": 4.0, "b": 6.0}, total=16.0)
        assert grants == {"a": 4.0, "b": 6.0}

    def test_oversubscribed_proportional(self):
        grants = allocate_bandwidth({"a": 16.0, "b": 16.0}, total=16.0)
        assert grants["a"] == pytest.approx(8.0)
        assert grants["b"] == pytest.approx(8.0)

    def test_oversubscribed_demand_weighted(self):
        grants = allocate_bandwidth({"a": 24.0, "b": 8.0}, total=16.0)
        assert grants["a"] == pytest.approx(12.0)
        assert grants["b"] == pytest.approx(4.0)

    def test_demand_proportional_scales_everyone(self):
        # Unmanaged interleaving: service proportional to issue rate,
        # so both requestors scale by the same factor.
        grants = allocate_bandwidth({"a": 30.0, "b": 1.0}, total=16.0)
        scale = 16.0 / 31.0
        assert grants["a"] == pytest.approx(30.0 * scale)
        assert grants["b"] == pytest.approx(1.0 * scale)

    def test_small_demand_kept_whole_under_equal_weights(self):
        # With equal sharing weights, a requestor under the waterline
        # keeps its whole demand; the heavy one absorbs the shortfall.
        grants = allocate_bandwidth(
            {"a": 30.0, "b": 1.0}, total=16.0,
            weights={"a": 1.0, "b": 1.0},
        )
        assert grants["b"] == pytest.approx(1.0)
        assert grants["a"] == pytest.approx(15.0)

    def test_empty(self):
        assert allocate_bandwidth({}, total=16.0) == {}

    def test_zero_demand_gets_zero(self):
        grants = allocate_bandwidth({"a": 0.0, "b": 20.0}, total=16.0)
        assert grants["a"] == 0.0
        assert grants["b"] == pytest.approx(16.0)


class TestCaps:
    def test_cap_binds(self):
        grants = allocate_bandwidth(
            {"a": 10.0, "b": 10.0}, total=16.0, caps={"a": 4.0}
        )
        assert grants["a"] == pytest.approx(4.0)
        assert grants["b"] == pytest.approx(10.0)

    def test_cap_frees_bandwidth_for_others(self):
        grants = allocate_bandwidth(
            {"a": 16.0, "b": 16.0}, total=16.0, caps={"a": 2.0}
        )
        assert grants["a"] == pytest.approx(2.0)
        assert grants["b"] == pytest.approx(14.0)

    def test_cap_above_demand_irrelevant(self):
        grants = allocate_bandwidth(
            {"a": 4.0}, total=16.0, caps={"a": 100.0}
        )
        assert grants["a"] == pytest.approx(4.0)

    def test_none_cap_means_uncapped(self):
        grants = allocate_bandwidth(
            {"a": 20.0}, total=16.0, caps={"a": None}
        )
        assert grants["a"] == pytest.approx(16.0)

    def test_negative_cap_raises(self):
        with pytest.raises(AllocationError):
            allocate_bandwidth({"a": 4.0}, total=16.0, caps={"a": -1.0})


class TestWeights:
    def test_weights_shift_shares(self):
        grants = allocate_bandwidth(
            {"a": 16.0, "b": 16.0}, total=16.0,
            weights={"a": 3.0, "b": 1.0},
        )
        assert grants["a"] == pytest.approx(12.0)
        assert grants["b"] == pytest.approx(4.0)

    def test_moderate_weight_small_demand_kept_whole(self):
        grants = allocate_bandwidth(
            {"a": 30.0, "b": 2.0}, total=16.0,
            weights={"a": 2.0, "b": 1.0},
        )
        # b's demand fits under its weighted waterline, so it keeps it
        # and a absorbs the whole shortfall.
        assert grants["b"] == pytest.approx(2.0)
        assert grants["a"] == pytest.approx(14.0)

    def test_negligible_weight_is_starved(self):
        # Score-weighted sharing deliberately starves a requestor whose
        # dynamic score is negligible — the runtime's min_bw_rate floor
        # is what restores forward progress (tested in test_runtime).
        grants = allocate_bandwidth(
            {"a": 30.0, "b": 2.0}, total=16.0,
            weights={"a": 100.0, "b": 0.01},
        )
        assert grants["b"] < 0.1

    def test_zero_weights_equal_split(self):
        grants = allocate_bandwidth(
            {"a": 20.0, "b": 20.0}, total=16.0,
            weights={"a": 0.0, "b": 0.0},
        )
        assert grants["a"] == pytest.approx(8.0)
        assert grants["b"] == pytest.approx(8.0)

    def test_negative_weight_raises(self):
        with pytest.raises(AllocationError):
            allocate_bandwidth({"a": 4.0}, total=16.0, weights={"a": -1.0})


class TestValidation:
    def test_negative_demand_raises(self):
        with pytest.raises(AllocationError):
            allocate_bandwidth({"a": -1.0}, total=16.0)

    def test_nonpositive_total_raises(self):
        with pytest.raises(AllocationError):
            allocate_bandwidth({"a": 1.0}, total=0.0)

    def test_nan_demand_raises(self):
        with pytest.raises(AllocationError):
            allocate_bandwidth({"a": float("nan")}, total=16.0)


@st.composite
def _allocation_case(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    demands = {
        f"j{i}": draw(st.floats(min_value=0.0, max_value=64.0))
        for i in range(n)
    }
    total = draw(st.floats(min_value=0.5, max_value=64.0))
    use_caps = draw(st.booleans())
    caps = None
    if use_caps:
        caps = {
            k: draw(st.floats(min_value=0.1, max_value=64.0))
            for k in demands
            if draw(st.booleans())
        }
    use_weights = draw(st.booleans())
    weights = None
    if use_weights:
        weights = {
            k: draw(st.floats(min_value=0.0, max_value=100.0))
            for k in demands
        }
    return demands, total, caps, weights


class TestProperties:
    @given(_allocation_case())
    def test_conservation_and_bounds(self, case):
        demands, total, caps, weights = case
        grants = allocate_bandwidth(demands, total, caps, weights)
        assert set(grants) == set(demands)
        assert sum(grants.values()) <= total * 1.0001 + 1e-9
        for key, grant in grants.items():
            assert grant >= -1e-9
            assert grant <= demands[key] + 1e-9
            if caps and key in caps and caps[key] is not None:
                assert grant <= caps[key] + 1e-9

    @given(_allocation_case())
    def test_work_conserving_when_feasible(self, case):
        demands, total, caps, weights = case
        grants = allocate_bandwidth(demands, total, caps, weights)
        wants = {
            k: min(
                demands[k],
                caps.get(k, float("inf")) if caps else float("inf"),
            )
            for k in demands
        }
        if sum(wants.values()) <= total:
            for key in demands:
                assert grants[key] == pytest.approx(wants[key])
