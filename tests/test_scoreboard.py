"""Tests for repro.core.scoreboard."""

import pytest

from repro.core.scoreboard import Scoreboard


class TestScoreboard:
    def test_empty(self):
        sb = Scoreboard()
        assert len(sb) == 0
        assert "a" not in sb

    def test_update_and_lookup(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=4.0, score=2.0, demand=6.0)
        assert "a" in sb
        assert sb.mem_bw("a") == 4.0
        assert sb.score("a") == 2.0
        assert sb.entry("a").demand == 6.0

    def test_demand_defaults_to_rate(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=4.0, score=2.0)
        assert sb.entry("a").demand == 4.0

    def test_update_overwrites(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=4.0, score=2.0)
        sb.update("a", bw_rate=1.0, score=9.0)
        assert sb.mem_bw("a") == 1.0
        assert len(sb) == 1

    def test_remove(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=4.0, score=2.0)
        sb.remove("a")
        assert "a" not in sb

    def test_remove_missing_is_noop(self):
        Scoreboard().remove("ghost")

    def test_entry_missing_raises(self):
        with pytest.raises(KeyError):
            Scoreboard().entry("ghost")

    def test_other_apps(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=1.0, score=1.0)
        sb.update("b", bw_rate=2.0, score=1.0)
        sb.update("c", bw_rate=3.0, score=1.0)
        assert sorted(sb.other_apps("b")) == ["a", "c"]

    def test_other_totals(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=2.0, score=3.0)
        sb.update("b", bw_rate=4.0, score=0.5)
        sb.update("me", bw_rate=100.0, score=100.0)
        other_bw, weight_sum = sb.other_totals("me")
        assert other_bw == pytest.approx(6.0)
        assert weight_sum == pytest.approx(3.0 * 2.0 + 0.5 * 4.0)

    def test_demands_and_scores_maps(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=2.0, score=3.0, demand=5.0)
        sb.update("b", bw_rate=4.0, score=0.5)
        assert sb.demands() == {"a": 5.0, "b": 4.0}
        assert sb.scores() == {"a": 3.0, "b": 0.5}

    def test_total_bw(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=2.0, score=1.0)
        sb.update("b", bw_rate=3.0, score=1.0)
        assert sb.total_bw() == pytest.approx(5.0)

    def test_clear(self):
        sb = Scoreboard()
        sb.update("a", bw_rate=2.0, score=1.0)
        sb.clear()
        assert len(sb) == 0

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            Scoreboard().update("a", bw_rate=-1.0, score=0.0)

    def test_negative_demand_raises(self):
        with pytest.raises(ValueError):
            Scoreboard().update("a", bw_rate=1.0, score=0.0, demand=-1.0)
