"""Tests for repro.metrics (SLA, STP, fairness — Section IV-C)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.fairness import fairness, proportional_progress
from repro.metrics.sla import sla_by_priority_group, sla_satisfaction_rate
from repro.metrics.summary import summarize
from repro.metrics.throughput import (
    normalized_progress_mean,
    system_throughput,
)
from repro.sim.job import TaskResult


def _result(task_id="t", priority=5, latency=100.0, isolated=50.0,
            target=120.0):
    return TaskResult(
        task_id=task_id,
        network_name="net",
        priority=priority,
        dispatch_cycle=0.0,
        started_at=10.0,
        finished_at=latency,
        qos_target_cycles=target,
        isolated_cycles=isolated,
        preemptions=0,
        tile_repartitions=0,
        bw_reconfigs=0,
        stall_cycles=0.0,
    )


class TestSla:
    def test_all_met(self):
        results = [_result(task_id=f"t{i}") for i in range(4)]
        assert sla_satisfaction_rate(results) == 1.0

    def test_half_met(self):
        results = [
            _result("a", latency=100.0, target=120.0),
            _result("b", latency=200.0, target=120.0),
        ]
        assert sla_satisfaction_rate(results) == 0.5

    def test_boundary_counts_as_met(self):
        assert sla_satisfaction_rate([_result(latency=120.0, target=120.0)]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sla_satisfaction_rate([])

    def test_group_breakdown(self):
        results = [
            _result("a", priority=0, latency=100.0),   # p-Low, met
            _result("b", priority=1, latency=500.0),   # p-Low, missed
            _result("c", priority=5, latency=100.0),   # p-Mid, met
            _result("d", priority=10, latency=100.0),  # p-High, met
        ]
        groups = sla_by_priority_group(results)
        assert groups["p-Low"] == 0.5
        assert groups["p-Mid"] == 1.0
        assert groups["p-High"] == 1.0

    def test_empty_groups_omitted(self):
        groups = sla_by_priority_group([_result(priority=0)])
        assert list(groups) == ["p-Low"]


class TestStp:
    def test_equation2(self):
        results = [
            _result("a", latency=100.0, isolated=50.0),  # progress 0.5
            _result("b", latency=100.0, isolated=25.0),  # progress 0.25
        ]
        assert system_throughput(results) == pytest.approx(0.75)

    def test_perfect_colocation(self):
        results = [
            _result(f"t{i}", latency=50.0, isolated=50.0) for i in range(4)
        ]
        assert system_throughput(results) == pytest.approx(4.0)

    def test_normalized_mean(self):
        results = [
            _result("a", latency=100.0, isolated=50.0),
            _result("b", latency=100.0, isolated=25.0),
        ]
        assert normalized_progress_mean(results) == pytest.approx(0.375)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            system_throughput([])


class TestFairness:
    def test_equal_everything_is_fair(self):
        results = [
            _result(f"t{i}", priority=5, latency=100.0, isolated=50.0)
            for i in range(3)
        ]
        assert fairness(results) == pytest.approx(1.0)

    def test_proportional_progress_weighting(self):
        # Two tasks, priorities 1 and 3 (weights 2 and 4 of 6).
        results = [
            _result("a", priority=1, latency=100.0, isolated=50.0),
            _result("b", priority=3, latency=100.0, isolated=50.0),
        ]
        pp = proportional_progress(results)
        assert pp["a"] == pytest.approx(0.5 / (2 / 6))
        assert pp["b"] == pytest.approx(0.5 / (4 / 6))

    def test_fairness_is_min_over_max(self):
        results = [
            _result("a", priority=5, latency=100.0, isolated=50.0),
            _result("b", priority=5, latency=200.0, isolated=50.0),
        ]
        pp = proportional_progress(results)
        expected = min(pp.values()) / max(pp.values())
        assert fairness(results) == pytest.approx(expected)

    def test_priority_aligned_progress_is_fairer(self):
        # High-priority task progressing faster matches its larger
        # share -> higher fairness than the inverted assignment.
        aligned = [
            _result("a", priority=9, latency=50.0, isolated=50.0),
            _result("b", priority=1, latency=250.0, isolated=50.0),
        ]
        inverted = [
            _result("a", priority=1, latency=50.0, isolated=50.0),
            _result("b", priority=9, latency=250.0, isolated=50.0),
        ]
        assert fairness(aligned) > fairness(inverted)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fairness([])

    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.floats(min_value=1.0, max_value=1e6),
            st.floats(min_value=1.0, max_value=1e6),
        ),
        min_size=1, max_size=20,
    ))
    def test_property_fairness_in_unit_interval(self, rows):
        results = [
            _result(f"t{i}", priority=p, latency=lat + 10.0, isolated=iso)
            for i, (p, lat, iso) in enumerate(rows)
        ]
        value = fairness(results)
        assert 0 < value <= 1.0 + 1e-9


class TestSummary:
    def test_summary_bundles_everything(self):
        results = [
            _result("a", priority=0, latency=100.0),
            _result("b", priority=10, latency=500.0),
        ]
        s = summarize("test", results)
        assert s.policy == "test"
        assert s.num_tasks == 2
        assert s.sla_rate == 0.5
        assert s.stp == pytest.approx(system_throughput(results))
        assert s.fairness == pytest.approx(fairness(results))
        assert s.mean_slowdown > 0
        assert s.p99_slowdown >= s.mean_slowdown * 0.5

    def test_group_rates_included(self):
        results = [_result("a", priority=0), _result("b", priority=10)]
        s = summarize("test", results)
        assert "p-Low" in s.sla_by_group
        assert "p-High" in s.sla_by_group
