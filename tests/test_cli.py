"""Tests for the CLI argument parsing (ISSUE bugfix: malformed
--seeds / --scenarios values must exit with clean argparse errors, not
tracebacks) and the sweep export path."""

import json

import pytest

from repro.cli import (
    _export_filename,
    _parse_formats,
    _parse_names,
    _parse_seeds,
    build_parser,
    main,
)


class TestParseSeeds:
    def test_valid(self):
        assert _parse_seeds("1,2,3") == (1, 2, 3)
        assert _parse_seeds(" 4 , 5 ") == (4, 5)
        assert _parse_seeds("0") == (0,)

    @pytest.mark.parametrize("bad", ["", "   ", ","])
    def test_empty_rejected(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="empty"):
            _parse_seeds(bad)

    def test_trailing_comma_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="comma"):
            _parse_seeds("1,2,")

    def test_non_integer_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="integer"):
            _parse_seeds("1,x")

    def test_negative_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match=">= 0"):
            _parse_seeds("1,-3")


class TestParseNames:
    def test_valid(self):
        assert _parse_names("a,b") == ("a", "b")
        assert _parse_names(" a , b ") == ("a", "b")

    def test_empty_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="empty"):
            _parse_names("")

    def test_trailing_comma_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="comma"):
            _parse_names("a,b,")


class TestParseFormats:
    def test_valid_and_deduplicated(self):
        assert _parse_formats("json,csv") == ("json", "csv")
        assert _parse_formats("csv,csv") == ("csv",)

    def test_unknown_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="unknown"):
            _parse_formats("json,xml")


class TestParserExitBehaviour:
    """Malformed values exit via argparse (status 2, clean
    subcommand-prefixed message on stderr) instead of a traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--scenarios", "a,", "--seeds", "1"],
            ["sweep", "--scenarios", "bursty-mixed", "--seeds", ""],
            ["sweep", "--scenarios", "bursty-mixed", "--seeds", "1,q"],
            ["sweep", "--scenarios", "bursty-mixed", "--seeds", "-1"],
            ["fig5", "--seeds", "2,"],
        ],
    )
    def test_malformed_values_exit_cleanly(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert f"{argv[0]}: error:" in err

    def test_unknown_scenario_prefixed(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--scenarios", "no-such-scenario"])
        assert str(excinfo.value).startswith("sweep:")

    def test_format_without_out_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--scenarios", "bursty-mixed",
                 "--format", "csv"]
            )
        assert "requires --out" in str(excinfo.value)


class TestExportFilename:
    def test_sanitizes_path_separators(self):
        assert _export_filename("Workload-A/QoS-M") == "Workload-A-QoS-M"
        assert _export_filename("bursty-mixed") == "bursty-mixed"

    def test_colliding_labels_rejected_not_overwritten(self, tmp_path):
        """Two labels sanitizing to the same stem must fail loudly
        instead of silently overwriting one scenario's files."""
        from repro.cli import _write_sweep_exports

        with pytest.raises(SystemExit, match="both export as"):
            _write_sweep_exports(
                {"a/b": {}, "a b": {}}, [], tmp_path, ("json",)
            )

    def test_manifest_label_rejected(self, tmp_path):
        """A scenario labeled 'manifest' would collide with the
        reserved manifest.json."""
        from repro.cli import _write_sweep_exports

        with pytest.raises(SystemExit, match="manifest"):
            _write_sweep_exports({"manifest": {}}, [], tmp_path, ("json",))


@pytest.mark.slow
class TestSweepOut:
    def test_writes_per_scenario_exports_and_manifest(self, tmp_path):
        out = tmp_path / "exports"
        rc = main(
            [
                "sweep",
                "--scenarios", "ref-a-qos-m",
                "--tasks", "8",
                "--seeds", "1",
                "--out", str(out),
                "--format", "json,csv",
            ]
        )
        assert rc == 0
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "manifest.json", "ref-a-qos-m.csv", "ref-a-qos-m.json",
        ]
        manifest = json.loads((out / "manifest.json").read_text())
        assert len(manifest["cells"]) == 4  # 1 scenario x 4 policies x 1 seed
        from repro.reporting import sweep_from_json

        back = sweep_from_json((out / "ref-a-qos-m.json").read_text())
        assert set(back) == {"ref-a-qos-m"}
