"""Tests for the CLI argument parsing (ISSUE bugfix: malformed
--seeds / --scenarios values must exit with clean argparse errors, not
tracebacks) and the sweep export path."""

import json

import pytest

from repro.cli import (
    _export_filename,
    _parse_formats,
    _parse_names,
    _parse_seeds,
    _parse_shard,
    build_parser,
    main,
)


class TestParseSeeds:
    def test_valid(self):
        assert _parse_seeds("1,2,3") == (1, 2, 3)
        assert _parse_seeds(" 4 , 5 ") == (4, 5)
        assert _parse_seeds("0") == (0,)

    @pytest.mark.parametrize("bad", ["", "   ", ","])
    def test_empty_rejected(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="empty"):
            _parse_seeds(bad)

    def test_trailing_comma_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="comma"):
            _parse_seeds("1,2,")

    def test_non_integer_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="integer"):
            _parse_seeds("1,x")

    def test_negative_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match=">= 0"):
            _parse_seeds("1,-3")


class TestParseNames:
    def test_valid(self):
        assert _parse_names("a,b") == ("a", "b")
        assert _parse_names(" a , b ") == ("a", "b")

    def test_empty_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="empty"):
            _parse_names("")

    def test_trailing_comma_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="comma"):
            _parse_names("a,b,")


class TestParseFormats:
    def test_valid_and_deduplicated(self):
        assert _parse_formats("json,csv") == ("json", "csv")
        assert _parse_formats("csv,csv") == ("csv",)

    def test_unknown_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="unknown"):
            _parse_formats("json,xml")


class TestParseShard:
    def test_valid_one_based_to_zero_based(self):
        assert _parse_shard("1/4") == (0, 4)
        assert _parse_shard("4/4") == (3, 4)
        assert _parse_shard(" 2 / 3 ") == (1, 3)
        assert _parse_shard("1/1") == (0, 1)

    @pytest.mark.parametrize("bad", ["", "2", "a/2", "1/0", "0/2", "3/2"])
    def test_malformed_rejected(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_shard(bad)


class TestParserExitBehaviour:
    """Malformed values exit via argparse (status 2, clean
    subcommand-prefixed message on stderr) instead of a traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--scenarios", "a,", "--seeds", "1"],
            ["sweep", "--scenarios", "bursty-mixed", "--seeds", ""],
            ["sweep", "--scenarios", "bursty-mixed", "--seeds", "1,q"],
            ["sweep", "--scenarios", "bursty-mixed", "--seeds", "-1"],
            ["fig5", "--seeds", "2,"],
        ],
    )
    def test_malformed_values_exit_cleanly(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert f"{argv[0]}: error:" in err

    def test_unknown_scenario_prefixed(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--scenarios", "no-such-scenario"])
        assert str(excinfo.value).startswith("sweep:")

    @pytest.mark.parametrize("cadence", ["sometimes", "interval",
                                         "interval:zero"])
    def test_malformed_cadence_exits_cleanly(self, cadence, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["sweep", "--scenarios", "bursty-mixed",
                 "--cadence", cadence]
            )
        assert excinfo.value.code == 2
        assert "sweep: error:" in capsys.readouterr().err

    def test_decisions_with_shard_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--scenarios", "bursty-mixed",
                 "--shard", "1/2", "--out", str(tmp_path / "s"),
                 "--decisions"]
            )
        assert "no effect with --shard" in str(excinfo.value)


class TestScenarioGlobs:
    """ISSUE satellite: --scenarios accepts glob patterns resolved
    against the registry, refusing patterns that match nothing."""

    def test_glob_expands_against_registry(self):
        from repro.cli import _expand_scenario_patterns
        from repro.scenarios import scenario_names

        expanded = _expand_scenario_patterns(("ref-*-qos-h",))
        assert expanded == [
            n for n in scenario_names()
            if n.startswith("ref-") and n.endswith("-qos-h")
        ]
        assert expanded  # the builtins guarantee matches

    def test_plain_names_pass_through(self):
        from repro.cli import _expand_scenario_patterns

        assert _expand_scenario_patterns(
            ("bursty-mixed", "diurnal-light")
        ) == ["bursty-mixed", "diurnal-light"]

    def test_overlapping_patterns_deduplicated(self):
        from repro.cli import _expand_scenario_patterns

        expanded = _expand_scenario_patterns(
            ("bursty-*", "bursty-mixed")
        )
        assert expanded.count("bursty-mixed") == 1

    def test_unmatched_pattern_named_in_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--scenarios", "bursty-*,nope-*,zilch-?"])
        message = str(excinfo.value)
        assert "'nope-*'" in message and "'zilch-?'" in message
        assert "match no registered scenarios" in message

    def test_glob_sweep_runs(self, capsys):
        rc = main(
            ["sweep", "--scenarios", "bursty-*", "--tasks", "6",
             "--seeds", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bursty-mixed" in out and "bursty-rush" in out


class TestCadenceCli:
    def test_cadence_override_with_decisions_table(self, capsys):
        rc = main(
            ["sweep", "--scenarios", "ref-a-qos-m", "--tasks", "6",
             "--seeds", "1", "--cadence", "block-boundary",
             "--decisions"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "scenario ref-a-qos-m" in captured.out
        assert "decisions" in captured.err  # telemetry table header

    def test_explicit_every_event_matches_default(self, capsys):
        base = ["sweep", "--scenarios", "ref-a-qos-m", "--tasks", "6",
                "--seeds", "1"]
        assert main(base) == 0
        default_out = capsys.readouterr().out
        assert main(base + ["--cadence", "every-event"]) == 0
        explicit_out = capsys.readouterr().out
        assert explicit_out == default_out

class TestSolverCli:
    """ISSUE satellite: ``sweep --solver {kernel,vector,scalar}`` is a
    debug flag threaded to the engine — documented, validated, and
    operational-only (outputs identical whichever solver runs)."""

    def test_solver_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        helptext = capsys.readouterr().out
        assert "--solver" in helptext
        assert "kernel" in helptext
        assert "--precompute" in helptext

    def test_unknown_solver_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--scenarios", "ref-a-qos-m",
                  "--solver", "turbo"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_solver_threaded_to_runner(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--scenarios", "ref-a-qos-m",
             "--solver", "scalar"]
        )
        from repro.cli import _sweep_runner

        runner = _sweep_runner(args)
        assert runner.solver == "scalar"
        # Default: no override, engine picks its own (kernel).
        default_args = parser.parse_args(
            ["sweep", "--scenarios", "ref-a-qos-m"]
        )
        assert _sweep_runner(default_args).solver is None

    @pytest.mark.parametrize("solver", ["kernel", "vector", "scalar"])
    def test_solver_output_identical_to_default(self, solver, capsys):
        base = ["sweep", "--scenarios", "ref-a-qos-m", "--tasks", "6",
                "--seeds", "1"]
        assert main(base) == 0
        default_out = capsys.readouterr().out
        assert main(base + ["--solver", solver]) == 0
        solver_out = capsys.readouterr().out
        assert solver_out == default_out


class TestSweepGuards:
    def test_format_without_out_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--scenarios", "bursty-mixed",
                 "--format", "csv"]
            )
        assert "requires --out" in str(excinfo.value)

    def test_shard_without_out_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--scenarios", "bursty-mixed",
                 "--shard", "1/2"]
            )
        assert "requires --out" in str(excinfo.value)

    def test_shard_with_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--scenarios", "bursty-mixed",
                 "--shard", "1/2", "--out", str(tmp_path / "s"),
                 "--format", "csv"]
            )
        assert "no effect with --shard" in str(excinfo.value)

    def test_merge_missing_path_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["merge", str(tmp_path / "nowhere")])
        assert "does not exist" in str(excinfo.value)

    def test_merge_input_error_leaves_no_stray_out_dir(self, tmp_path):
        """Review finding: a typo'd or unparsable input must not
        leave behind a freshly created empty --out directory."""
        out = tmp_path / "merged"
        with pytest.raises(SystemExit, match="does not exist"):
            main(
                ["merge", str(tmp_path / "nowhere"), "--out", str(out)]
            )
        assert not out.exists()
        bad = tmp_path / "partial-1-of-2.json"
        bad.write_text('{"format": "repro-sweep-partial/1"}')
        with pytest.raises(SystemExit, match="malformed"):
            main(["merge", str(bad), "--out", str(out)])
        assert not out.exists()

    def test_sweep_stem_collision_refused_before_running(self, tmp_path):
        """Review finding: export-name validation depends only on the
        labels, so the refusal must come before any simulation — a
        'manifest'-named scenario with a huge task count exits
        immediately instead of sweeping first and discarding the
        result."""
        import time

        from repro.scenarios import ScenarioSpec, temporary_scenario

        spec = ScenarioSpec(workload_set="A", num_tasks=5000, seeds=(1,))
        with temporary_scenario("manifest", spec):
            t0 = time.time()
            with pytest.raises(SystemExit, match="manifest"):
                main(
                    ["sweep", "--scenarios", "manifest",
                     "--out", str(tmp_path / "out")]
                )
            assert time.time() - t0 < 5.0

    def test_merge_empty_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["merge", str(tmp_path)])
        assert "no partial-" in str(excinfo.value)

    def test_merge_format_without_out_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["merge", str(tmp_path), "--format", "csv"])
        assert "requires --out" in str(excinfo.value)


class TestOverwriteGuard:
    def test_non_empty_out_dir_refused_without_force(self, tmp_path):
        """ISSUE satellite: prior artifacts are never silently
        clobbered."""
        from repro.cli import _ensure_out_dir

        out = tmp_path / "exports"
        out.mkdir()
        (out / "prior.json").write_text("{}")
        with pytest.raises(SystemExit, match="--force"):
            _ensure_out_dir(out, False, "sweep")
        assert _ensure_out_dir(out, True, "sweep") == out

    def test_out_pointing_at_file_rejected_cleanly(self, tmp_path):
        """Review finding: --out at an existing regular file must be
        a clean usage error, not a NotADirectoryError/FileExistsError
        traceback."""
        from repro.cli import _ensure_out_dir

        notadir = tmp_path / "notadir"
        notadir.write_text("x")
        with pytest.raises(SystemExit, match="not a directory"):
            _ensure_out_dir(notadir, False, "sweep")
        with pytest.raises(SystemExit, match="not a directory"):
            _ensure_out_dir(notadir, True, "merge")
        with pytest.raises(SystemExit, match="not a directory"):
            main(
                ["sweep", "--scenarios", "bursty-mixed",
                 "--tasks", "8", "--seeds", "1",
                 "--shard", "1/2", "--out", str(notadir)]
            )

    def test_empty_or_absent_dir_accepted(self, tmp_path):
        from repro.cli import _ensure_out_dir

        fresh = tmp_path / "fresh"
        assert _ensure_out_dir(fresh, False, "sweep") == fresh
        assert _ensure_out_dir(fresh, False, "sweep") == fresh

    def test_vetting_never_deletes(self, tmp_path):
        """Review finding: the pre-run vet must not delete anything —
        cleanup is deferred until results exist, so a failed run
        cannot leave the directory emptied."""
        from repro.cli import _ensure_out_dir

        out = tmp_path / "exports"
        out.mkdir()
        (out / "old-scenario.json").write_text("{}")
        _ensure_out_dir(out, True, "sweep")
        assert (out / "old-scenario.json").exists()

    def test_clean_clears_manifest_named_artifacts_only(self, tmp_path):
        """Review findings: --force must remove the prior export
        artifacts (a re-export with different scenarios would
        otherwise leave stale files mixed in) — but only the files
        the prior manifest.json names, never unrelated JSON/CSV
        sitting in the directory (e.g. --out . in a repo root)."""
        import json

        from repro.cli import _clean_out_dir

        out = tmp_path / "exports"
        out.mkdir()
        (out / "manifest.json").write_text(json.dumps(
            {"scenarios": [{"label": "old-scenario", "spec": {}}],
             "policies": [], "cells": []}
        ))
        (out / "old-scenario.json").write_text("{}")
        (out / "old-scenario.csv").write_text("a,b\n")
        (out / "unrelated.json").write_text("{}")
        (out / "notes.txt").write_text("keep me")
        (out / "subdir").mkdir()
        _clean_out_dir(out)
        assert sorted(p.name for p in out.iterdir()) == [
            "notes.txt", "subdir", "unrelated.json",
        ]
        _clean_out_dir(tmp_path / "absent")  # no-op

    def test_pre_run_vet_does_not_create_the_directory(self, tmp_path):
        """Review finding: the pre-sweep vet must not mkdir — a run
        failing after it must leave no stray empty directory (the
        export writer creates it once results exist)."""
        from repro.cli import _ensure_out_dir

        out = tmp_path / "results"
        _ensure_out_dir(out, False, "sweep", create=False)
        assert not out.exists()
        _ensure_out_dir(out, False, "sweep")
        assert out.is_dir()

    def test_clean_without_prior_manifest_removes_nothing(self, tmp_path):
        from repro.cli import _clean_out_dir

        out = tmp_path / "exports"
        out.mkdir()
        (out / "data.json").write_text("{}")
        _clean_out_dir(out)
        assert (out / "data.json").exists()


class TestExportFilename:
    def test_sanitizes_path_separators(self):
        assert _export_filename("Workload-A/QoS-M") == "Workload-A-QoS-M"
        assert _export_filename("bursty-mixed") == "bursty-mixed"

    def test_colliding_labels_rejected_not_overwritten(self, tmp_path):
        """Two labels sanitizing to the same stem must fail loudly
        instead of silently overwriting one scenario's files."""
        from repro.cli import _write_sweep_exports

        with pytest.raises(SystemExit, match="both export as"):
            _write_sweep_exports(
                {"a/b": {}, "a b": {}}, [], tmp_path, ("json",)
            )

    def test_manifest_label_rejected(self, tmp_path):
        """A scenario labeled 'manifest' would collide with the
        reserved manifest.json."""
        from repro.cli import _write_sweep_exports

        with pytest.raises(SystemExit, match="manifest"):
            _write_sweep_exports({"manifest": {}}, [], tmp_path, ("json",))

    def test_refused_export_with_clean_keeps_prior_artifacts(
        self, tmp_path
    ):
        """Review finding: the --force cleanup must run only after
        the stem validation, so a refused export cannot have already
        destroyed the old artifacts."""
        from repro.cli import _write_sweep_exports

        prior = tmp_path / "prior.json"
        prior.write_text("{}")
        with pytest.raises(SystemExit, match="manifest"):
            _write_sweep_exports(
                {"manifest": {}}, [], tmp_path, ("json",), clean=True
            )
        assert prior.exists()


@pytest.mark.slow
class TestSweepOut:
    def test_writes_per_scenario_exports_and_manifest(self, tmp_path):
        out = tmp_path / "exports"
        rc = main(
            [
                "sweep",
                "--scenarios", "ref-a-qos-m",
                "--tasks", "8",
                "--seeds", "1",
                "--out", str(out),
                "--format", "json,csv",
            ]
        )
        assert rc == 0
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "manifest.json", "ref-a-qos-m.csv", "ref-a-qos-m.json",
        ]
        manifest = json.loads((out / "manifest.json").read_text())
        assert len(manifest["cells"]) == 4  # 1 scenario x 4 policies x 1 seed
        from repro.reporting import sweep_from_json

        back = sweep_from_json((out / "ref-a-qos-m.json").read_text())
        assert set(back) == {"ref-a-qos-m"}


@pytest.mark.slow
class TestShardMergeCli:
    def test_shard_merge_exports_byte_identical_to_unsharded(
        self, tmp_path
    ):
        """ISSUE acceptance: `sweep --shard I/N` partials merged via
        `merge` write the same export bytes as one unsharded run."""
        base = [
            "sweep", "--scenarios", "ref-a-qos-m",
            "--tasks", "8", "--seeds", "1,2",
        ]
        shards = tmp_path / "shards"
        for shard in ("1/2", "2/2"):
            assert main(
                base + ["--shard", shard, "--out", str(shards)]
            ) == 0
        assert sorted(p.name for p in shards.iterdir()) == [
            "partial-1-of-2.json", "partial-2-of-2.json",
        ]
        merged = tmp_path / "merged"
        assert main(["merge", str(shards), "--out", str(merged)]) == 0
        unsharded = tmp_path / "unsharded"
        assert main(base + ["--out", str(unsharded)]) == 0
        names = sorted(p.name for p in merged.iterdir())
        assert names == sorted(p.name for p in unsharded.iterdir())
        for name in names:
            assert (merged / name).read_bytes() == (
                unsharded / name
            ).read_bytes(), name

    def test_merge_out_overlapping_inputs_refused(self, tmp_path):
        """Review finding: `merge shards/ --out shards/ --force` used
        to delete its own input partials; the overlap is now refused
        with the partials intact."""
        shards = tmp_path / "shards"
        assert main([
            "sweep", "--scenarios", "ref-a-qos-m", "--tasks", "8",
            "--seeds", "1", "--shard", "1/1", "--out", str(shards),
        ]) == 0
        for argv in (
            ["merge", str(shards), "--out", str(shards), "--force"],
            ["merge", str(shards), "--out", str(shards)],
            ["merge", str(shards / "partial-1-of-1.json"),
             "--out", str(shards), "--force"],
        ):
            with pytest.raises(SystemExit, match="different directory"):
                main(argv)
        assert (shards / "partial-1-of-1.json").exists()

    def test_merge_refuses_mixed_digests(self, tmp_path):
        shards = tmp_path / "shards"
        assert main([
            "sweep", "--scenarios", "ref-a-qos-m", "--tasks", "8",
            "--seeds", "1", "--shard", "1/2", "--out", str(shards),
        ]) == 0
        assert main([
            "sweep", "--scenarios", "ref-a-qos-m", "--tasks", "9",
            "--seeds", "1", "--shard", "2/2", "--out", str(shards),
        ]) == 0
        with pytest.raises(SystemExit, match="different sweeps"):
            main(["merge", str(shards)])


class TestSweepExitCodes:
    """ISSUE satellite: documented sweep exit codes — 0 complete,
    3 degraded (quarantined cells), 1 hard error."""

    def test_constants(self):
        from repro.cli import EXIT_DEGRADED, EXIT_HARD_ERROR, EXIT_OK

        assert (EXIT_OK, EXIT_HARD_ERROR, EXIT_DEGRADED) == (0, 1, 3)

    def test_complete_sweep_exits_0(self, capsys):
        assert main([
            "sweep", "--scenarios", "ref-a-qos-m",
            "--tasks", "8", "--seeds", "1",
        ]) == 0
        assert "ref-a-qos-m" in capsys.readouterr().out

    def test_degraded_sweep_exits_3_with_failure_table(self, capsys):
        rc = main([
            "sweep", "--scenarios", "ref-a-qos-m",
            "--tasks", "8", "--seeds", "1",
            "--inject-faults", "transient:cells=1:attempts=all",
            "--max-retries", "0", "--retry-backoff", "0",
        ])
        assert rc == 3
        out = capsys.readouterr().out
        assert "sweep degraded: 3 of 4 cells completed" in out
        assert "cell    1" in out
        assert "[error]" in out

    def test_usage_error_is_systemexit(self):
        """Hard errors surface as SystemExit with a message — the
        interpreter maps that to exit code 1."""
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep"])
        assert excinfo.value.code not in (0, 3)

    def test_malformed_inject_faults_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["sweep", "--scenarios", "x",
                 "--inject-faults", "explode:cells=1"]
            )
        assert excinfo.value.code == 2
        assert "explode" in capsys.readouterr().err

    def test_bad_supervision_values_rejected(self):
        with pytest.raises(SystemExit, match="max_retries"):
            main([
                "sweep", "--scenarios", "ref-a-qos-m",
                "--tasks", "8", "--seeds", "1",
                "--max-retries", "-1",
            ])


class TestSweepResumeCli:
    """`sweep --resume DIR` (ISSUE tentpole): crash-resumable sweeps
    with byte-identical exports."""

    BASE = [
        "sweep", "--scenarios", "ref-a-qos-m",
        "--tasks", "8", "--seeds", "1",
    ]

    def _dir_bytes(self, path):
        return {
            p.name: p.read_bytes() for p in sorted(path.iterdir())
        }

    def test_degraded_resume_exports_byte_identical(
        self, tmp_path, capsys
    ):
        """ISSUE acceptance: fault -> exit 3 + journal -> resume ->
        exit 0, export bytes identical to a fault-free run."""
        ref = tmp_path / "ref"
        assert main(self.BASE + ["--out", str(ref)]) == 0
        faulted = tmp_path / "faulted"
        rc = main(self.BASE + [
            "--out", str(faulted),
            "--inject-faults", "transient:cells=2:attempts=all",
            "--max-retries", "0", "--retry-backoff", "0",
        ])
        assert rc == 3
        # Degraded: only the checkpoint journal, no half exports.
        assert sorted(p.name for p in faulted.iterdir()) == [
            "cells.jsonl"
        ]
        assert "--resume" in capsys.readouterr().out
        assert main(["sweep", "--resume", str(faulted)]) == 0
        err = capsys.readouterr().err
        assert "re-running 1" in err
        assert self._dir_bytes(faulted) == self._dir_bytes(ref)

    def test_resume_after_export_is_idempotent(self, tmp_path):
        out = tmp_path / "done"
        assert main(self.BASE + ["--out", str(out)]) == 0
        before = self._dir_bytes(out)
        assert main(["sweep", "--resume", str(out)]) == 0
        assert self._dir_bytes(out) == before

    def test_resume_refuses_scenario_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--scenarios"):
            main([
                "sweep", "--resume", str(tmp_path),
                "--scenarios", "ref-a-qos-m",
            ])
        with pytest.raises(SystemExit, match="--tasks"):
            main(["sweep", "--resume", str(tmp_path), "--tasks", "8"])

    def test_resume_non_directory_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="not a directory"):
            main(["sweep", "--resume", str(tmp_path / "absent")])

    def test_resume_empty_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="nothing to resume"):
            main(["sweep", "--resume", str(tmp_path)])

    def test_interrupted_dir_hint_mentions_resume(self, tmp_path):
        out = tmp_path / "faulted"
        assert main(self.BASE + [
            "--out", str(out),
            "--inject-faults", "transient:cells=0:attempts=all",
            "--max-retries", "0", "--retry-backoff", "0",
        ]) == 3
        with pytest.raises(SystemExit, match="--resume"):
            main(self.BASE + ["--out", str(out)])

    def test_force_discards_stale_journal(self, tmp_path):
        out = tmp_path / "faulted"
        assert main(self.BASE + [
            "--out", str(out),
            "--inject-faults", "transient:cells=0:attempts=all",
            "--max-retries", "0", "--retry-backoff", "0",
        ]) == 3
        assert (out / "cells.jsonl").exists()
        assert main(self.BASE + ["--out", str(out), "--force"]) == 0
        assert not (out / "cells.jsonl").exists()

    def test_resume_foreign_journal_refused(self, tmp_path):
        out = tmp_path / "faulted"
        assert main(self.BASE + [
            "--out", str(out),
            "--inject-faults", "transient:cells=0:attempts=all",
            "--max-retries", "0", "--retry-backoff", "0",
        ]) == 3
        # A manifest.json from a *different* sweep alongside the
        # journal: the digests disagree, resume must refuse.
        other = tmp_path / "other"
        assert main([
            "sweep", "--scenarios", "ref-a-qos-m",
            "--tasks", "9", "--seeds", "1", "--out", str(other),
        ]) == 0
        import shutil

        shutil.copy(other / "manifest.json", out / "manifest.json")
        with pytest.raises(SystemExit, match="different sweep"):
            main(["sweep", "--resume", str(out)])


@pytest.mark.slow
class TestDegradedShardResumeCli:
    def test_degraded_shard_partial_heals_via_resume(self, tmp_path):
        """A quarantined cell inside a shard partial (exit 3) is
        healed by resuming the shard directory; merge of the healthy
        partials alone refuses with a resume hint."""
        base = [
            "sweep", "--scenarios", "ref-a-qos-m",
            "--tasks", "8", "--seeds", "1,2",
        ]
        shards = tmp_path / "shards"
        rc = main(base + [
            "--shard", "1/2", "--out", str(shards),
            "--inject-faults", "transient:cells=0:attempts=all",
            "--max-retries", "0", "--retry-backoff", "0",
        ])
        assert rc == 3
        assert main(
            base + ["--shard", "2/2", "--out", str(shards)]
        ) == 0
        with pytest.raises(SystemExit, match="resume"):
            main(["merge", str(shards)])
        assert main(["sweep", "--resume", str(shards)]) == 0
        unsharded = tmp_path / "unsharded"
        assert main(base + ["--out", str(unsharded)]) == 0
        for name in ("manifest.json", "ref-a-qos-m.json",
                     "ref-a-qos-m.csv"):
            assert (shards / name).read_bytes() == (
                unsharded / name
            ).read_bytes(), name


class TestDistributedSweepCli:
    """PR 8: ``sweep --serve`` / ``sweep --worker URL`` flag wiring
    and the coordinator/worker loop end-to-end at the CLI layer."""

    def test_worker_refuses_conflicting_flags(self, tmp_path):
        for extra in (
            ["--scenarios", "ref-a-qos-m"],
            ["--serve"],
            ["--out", str(tmp_path)],
            ["--shard", "1/2"],
            ["--resume", str(tmp_path)],
            ["--tasks", "8"],
            ["--seeds", "1"],
            ["--format", "json"],
        ):
            with pytest.raises(SystemExit, match="--worker"):
                main(
                    ["sweep", "--worker", "http://127.0.0.1:1"]
                    + extra
                )

    def test_serve_requires_out(self):
        with pytest.raises(SystemExit, match="--out"):
            main([
                "sweep", "--scenarios", "ref-a-qos-m",
                "--tasks", "8", "--seeds", "1", "--serve",
            ])

    def test_serve_refuses_static_shard(self, tmp_path):
        with pytest.raises(SystemExit, match="--shard"):
            main([
                "sweep", "--scenarios", "ref-a-qos-m",
                "--tasks", "8", "--seeds", "1", "--serve",
                "--shard", "1/2", "--out", str(tmp_path / "o"),
            ])

    def test_serve_validates_lease_knobs(self, tmp_path):
        base = [
            "sweep", "--scenarios", "ref-a-qos-m", "--tasks", "8",
            "--seeds", "1", "--serve", "--out", str(tmp_path / "o"),
        ]
        with pytest.raises(SystemExit, match="lease-ttl"):
            main(base + ["--lease-ttl", "0"])
        with pytest.raises(SystemExit, match="lease-cost"):
            main(base + ["--lease-cost", "0"])

    def test_worker_refuses_non_http_url(self):
        with pytest.raises(SystemExit, match="http"):
            main(["sweep", "--worker", "ftp://127.0.0.1:1"])

    def test_serve_and_worker_end_to_end(self, tmp_path):
        """A coordinator served from one thread and a worker driven
        through the real CLI entry point drain the sweep to exports
        byte-identical to an unsharded run."""
        import threading
        import time

        out = tmp_path / "served"
        base = [
            "sweep", "--scenarios", "ref-a-qos-m",
            "--tasks", "8", "--seeds", "1",
        ]
        rc = {}

        def serve():
            rc["serve"] = main(
                base + ["--out", str(out), "--serve"]
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        discovery = out / "coordinator.json"
        url = None
        for _ in range(200):
            try:
                url = json.loads(discovery.read_text())["url"]
                break
            except (OSError, ValueError):
                time.sleep(0.05)
        assert url, "coordinator.json never appeared"
        assert main(["sweep", "--worker", url]) == 0
        thread.join(timeout=60)
        assert rc.get("serve") == 0
        assert not discovery.exists()  # orderly exit cleans it up
        unsharded = tmp_path / "unsharded"
        assert main(base + ["--out", str(unsharded)]) == 0
        names = sorted(p.name for p in out.iterdir())
        assert names == sorted(p.name for p in unsharded.iterdir())
        for name in names:
            assert (out / name).read_bytes() == (
                unsharded / name
            ).read_bytes(), name


class TestMergeInputHardening:
    """PR 8 satellite: anything unreadable or non-partial handed to
    ``merge`` dies with one clean line, never a traceback."""

    def test_merge_binary_garbage_clean_error(self, tmp_path):
        shards = tmp_path / "shards"
        shards.mkdir()
        (shards / "partial-1-of-2.json").write_bytes(
            b"\x80\x81\xfe\xff not json at all"
        )
        with pytest.raises(SystemExit, match="merge: "):
            main(["merge", str(shards)])

    def test_merge_directory_partial_clean_error(self, tmp_path):
        shards = tmp_path / "shards"
        (shards / "partial-1-of-2.json").mkdir(parents=True)
        with pytest.raises(SystemExit, match="merge: "):
            main(["merge", str(shards)])

    def test_merge_non_partial_json_clean_error(self, tmp_path):
        shards = tmp_path / "shards"
        shards.mkdir()
        (shards / "partial-1-of-2.json").write_text(
            json.dumps({"format": "not-a-partial"})
        )
        with pytest.raises(SystemExit, match="merge: "):
            main(["merge", str(shards)])
