"""Tests for repro.core.scheduler (Algorithm 3)."""

import pytest

from repro.core.scheduler import (
    MoCAScheduler,
    SchedulableTask,
    SchedulerConfig,
)

DRAM_BW = 16.0


def _task(task_id, priority=5, dispatched=0.0, estimated=1e6, bw=2.0):
    return SchedulableTask(
        task_id=task_id,
        dispatched_at=dispatched,
        user_priority=priority,
        target_latency=1e7,
        estimated_time=estimated,
        est_avg_bw=bw,
    )


def _scheduler(**kwargs):
    return MoCAScheduler(DRAM_BW, SchedulerConfig(**kwargs))


class TestScoring:
    def test_score_combines_priority_and_slowdown(self):
        sched = _scheduler()
        task = _task("a", priority=3, dispatched=0.0, estimated=1e6)
        assert sched.score_task(task, now=2e6) == pytest.approx(3 + 2.0)

    def test_fresh_task_scores_priority(self):
        sched = _scheduler()
        task = _task("a", priority=7, dispatched=100.0)
        assert sched.score_task(task, now=100.0) == pytest.approx(7.0)

    def test_waiting_raises_score(self):
        sched = _scheduler()
        task = _task("a", priority=0, estimated=1e6)
        early = sched.score_task(task, now=1e5)
        late = sched.score_task(task, now=1e7)
        assert late > early

    def test_long_wait_overtakes_priority(self):
        sched = _scheduler()
        low = _task("low", priority=0, dispatched=0.0, estimated=1e6)
        high = _task("high", priority=11, dispatched=1.2e7, estimated=1e6)
        now = 1.2e7 + 1.0
        assert sched.score_task(low, now) > sched.score_task(high, now)

    def test_invalid_estimated_time(self):
        sched = _scheduler()
        task = _task("a")
        object.__setattr__(task, "estimated_time", 0.0) if False else None
        task.estimated_time = 0.0
        with pytest.raises(ValueError):
            sched.score_task(task, now=1.0)


class TestMemIntensive:
    def test_flagged_above_half_bandwidth(self):
        sched = _scheduler()
        assert sched.is_mem_intensive(_task("a", bw=9.0))

    def test_not_flagged_below(self):
        sched = _scheduler()
        assert not sched.is_mem_intensive(_task("a", bw=7.9))

    def test_fraction_configurable(self):
        sched = _scheduler(mem_intensive_fraction=0.25)
        assert sched.is_mem_intensive(_task("a", bw=5.0))


class TestSelection:
    def test_selects_highest_score_first(self):
        sched = _scheduler()
        queue = [_task("low", priority=1), _task("high", priority=9)]
        group = sched.select(0.0, queue, available_tiles=2)
        assert [t.task_id for t in group] == ["high"]

    def test_fills_available_slots(self):
        sched = _scheduler(tiles_per_task=2)
        queue = [_task(f"t{i}", priority=i) for i in range(6)]
        group = sched.select(0.0, queue, available_tiles=8)
        assert len(group) == 4

    def test_no_tiles_no_selection(self):
        sched = _scheduler(tiles_per_task=2)
        assert sched.select(0.0, [_task("a")], available_tiles=1) == []

    def test_empty_queue(self):
        assert _scheduler().select(0.0, [], available_tiles=8) == []

    def test_max_group_caps(self):
        sched = _scheduler(max_group=1)
        queue = [_task(f"t{i}") for i in range(4)]
        assert len(sched.select(0.0, queue, available_tiles=8)) == 1

    def test_score_threshold_filters(self):
        sched = _scheduler(score_threshold=5.0)
        queue = [_task("low", priority=1), _task("high", priority=9)]
        group = sched.select(0.0, queue, available_tiles=8)
        assert [t.task_id for t in group] == ["high"]

    def test_mem_intensive_paired_with_compute(self):
        sched = _scheduler(tiles_per_task=2)
        queue = [
            _task("hog", priority=11, bw=12.0),
            _task("mid_mem", priority=8, bw=10.0),
            _task("calm", priority=1, bw=1.0),
        ]
        group = sched.select(0.0, queue, available_tiles=8)
        ids = [t.task_id for t in group]
        # The memory hog is admitted first and must be immediately
        # followed by the non-memory-intensive partner, jumping the
        # higher-scored mid_mem.
        assert ids[0] == "hog"
        assert ids[1] == "calm"

    def test_no_partner_available_continues(self):
        sched = _scheduler(tiles_per_task=2)
        queue = [
            _task("hog1", priority=9, bw=12.0),
            _task("hog2", priority=8, bw=12.0),
        ]
        group = sched.select(0.0, queue, available_tiles=8)
        assert [t.task_id for t in group] == ["hog1", "hog2"]

    def test_deterministic_tie_break(self):
        sched = _scheduler()
        queue = [_task("b", priority=5), _task("a", priority=5)]
        group = sched.select(0.0, queue, available_tiles=8)
        first = [t.task_id for t in group]
        group2 = sched.select(0.0, list(reversed(queue)), available_tiles=8)
        assert first == [t.task_id for t in group2]

    def test_negative_tiles_raise(self):
        with pytest.raises(ValueError):
            _scheduler().select(0.0, [_task("a")], available_tiles=-1)

    def test_updates_task_fields(self):
        sched = _scheduler()
        task = _task("a", priority=3, bw=12.0)
        sched.select(1e6, [task], available_tiles=8)
        assert task.score > 0
        assert task.mem_intensive


class TestConfig:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            SchedulerConfig(mem_intensive_fraction=0.0)

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            SchedulerConfig(tiles_per_task=0)

    def test_invalid_max_group(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_group=0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            MoCAScheduler(0.0)
