"""Tests for repro.models.blocks (layer-block grouping)."""

import pytest
from hypothesis import given, strategies as st

from repro.models.blocks import (
    LayerBlock,
    blocks_cover_network,
    partition_into_blocks,
)
from repro.models.graph import Network
from repro.models.layers import ConvLayer, DenseLayer, LayerKind, PoolLayer
from repro.models.zoo import build_model, model_names


def _conv(name, ch=32):
    return ConvLayer(name, in_h=8, in_w=8, in_ch=ch, out_ch=ch, kernel=3,
                     padding=1)


def _net(layers):
    return Network(name="t", layers=tuple(layers), input_bytes=256)


class TestLayerBlock:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LayerBlock(index=0, layers=())

    def test_kind_compute_if_any_computes(self):
        block = LayerBlock(0, layers=(
            _conv("c"), PoolLayer("p", in_h=8, in_w=8, channels=32),
        ))
        assert block.kind is LayerKind.COMPUTE

    def test_kind_mem_if_all_mem(self):
        block = LayerBlock(0, layers=(
            PoolLayer("p", in_h=8, in_w=8, channels=32),
        ))
        assert block.kind is LayerKind.MEM

    def test_aggregates_are_sums(self):
        layers = (_conv("a"), _conv("b"))
        block = LayerBlock(0, layers=layers)
        assert block.macs == sum(l.macs for l in layers)
        assert block.total_mem_bytes == sum(l.total_mem_bytes for l in layers)
        assert block.total_load_bytes == sum(
            l.total_load_bytes for l in layers
        )

    def test_name_single(self):
        assert LayerBlock(0, layers=(_conv("solo"),)).name == "solo"

    def test_name_range(self):
        block = LayerBlock(0, layers=(_conv("a"), _conv("b")))
        assert block.name == "a..b"

    def test_io_bytes_are_endpoints(self):
        a, b = _conv("a"), _conv("b")
        block = LayerBlock(0, layers=(a, b))
        assert block.input_bytes == a.input_bytes
        assert block.output_bytes == b.output_bytes


class TestPartition:
    def test_covers_all_layers(self):
        net = _net([_conv(f"c{i}") for i in range(10)])
        blocks = partition_into_blocks(net)
        assert blocks_cover_network(blocks, net)

    def test_respects_max_layers(self):
        net = _net([_conv(f"c{i}") for i in range(10)])
        blocks = partition_into_blocks(net, max_layers_per_block=3)
        assert all(len(b.layers) <= 3 for b in blocks)

    def test_kind_flip_splits(self):
        net = _net([
            _conv("c1"),
            PoolLayer("p", in_h=8, in_w=8, channels=32),
            _conv("c2"),
        ])
        blocks = partition_into_blocks(net)
        assert len(blocks) == 3

    def test_intensity_jump_splits(self):
        net = _net([
            _conv("conv"),                      # high AI
            DenseLayer("fc", 4096, 4096),       # AI < 1
        ])
        blocks = partition_into_blocks(net, intensity_split_factor=4.0)
        assert len(blocks) == 2

    def test_similar_intensity_groups(self):
        net = _net([_conv("a"), _conv("b")])
        blocks = partition_into_blocks(net)
        assert len(blocks) == 1

    def test_indices_sequential(self):
        net = _net([_conv(f"c{i}") for i in range(13)])
        blocks = partition_into_blocks(net, max_layers_per_block=2)
        assert [b.index for b in blocks] == list(range(len(blocks)))

    def test_invalid_max_layers(self):
        with pytest.raises(ValueError):
            partition_into_blocks(_net([_conv("c")]), max_layers_per_block=0)

    def test_invalid_split_factor(self):
        with pytest.raises(ValueError):
            partition_into_blocks(_net([_conv("c")]),
                                  intensity_split_factor=0.5)

    @pytest.mark.parametrize("name", model_names())
    def test_zoo_networks_fully_covered(self, name):
        net = build_model(name)
        blocks = partition_into_blocks(net)
        assert blocks_cover_network(blocks, net)
        assert sum(b.macs for b in blocks) == net.total_macs

    @given(st.integers(min_value=1, max_value=9),
           st.integers(min_value=1, max_value=30))
    def test_property_cover_and_cap(self, cap, n_layers):
        net = _net([_conv(f"c{i}") for i in range(n_layers)])
        blocks = partition_into_blocks(net, max_layers_per_block=cap)
        assert blocks_cover_network(blocks, net)
        assert all(1 <= len(b.layers) <= cap for b in blocks)
