"""Tests for per-cell sweep supervision (ISSUE tentpole): retry
determinism, quarantine instead of abort, pool-crash recovery, cell
timeouts, and the old streaming path's BrokenProcessPool serial
fallback driven by the fault harness."""

import pytest

from repro.experiments.faults import FaultPlan
from repro.experiments.parallel import ParallelRunner, Supervision
from repro.experiments.results import SweepResults
from repro.experiments.runner import (
    POLICY_ORDER,
    ScenarioSpec,
    run_matrix,
)
from repro.sim.qos import QosLevel

SPEC = ScenarioSpec(
    workload_set="A", qos_level=QosLevel.MEDIUM, num_tasks=8,
    seeds=(1, 2),
)
#: 1 scenario x 4 policies x 2 seeds.
CELLS = len(POLICY_ORDER) * len(SPEC.seeds)

#: Fast deterministic backoff for tests.
FAST = dict(backoff_base=0.0)


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix([SPEC])


def _supervised(plan=None, workers=1, **kwargs):
    sup = Supervision(fault_plan=plan, **{**FAST, **kwargs})
    runner = ParallelRunner(workers=workers)
    acc = runner.run_supervised([SPEC], supervision=sup)
    return runner, acc


class TestSupervisionPolicy:
    def test_backoff_schedule(self):
        sup = Supervision(backoff_base=0.5, backoff_factor=2.0)
        assert [sup.backoff(a) for a in range(3)] == [0.5, 1.0, 2.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(cell_timeout=0.0),
            dict(cell_timeout=-1.0),
            dict(backoff_base=-0.1),
            dict(backoff_factor=0.0),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Supervision(**kwargs)


class TestSerialSupervision:
    def test_fault_free_identical_to_run_matrix(self, serial_matrix):
        _, acc = _supervised()
        assert acc.complete and not acc.degraded
        assert acc.matrix() == serial_matrix

    def test_transient_fault_retried_bit_identical(self, serial_matrix):
        """Retry determinism: a cell that failed transiently and was
        re-run yields exactly the result a clean run yields."""
        _, acc = _supervised(FaultPlan.parse("transient:cells=0,5"))
        assert acc.complete, acc.failures()
        assert acc.matrix() == serial_matrix

    def test_poison_cell_quarantined_not_raised(self):
        _, acc = _supervised(
            FaultPlan.parse("transient:cells=3:attempts=all"),
            max_retries=1,
        )
        assert not acc.complete and acc.degraded
        assert len(acc.cells()) == CELLS - 1
        (failure,) = acc.failures()
        assert failure.index == 3
        assert failure.kind == "error"
        assert failure.attempts == 2  # initial try + 1 retry
        assert "injected transient fault" in failure.message
        assert acc.missing_indices() == [3]

    def test_zero_retries_single_attempt(self):
        _, acc = _supervised(
            FaultPlan.parse("transient:cells=1"), max_retries=0
        )
        (failure,) = acc.failures()
        assert failure.attempts == 1

    def test_crash_plan_harmless_in_serial_mode(self, serial_matrix):
        """A pool-targeted crash/hang plan must not kill a serial
        run — the worker-only kinds are suppressed in-process."""
        _, acc = _supervised(
            FaultPlan.parse("crash:cells=0;hang:cells=1:seconds=3600")
        )
        assert acc.complete
        assert acc.matrix() == serial_matrix

    def test_resume_accumulator_skips_done_cells(self, serial_matrix):
        """The resume seam: cells already folded into the accumulator
        are not re-run."""
        runner = ParallelRunner(workers=1)
        first = runner.run_supervised(
            [SPEC],
            supervision=Supervision(
                fault_plan=FaultPlan.parse(
                    "transient:cells=2:attempts=all"
                ),
                max_retries=0,
                **FAST,
            ),
        )
        assert first.missing_indices() == [2]
        done_before = {c.index: c for c in first.cells()}
        seen = []
        acc = runner.run_supervised(
            [SPEC],
            indices=first.missing_indices(),
            acc=first,
            supervision=Supervision(**FAST),
            on_cell=lambda c: seen.append(c.index),
        )
        assert seen == [2]
        assert acc.complete
        assert acc.matrix() == serial_matrix
        for index, cell in done_before.items():
            assert acc.cells()[index] is cell  # untouched, not re-run


@pytest.mark.slow
class TestPoolSupervision:
    def test_worker_crash_recovered_bit_identical(self, serial_matrix):
        """An injected worker crash (BrokenProcessPool) is retried on
        a rebuilt pool; the finished sweep is bit-identical."""
        runner, acc = _supervised(
            FaultPlan.parse("crash:cells=2"), workers=2
        )
        if runner.last_mode != "parallel":
            pytest.skip("process pool unavailable")
        assert acc.complete, acc.failures()
        assert acc.matrix() == serial_matrix

    def test_poison_crash_quarantined_others_finish(self):
        """Graceful degradation: a cell that crashes its worker on
        every attempt is quarantined; every healthy cell completes."""
        runner, acc = _supervised(
            FaultPlan.parse("crash:cells=2:attempts=all"),
            workers=2, max_retries=1,
        )
        if runner.last_mode != "parallel":
            pytest.skip("process pool unavailable")
        assert acc.degraded
        assert len(acc.cells()) == CELLS - 1
        (failure,) = acc.failures()
        assert failure.index == 2
        assert failure.kind == "crash"

    def test_hung_cell_times_out_and_is_quarantined(self):
        runner, acc = _supervised(
            FaultPlan.parse("hang:cells=1:attempts=all:seconds=120"),
            workers=2, max_retries=0, cell_timeout=2.0,
        )
        if runner.last_mode != "parallel":
            pytest.skip("process pool unavailable")
        assert len(acc.cells()) == CELLS - 1
        (failure,) = acc.failures()
        assert failure.index == 1
        assert failure.kind == "timeout"
        assert "wall-clock timeout" in failure.message

    def test_transient_faults_in_workers_retried(self, serial_matrix):
        runner, acc = _supervised(
            FaultPlan.parse("transient:rate=0.5:seed=11"), workers=2
        )
        assert acc.complete, acc.failures()
        assert acc.matrix() == serial_matrix


@pytest.mark.slow
class TestBrokenPoolFallback:
    def test_iter_cells_crash_falls_back_serial_bit_identical(
        self, serial_matrix
    ):
        """ISSUE satellite: the streaming path's mid-sweep
        BrokenProcessPool serial fallback, driven deterministically by
        the fault harness — the pool dies, the remainder reruns
        in-process, and the aggregate stays bit-identical."""
        plan = FaultPlan.parse("crash:cells=2:attempts=all")
        runner = ParallelRunner(workers=2, fault_plan=plan)
        cells = list(runner.iter_cells([SPEC]))
        assert runner.last_mode == "serial"  # fallback engaged
        assert sorted(c.index for c in cells) == list(range(CELLS))
        acc = SweepResults([SPEC], list(POLICY_ORDER))
        for cell in cells:
            acc.add(cell)
        assert acc.matrix() == serial_matrix

    def test_fallback_cells_not_duplicated(self):
        plan = FaultPlan.parse("crash:cells=0:attempts=all")
        runner = ParallelRunner(workers=2, fault_plan=plan)
        indices = [c.index for c in runner.iter_cells([SPEC])]
        assert len(indices) == len(set(indices)) == CELLS
