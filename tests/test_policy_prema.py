"""Tests for the PREMA temporal-multiplexing baseline."""

import pytest

from repro.baselines.prema import PremaPolicy
from repro.sim.engine import Simulator, run_simulation
from repro.sim.job import Job


class TestTokens:
    def test_tokens_grow_with_wait(self, task_factory):
        policy = PremaPolicy()
        job = Job(task=task_factory(priority=5, dispatch=0.0))
        assert policy.tokens(job, 2000.0) > policy.tokens(job, 1000.0)

    def test_tokens_scale_with_priority(self, task_factory):
        policy = PremaPolicy()
        low = Job(task=task_factory(task_id="l", priority=0))
        high = Job(task=task_factory(task_id="h", priority=11))
        assert policy.tokens(high, 1e6) > policy.tokens(low, 1e6)

    def test_no_negative_tokens(self, task_factory):
        policy = PremaPolicy()
        job = Job(task=task_factory(dispatch=1e6))
        assert policy.tokens(job, 0.0) == 0.0


class TestScheduling:
    def test_one_job_at_a_time(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}") for i in range(4)]
        policy = PremaPolicy()
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert len(sim.running) == 1
        assert sim.running[0].tiles == soc.num_tiles

    def test_highest_token_first(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id="low", priority=0, dispatch=0.0),
            task_factory(task_id="high", priority=11, dispatch=0.0),
        ]
        policy = PremaPolicy()
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem)
        sim.now = 1000.0
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert sim.running[0].job_id == "high"

    def test_all_finish(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}", network=n, dispatch=i * 1e4)
            for i, n in enumerate(["kws", "alexnet", "squeezenet"])
        ]
        result = run_simulation(soc, tasks, PremaPolicy(), mem=mem)
        assert len(result.results) == 3

    def test_preemption_occurs_for_urgent_arrival(self, soc, mem,
                                                  task_factory):
        # A long low-priority job is overtaken by a high-priority one
        # that waits long enough to exceed the token threshold.
        tasks = [
            task_factory(task_id="long", network="yolov2", priority=0,
                         dispatch=0.0),
            task_factory(task_id="vip", network="kws", priority=11,
                         dispatch=1e5),
        ]
        result = run_simulation(soc, tasks, PremaPolicy(), mem=mem)
        long_result = result.result_for("long")
        vip = result.result_for("vip")
        assert long_result.preemptions >= 1
        assert vip.finished_at < long_result.finished_at

    def test_preemption_charges_overhead(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id="long", network="yolov2", priority=0),
            task_factory(task_id="vip", network="kws", priority=11,
                         dispatch=1e5),
        ]
        result = run_simulation(soc, tasks, PremaPolicy(), mem=mem)
        assert result.result_for("vip").stall_cycles > 0

    def test_serial_execution_no_contention(self, soc, mem, task_factory):
        # Temporal multiplexing: each job runs alone, so its runtime
        # (minus switch stalls) matches the isolated prediction.
        tasks = [
            task_factory(task_id=f"t{i}", network="kws",
                         dispatch=float(i))
            for i in range(2)
        ]
        result = run_simulation(soc, tasks, PremaPolicy(), mem=mem)
        for r in result.results:
            assert r.runtime - r.stall_cycles == pytest.approx(
                r.isolated_cycles, rel=0.01
            )


class TestConstruction:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PremaPolicy(preemption_threshold=0.5)

    def test_invalid_overhead(self):
        with pytest.raises(ValueError):
            PremaPolicy(preemption_overhead=-1)
