"""Tests for repro.accelerator.pipeline (decoupled access/execute)."""

import pytest

from repro.accelerator.moca_hw import MoCAHardwareEngine
from repro.accelerator.pipeline import DecoupledPipeline, simulate_layer
from repro.config import DEFAULT_SOC
from repro.core.latency import estimate_layer
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.layers import ConvLayer, DenseLayer
from repro.models.zoo import build_model

SOC = DEFAULT_SOC
MEM = MemoryHierarchy.from_soc(SOC)


def _conv(ch=64, hw=56):
    return ConvLayer("c", in_h=hw, in_w=hw, in_ch=ch, out_ch=ch, kernel=3,
                     padding=1)


class TestPipelineBasics:
    def test_positive_makespan(self):
        result = simulate_layer(_conv(), SOC)
        assert result.makespan > 0
        assert result.array_busy > 0
        assert result.dma_busy > 0

    def test_utilizations_bounded(self):
        result = simulate_layer(_conv(), SOC)
        assert 0 < result.dma_utilization <= 1.0
        assert 0 < result.array_utilization <= 1.0

    def test_makespan_at_least_each_resource(self):
        result = simulate_layer(_conv(), SOC)
        assert result.makespan >= result.array_busy
        assert result.makespan >= result.dma_busy

    def test_compute_bound_layer_array_dominated(self):
        # Large square conv: heavy reuse, compute dominates.
        result = simulate_layer(_conv(ch=128, hw=28), SOC)
        assert result.array_busy > result.dma_busy

    def test_memory_bound_layer_dma_dominated(self):
        fc = DenseLayer("fc", in_features=9216, out_features=4096)
        result = simulate_layer(fc, SOC)
        assert result.dma_busy > result.array_busy

    def test_invalid_dram_share(self):
        with pytest.raises(ValueError):
            DecoupledPipeline(SOC, dram_share_bytes_per_cycle=0.0)


class TestThrottling:
    def test_throttle_lengthens_memory_bound_layer(self):
        fc = DenseLayer("fc", in_features=9216, out_features=4096)
        free = simulate_layer(fc, SOC)
        engine = MoCAHardwareEngine()
        engine.configure(window=1000, threshold_load=125)  # 8 B/cycle
        throttled = simulate_layer(fc, SOC, engine=engine)
        assert throttled.makespan > free.makespan
        assert throttled.throttle_bubbles > 0

    def test_throttle_never_stalls_compute(self):
        # Array busy time is identical with and without throttling —
        # the engine gates only the memory path (decoupled execute).
        layer = _conv()
        free = simulate_layer(layer, SOC)
        engine = MoCAHardwareEngine()
        engine.configure(window=1000, threshold_load=63)  # ~4 B/cycle
        throttled = simulate_layer(layer, SOC, engine=engine)
        assert throttled.array_busy == pytest.approx(free.array_busy)

    def test_tighter_throttle_slower(self):
        fc = DenseLayer("fc", in_features=9216, out_features=4096)
        results = []
        for threshold in (250, 125, 63):  # 16, 8, 4 B/cycle
            engine = MoCAHardwareEngine()
            engine.configure(window=1000, threshold_load=threshold)
            results.append(simulate_layer(fc, SOC, engine=engine).makespan)
        assert results == sorted(results)

    def test_dram_share_acts_like_throttle(self):
        fc = DenseLayer("fc", in_features=9216, out_features=4096)
        full = simulate_layer(fc, SOC, dram_share_bytes_per_cycle=16.0)
        quarter = simulate_layer(fc, SOC, dram_share_bytes_per_cycle=4.0)
        assert quarter.makespan > full.makespan


class TestCrossValidation:
    """Instruction-level pipeline vs Algorithm 1 (single tile)."""

    @pytest.mark.parametrize("name", ["squeezenet", "alexnet", "resnet50"])
    def test_network_level_agreement(self, name):
        net = build_model(name)
        pipeline_total = 0.0
        analytic_total = 0.0
        for layer in net.layers:
            pipeline_total += simulate_layer(
                layer, SOC, dram_share_bytes_per_cycle=MEM.dram_bandwidth
            ).makespan
            analytic_total += estimate_layer(
                layer, SOC, MEM, num_tiles=1
            ).prediction
        ratio = pipeline_total / analytic_total
        # Different abstractions (per-instruction double buffering vs
        # the overlap_f closed form): they must agree within ~35 %.
        assert 0.65 < ratio < 1.35, ratio

    def test_compute_bound_layer_agreement(self):
        layer = _conv(ch=128, hw=28)
        pipe = simulate_layer(layer, SOC).makespan
        analytic = estimate_layer(layer, SOC, MEM, num_tiles=1).prediction
        assert pipe == pytest.approx(analytic, rel=0.35)
