"""Tests for the scenario registry and the stochastic workload knobs
(repro.scenarios + the WorkloadGenerator arrival processes)."""

import pickle

import pytest

from repro.config import DEFAULT_SOC
from repro.experiments.runner import run_matrix, run_scenario, standard_matrix
from repro.models.zoo import WORKLOAD_SETS, workload_set
from repro.scenarios import (
    REFERENCE_SCENARIOS,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    resolve_scenario,
    resolve_scenarios,
    sample_model_mix,
    scenario_names,
    temporary_scenario,
    unregister_scenario,
)
from repro.sim.qos import QosLevel
from repro.sim.tracefile import dump_tasks
from repro.sim.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def generator():
    return WorkloadGenerator(DEFAULT_SOC, workload_set("C"))


class TestRegistry:
    def test_reference_entries_present(self):
        assert len(REFERENCE_SCENARIOS) == 9
        for name in REFERENCE_SCENARIOS:
            assert name in scenario_names()

    def test_builtin_stochastic_entries_present(self):
        for name in ("bursty-mixed", "bursty-rush", "diurnal-light",
                     "diurnal-prod", "skewed-mix", "random-mix"):
            spec = get_scenario(name)
            assert spec.name == name
            assert spec.label == name

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="bursty-mixed"):
            get_scenario("no-such-scenario")

    def test_register_rejects_collision_and_bad_names(self):
        spec = ScenarioSpec(num_tasks=10, seeds=(1,))
        with temporary_scenario("tmp-collision", spec):
            with pytest.raises(ValueError, match="already registered"):
                register_scenario("tmp-collision", spec)
            register_scenario("tmp-collision", spec, overwrite=True)
        assert "tmp-collision" not in scenario_names()
        with pytest.raises(ValueError, match="kebab-case"):
            register_scenario("Bad Name!", spec)

    def test_unregister_removes_entry(self):
        spec = ScenarioSpec(num_tasks=10, seeds=(1,))
        register_scenario("tmp-unregister", spec)
        assert "tmp-unregister" in scenario_names()
        unregister_scenario("tmp-unregister")
        assert "tmp-unregister" not in scenario_names()
        unregister_scenario("tmp-unregister")  # idempotent

    def test_temporary_scenario_scopes_the_leak(self):
        """ISSUE satellite: ad-hoc registrations must not leak into
        later tests — the context manager removes the entry even when
        the body raises."""
        spec = ScenarioSpec(num_tasks=10, seeds=(1,))
        before = scenario_names()
        with temporary_scenario("tmp-scoped", spec) as named:
            assert named.name == "tmp-scoped"
            assert get_scenario("tmp-scoped") == named
        assert scenario_names() == before
        with pytest.raises(RuntimeError, match="boom"):
            with temporary_scenario("tmp-scoped", spec):
                raise RuntimeError("boom")
        assert scenario_names() == before

    def test_temporary_scenario_restores_overwritten_entry(self):
        spec = ScenarioSpec(num_tasks=10, seeds=(1,))
        other = ScenarioSpec(num_tasks=20, seeds=(2,))
        with temporary_scenario("tmp-nest", spec):
            original = get_scenario("tmp-nest")
            with pytest.raises(ValueError, match="already registered"):
                with temporary_scenario("tmp-nest", other):
                    pass  # pragma: no cover
            with temporary_scenario("tmp-nest", other, overwrite=True):
                assert get_scenario("tmp-nest").num_tasks == 20
            assert get_scenario("tmp-nest") == original
        assert "tmp-nest" not in scenario_names()

    def test_resolve_mixed_names_and_specs(self):
        spec = ScenarioSpec(num_tasks=10, seeds=(1,))
        resolved = resolve_scenarios(["bursty-mixed", spec])
        assert resolved[0] is get_scenario("bursty-mixed")
        assert resolved[1] is spec
        with pytest.raises(TypeError):
            resolve_scenario(42)

    def test_resolve_accepts_bare_name_and_spec(self):
        assert resolve_scenarios("bursty-mixed") == [
            get_scenario("bursty-mixed")
        ]
        spec = ScenarioSpec(num_tasks=10, seeds=(1,))
        assert resolve_scenarios(spec) == [spec]

    def test_standard_matrix_comes_from_registry_unlabelled(self):
        specs = standard_matrix(num_tasks=30, seeds=(1,))
        assert len(specs) == 9
        assert [s.label for s in specs] == [
            f"Workload-{w}/{q.value}"
            for w in ("A", "B", "C")
            for q in (QosLevel.HARD, QosLevel.MEDIUM, QosLevel.LIGHT)
        ]
        for spec, name in zip(specs, REFERENCE_SCENARIOS):
            ref = get_scenario(name)
            assert (spec.workload_set, spec.qos_level) == (
                ref.workload_set, ref.qos_level
            )
            assert spec.name is None

    def test_spec_defaults_mirror_workload_config(self):
        """The stochastic knobs exist on both ScenarioSpec and
        WorkloadConfig; their defaults must stay identical (the spec
        passes every field explicitly, so a divergence would silently
        change registry scenarios)."""
        import dataclasses

        from repro.sim.workload import WorkloadConfig

        spec_defaults = {
            f.name: f.default for f in dataclasses.fields(ScenarioSpec)
        }
        for f in dataclasses.fields(WorkloadConfig):
            if f.name in ("reference_tiles", "seed"):
                continue  # not spec knobs (seed comes from spec.seeds)
            if f.name in ("num_tasks", "load_factor"):
                continue  # spec intentionally uses the paper's matrix values
            assert spec_defaults[f.name] == f.default, f.name

    def test_spec_fails_fast_on_unknown_mix_models_and_bad_traces(self):
        import json

        from repro.sim.tracefile import FORMAT_VERSION

        with pytest.raises(ValueError, match="resnet5"):
            ScenarioSpec(model_mix=(("resnet5", 1.0),))
        with pytest.raises(ValueError, match="scenario"):
            ScenarioSpec(arrival="trace", trace_text="{not json")
        empty = json.dumps({"version": FORMAT_VERSION, "tasks": []})
        with pytest.raises(ValueError, match="no dispatch cycles"):
            ScenarioSpec(arrival="trace", trace_text=empty)

    def test_duplicate_labels_rejected(self):
        spec = ScenarioSpec(workload_set="A", num_tasks=8, seeds=(1,))
        with pytest.raises(ValueError, match="duplicate scenario label"):
            run_matrix([spec, spec])
        from repro.experiments.parallel import ParallelRunner

        with pytest.raises(ValueError, match="duplicate scenario label"):
            ParallelRunner(workers=2).run_matrix(["skewed-mix", "skewed-mix"])

    def test_builtin_specs_are_picklable(self):
        """Cells built from registry specs must survive the process
        boundary of the parallel executor."""
        for name in scenario_names():
            spec = get_scenario(name)
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestSampleModelMix:
    def test_deterministic_and_normalized(self):
        a = sample_model_mix(7, set_name="C", size=3)
        b = sample_model_mix(7, set_name="C", size=3)
        assert a == b
        assert abs(sum(w for _, w in a) - 1.0) < 1e-9
        names = [n for n, _ in a]
        assert len(set(names)) == 3
        assert set(names) <= set(WORKLOAD_SETS["C"])

    def test_different_seeds_differ(self):
        assert sample_model_mix(1) != sample_model_mix(2)

    def test_bad_inputs(self):
        with pytest.raises(KeyError):
            sample_model_mix(1, set_name="Z")
        with pytest.raises(ValueError):
            sample_model_mix(1, set_name="A", size=99)


class TestArrivalProcesses:
    @pytest.mark.parametrize("name", ["bursty-mixed", "diurnal-light"])
    def test_stochastic_arrivals_valid_and_reproducible(
        self, generator, name
    ):
        from dataclasses import replace

        spec = get_scenario(name)
        cfg = replace(spec.workload_config(seed=5), num_tasks=40)
        gen = WorkloadGenerator(DEFAULT_SOC, spec.networks())
        a = gen.generate(cfg)
        b = gen.generate(cfg)
        assert [(t.task_id, t.dispatch_cycle) for t in a] == [
            (t.task_id, t.dispatch_cycle) for t in b
        ]
        dispatches = [t.dispatch_cycle for t in a]
        assert dispatches == sorted(dispatches)
        assert all(d >= 0 for d in dispatches)
        assert len(a) == 40

    def test_bursty_clusters_more_than_uniform(self, generator):
        """Bursty arrivals concentrate: most inter-arrival gaps are
        tiny relative to the mean (median/mean collapses), while
        uniform arrivals keep the two comparable."""
        def gap_skew(arrival, **kw):
            cfg = ScenarioSpec(
                workload_set="C", num_tasks=120, seeds=(3,),
                arrival=arrival, **kw,
            ).workload_config(seed=3)
            d = [t.dispatch_cycle for t in generator.generate(cfg)]
            gaps = sorted(b - a for a, b in zip(d, d[1:]))
            mean = sum(gaps) / len(gaps)
            median = gaps[len(gaps) // 2]
            return median / mean

        uniform = gap_skew("uniform")
        bursty = gap_skew("bursty", burst_count=3, burst_spread=0.01)
        assert bursty < 0.5 * uniform

    def test_diurnal_depth_zero_matches_rate_shape(self, generator):
        cfg = ScenarioSpec(
            workload_set="A", num_tasks=30, seeds=(2,),
            arrival="diurnal", diurnal_depth=0.0,
        ).workload_config(seed=2)
        tasks = generator.generate(cfg)
        assert len(tasks) == 30

    def test_trace_replay_reuses_dispatch_cycles(self, generator):
        base = generator.generate(
            ScenarioSpec(
                workload_set="C", num_tasks=20, seeds=(4,)
            ).workload_config(seed=4)
        )
        trace = dump_tasks(base)
        cfg = ScenarioSpec(
            workload_set="C", num_tasks=20, seeds=(9,),
            arrival="trace", trace_text=trace,
        ).workload_config(seed=9)
        replayed = generator.generate(cfg)
        assert sorted(t.dispatch_cycle for t in replayed) == sorted(
            t.dispatch_cycle for t in base
        )

    def test_trace_replay_cycles_past_trace_end(self, generator):
        base = generator.generate(
            ScenarioSpec(
                workload_set="C", num_tasks=5, seeds=(4,)
            ).workload_config(seed=4)
        )
        trace = dump_tasks(base)
        cfg = ScenarioSpec(
            workload_set="C", num_tasks=12, seeds=(9,),
            arrival="trace", trace_text=trace,
        ).workload_config(seed=9)
        replayed = generator.generate(cfg)
        assert len(replayed) == 12
        assert max(t.dispatch_cycle for t in replayed) > max(
            t.dispatch_cycle for t in base
        )

    def test_trace_replay_lap_offset_uses_span_not_absolute_end(
        self, generator
    ):
        """A trace whose cycles start far from 0 (a tail slice of a
        longer capture) must not insert its start offset as idle time
        between laps."""
        import json

        from repro.sim.tracefile import FORMAT_VERSION

        start = 1_000_000.0
        cycles = [start, start + 100.0, start + 500.0]
        trace = json.dumps({
            "version": FORMAT_VERSION,
            "tasks": [
                {"task_id": f"t{i}", "network": "kws",
                 "dispatch_cycle": c, "priority": 5,
                 "qos_target_cycles": 1.0}
                for i, c in enumerate(cycles)
            ],
        })
        cfg = ScenarioSpec(
            workload_set="C", num_tasks=6, seeds=(1,),
            arrival="trace", trace_text=trace,
        ).workload_config(seed=1)
        tasks = generator.generate(cfg)
        dispatches = sorted(t.dispatch_cycle for t in tasks)
        span = 500.0 + 500.0 / 2  # extent + mean inter-arrival gap
        assert dispatches[:3] == cycles
        assert dispatches[3:] == [c + span for c in cycles]

    def test_explicit_arrival_window_bounds_uniform(self, generator):
        cfg = ScenarioSpec(
            workload_set="A", num_tasks=25, seeds=(1,),
            arrival_window=1000.0,
        ).workload_config(seed=1)
        tasks = generator.generate(cfg)
        assert all(0 <= t.dispatch_cycle <= 1000.0 for t in tasks)


class TestModelMixAndPriorities:
    def test_mix_restricts_pool(self, generator):
        cfg = ScenarioSpec(
            workload_set="C", num_tasks=60, seeds=(1,),
            model_mix=(("kws", 0.7), ("alexnet", 0.3)),
        ).workload_config(seed=1)
        tasks = generator.generate(cfg)
        assert {t.network_name for t in tasks} <= {"kws", "alexnet"}

    def test_mix_weights_shift_frequencies(self, generator):
        cfg = ScenarioSpec(
            workload_set="C", num_tasks=300, seeds=(1,),
            model_mix=(("kws", 0.9), ("alexnet", 0.1)),
        ).workload_config(seed=1)
        tasks = generator.generate(cfg)
        kws = sum(1 for t in tasks if t.network_name == "kws")
        assert kws > 0.7 * len(tasks)

    def test_mix_name_not_in_generator_pool_raises(self):
        gen = WorkloadGenerator(DEFAULT_SOC, workload_set("A"))
        cfg = ScenarioSpec(
            workload_set="A", num_tasks=10, seeds=(1,),
            model_mix=(("resnet50", 1.0),),
        ).workload_config(seed=1)
        with pytest.raises(ValueError, match="resnet50"):
            gen.generate(cfg)

    def test_priority_weights_override(self, generator):
        high_only = (0.0,) * 9 + (1.0, 1.0, 1.0)
        cfg = ScenarioSpec(
            workload_set="C", num_tasks=50, seeds=(1,),
            priority_weights=high_only,
        ).workload_config(seed=1)
        tasks = generator.generate(cfg)
        assert all(t.priority >= 9 for t in tasks)


class TestRegistryExecution:
    def test_run_scenario_accepts_name(self):
        from dataclasses import replace

        spec = replace(
            get_scenario("skewed-mix"), num_tasks=8, seeds=(1,)
        )
        with temporary_scenario("tmp-tiny", spec):
            by_name = run_scenario("tmp-tiny")
            by_spec = run_scenario(get_scenario("tmp-tiny"))
            assert set(by_name) == {"prema", "static", "planaria", "moca"}
            for policy in by_name:
                assert (
                    by_name[policy].per_seed == by_spec[policy].per_seed
                )
        assert "tmp-tiny" not in scenario_names()

    def test_run_matrix_mixes_names_and_specs(self):
        from dataclasses import replace

        spec = replace(
            get_scenario("bursty-mixed"), num_tasks=8, seeds=(1,)
        )
        anon = ScenarioSpec(workload_set="A", num_tasks=8, seeds=(1,))
        matrix = run_matrix(
            [replace(spec, name="tmp-bursty"), anon]
        )
        assert set(matrix) == {"tmp-bursty", "Workload-A/QoS-M"}
