"""Cross-layer tests: the runtime's decisions drive the HW engine.

Algorithm 2's ``ConfigureHW(window, threshold_load)`` output must be a
valid configuration for the Section III-B hardware FSM, and the FSM
must then enforce the request rate the decision encodes — tying the
analytical model to the cycle-level hardware behaviour.
"""

import pytest

from repro.accelerator.dma import MEM_REQUEST_BYTES
from repro.accelerator.moca_hw import MoCAHardwareEngine
from repro.config import DEFAULT_SOC
from repro.core.latency import build_network_cost
from repro.core.runtime import MoCARuntime
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model

SOC = DEFAULT_SOC
MEM = MemoryHierarchy.from_soc(SOC)


def _contended_decision():
    """Produce a throttled decision by saturating the scoreboard."""
    runtime = MoCARuntime(SOC, MEM)
    cost = build_network_cost(build_model("alexnet"), SOC, MEM)
    block = max(cost.blocks, key=lambda b: b.from_dram_bytes)
    for i in range(3):
        runtime.update_app(f"bg{i}", block, 2, 5, 1e6, 1e7)
    decision = runtime.update_app("victim", block, 2, 5, 1e6, 1e7)
    assert decision.contention
    return decision


class TestApplyTo:
    def test_decision_programs_engine(self):
        decision = _contended_decision()
        engine = MoCAHardwareEngine()
        decision.apply_to(engine)
        assert engine.enabled
        assert engine.window == decision.window
        assert engine.thresholder.threshold_load == decision.threshold_load

    def test_unthrottled_decision_disables_engine(self):
        runtime = MoCARuntime(SOC, MEM)
        cost = build_network_cost(build_model("kws"), SOC, MEM)
        decision = runtime.update_app("solo", cost.blocks[0], 2, 5, 1e6, 1e7)
        engine = MoCAHardwareEngine()
        engine.configure(100, 10)  # previously throttled
        decision.apply_to(engine)
        assert not engine.enabled

    def test_engine_rate_matches_decision(self):
        decision = _contended_decision()
        engine = MoCAHardwareEngine()
        decision.apply_to(engine)
        assert engine.allowed_rate() == pytest.approx(
            decision.throttle_rate_requests_per_cycle
        )

    def test_fsm_enforces_decided_rate(self):
        """Run the FSM flat out: the achieved request rate must match
        the decision's configured rate.  The real window spans millions
        of cycles, so the check uses a rate-preserving rescale (same
        threshold/window ratio at a testable window length).
        """
        decision = _contended_decision()
        allowed = decision.throttle_rate_requests_per_cycle
        window = 1000
        threshold = max(1, round(allowed * window))
        engine = MoCAHardwareEngine()
        engine.configure(window=window, threshold_load=threshold)
        horizon = window * 20
        issued = 0
        for _ in range(horizon):
            if engine.try_issue():
                issued += 1
            engine.step()
        achieved = issued / horizon
        assert achieved <= (threshold / window) * 1.05
        assert achieved >= (threshold / window) * 0.95

    def test_decided_byte_rate_is_plausible(self):
        """The HW request-rate budget covers the block's *total* L2
        traffic over its predicted duration — at least the DRAM-side
        allocation the runtime granted."""
        decision = _contended_decision()
        byte_rate = (
            decision.throttle_rate_requests_per_cycle * MEM_REQUEST_BYTES
        )
        assert byte_rate >= decision.bw_rate * 0.5
