"""Tests for repro.models.layers (shape accounting)."""

import pytest

from repro.config import ACC_BYTES
from repro.models.layers import (
    ConcatLayer,
    ConvLayer,
    DenseLayer,
    LayerError,
    LayerKind,
    PoolLayer,
    ResidualAddLayer,
    ceil_div,
    conv_out_dim,
    effective_pe_utilization,
    geomean,
    is_depthwise,
    layer_summary,
    macs_to_flops,
    pretty_bytes,
)


class TestConvOutDim:
    def test_basic(self):
        assert conv_out_dim(224, 3, 1, 1) == 224

    def test_stride(self):
        assert conv_out_dim(224, 7, 2, 3) == 112

    def test_no_padding(self):
        assert conv_out_dim(227, 11, 4, 0) == 55

    def test_window_too_large_raises(self):
        with pytest.raises(LayerError):
            conv_out_dim(2, 5, 1, 0)


class TestConvLayer:
    def test_output_dims(self):
        conv = ConvLayer("c", in_h=224, in_w=224, in_ch=3, out_ch=64,
                         kernel=7, stride=2, padding=3)
        assert conv.out_h == 112
        assert conv.out_w == 112

    def test_macs(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=16,
                         kernel=3, padding=1)
        assert conv.macs == 8 * 8 * 16 * 3 * 3 * 4

    def test_weight_bytes(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=16,
                         kernel=3, padding=1)
        assert conv.weight_bytes == 3 * 3 * 4 * 16

    def test_grouped_macs_halved(self):
        full = ConvLayer("f", in_h=8, in_w=8, in_ch=4, out_ch=16,
                         kernel=3, padding=1)
        grouped = ConvLayer("g", in_h=8, in_w=8, in_ch=4, out_ch=16,
                            kernel=3, padding=1, groups=2)
        assert grouped.macs == full.macs // 2
        assert grouped.weight_bytes == full.weight_bytes // 2

    def test_bias_bytes(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=16,
                         kernel=1)
        assert conv.bias_bytes == 16 * ACC_BYTES

    def test_no_bias(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=16,
                         kernel=1, has_bias=False)
        assert conv.bias_bytes == 0

    def test_kind_is_compute(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=4, kernel=1)
        assert conv.kind is LayerKind.COMPUTE

    def test_total_mem_accounting(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=4, kernel=1)
        expected = (conv.weight_bytes + conv.input_bytes + conv.bias_bytes
                    + conv.output_bytes)
        assert conv.total_mem_bytes == expected

    def test_arithmetic_intensity_positive(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=4, kernel=3,
                         padding=1)
        assert conv.arithmetic_intensity > 0

    def test_channels_not_divisible_by_groups(self):
        with pytest.raises(LayerError):
            ConvLayer("c", in_h=8, in_w=8, in_ch=3, out_ch=4, kernel=1,
                      groups=2)

    def test_bad_window_raises_at_build(self):
        with pytest.raises(LayerError):
            ConvLayer("c", in_h=2, in_w=2, in_ch=4, out_ch=4, kernel=5)

    @pytest.mark.parametrize("field", ["in_h", "in_w", "in_ch", "out_ch",
                                       "kernel", "stride"])
    def test_nonpositive_dims_raise(self, field):
        kwargs = dict(in_h=8, in_w=8, in_ch=4, out_ch=4, kernel=1, stride=1)
        kwargs[field] = 0
        with pytest.raises(LayerError):
            ConvLayer("c", **kwargs)

    def test_negative_padding_raises(self):
        with pytest.raises(LayerError):
            ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=4, kernel=1,
                      padding=-1)


class TestDenseLayer:
    def test_macs(self):
        fc = DenseLayer("fc", in_features=100, out_features=10)
        assert fc.macs == 1000

    def test_weight_bytes(self):
        fc = DenseLayer("fc", in_features=100, out_features=10)
        assert fc.weight_bytes == 1000

    def test_io_bytes(self):
        fc = DenseLayer("fc", in_features=100, out_features=10)
        assert fc.input_bytes == 100
        assert fc.output_bytes == 10

    def test_kind(self):
        assert DenseLayer("fc", 4, 4).kind is LayerKind.COMPUTE

    def test_low_arithmetic_intensity(self):
        # FC layers read each weight once: AI < 1 MAC/byte.
        fc = DenseLayer("fc", in_features=4096, out_features=4096)
        assert fc.arithmetic_intensity < 1.0

    def test_invalid_features(self):
        with pytest.raises(LayerError):
            DenseLayer("fc", in_features=0, out_features=10)


class TestPoolLayer:
    def test_out_dims(self):
        pool = PoolLayer("p", in_h=8, in_w=8, channels=16, kernel=2, stride=2)
        assert pool.out_h == 4
        assert pool.out_w == 4

    def test_global_pool(self):
        pool = PoolLayer("p", in_h=7, in_w=7, channels=512, global_pool=True)
        assert pool.out_h == 1
        assert pool.out_w == 1
        assert pool.output_bytes == 512

    def test_is_mem_layer(self):
        pool = PoolLayer("p", in_h=8, in_w=8, channels=16)
        assert pool.kind is LayerKind.MEM
        assert pool.macs == 0
        assert pool.weight_bytes == 0

    def test_invalid_dims(self):
        with pytest.raises(LayerError):
            PoolLayer("p", in_h=0, in_w=8, channels=16)


class TestResidualAddLayer:
    def test_two_operands(self):
        add = ResidualAddLayer("a", h=4, w=4, channels=8)
        assert add.input_bytes == 2 * add.tensor_bytes

    def test_skip_operand(self):
        add = ResidualAddLayer("a", h=4, w=4, channels=8)
        assert add.skip_operand_bytes == 4 * 4 * 8

    def test_is_mem_layer(self):
        add = ResidualAddLayer("a", h=4, w=4, channels=8)
        assert add.kind is LayerKind.MEM
        assert add.macs == 0

    def test_invalid(self):
        with pytest.raises(LayerError):
            ResidualAddLayer("a", h=4, w=-1, channels=8)


class TestConcatLayer:
    def test_channel_sum(self):
        cat = ConcatLayer("c", h=4, w=4, in_channels=(16, 32))
        assert cat.out_channels == 48

    def test_traffic(self):
        cat = ConcatLayer("c", h=4, w=4, in_channels=(16, 32))
        assert cat.input_bytes == 4 * 4 * 48
        assert cat.output_bytes == 4 * 4 * 48

    def test_is_mem(self):
        cat = ConcatLayer("c", h=4, w=4, in_channels=(16,))
        assert cat.kind is LayerKind.MEM

    def test_empty_channels_raise(self):
        with pytest.raises(LayerError):
            ConcatLayer("c", h=4, w=4, in_channels=())

    def test_nonpositive_channel_raises(self):
        with pytest.raises(LayerError):
            ConcatLayer("c", h=4, w=4, in_channels=(16, 0))


class TestUtilization:
    def test_full_channels_full_utilization(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=64, out_ch=64, kernel=3,
                         padding=1)
        assert effective_pe_utilization(conv, 16, 16) == pytest.approx(1.0)

    def test_thin_out_channels_reduce_utilization(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=64, out_ch=4, kernel=3,
                         padding=1)
        assert effective_pe_utilization(conv, 16, 16) == pytest.approx(0.25)

    def test_first_layer_recovers_via_im2col(self):
        conv = ConvLayer("c", in_h=224, in_w=224, in_ch=3, out_ch=64,
                         kernel=7, stride=2, padding=3)
        # 7*7*3 = 147 >= 16 rows: full row utilization.
        assert effective_pe_utilization(conv, 16, 16) == pytest.approx(1.0)

    def test_depthwise_low_utilization(self):
        dw = ConvLayer("dw", in_h=8, in_w=8, in_ch=64, out_ch=64, kernel=3,
                       padding=1, groups=64)
        assert is_depthwise(dw)
        assert effective_pe_utilization(dw, 16, 16) < 0.5

    def test_mem_layer_zero(self):
        pool = PoolLayer("p", in_h=8, in_w=8, channels=16)
        assert effective_pe_utilization(pool, 16, 16) == 0.0

    def test_never_zero_for_compute(self):
        tiny = DenseLayer("fc", in_features=1, out_features=1)
        assert effective_pe_utilization(tiny, 16, 16) > 0


class TestHelpers:
    def test_macs_to_flops(self):
        assert macs_to_flops(10) == 20

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 3) == 0

    def test_ceil_div_invalid(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_pretty_bytes(self):
        assert pretty_bytes(512) == "512 B"
        assert "KiB" in pretty_bytes(2048)
        assert "MiB" in pretty_bytes(3 * 1024**2)
        assert "GiB" in pretty_bytes(5 * 1024**3)

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_layer_summary_contains_name_and_kind(self):
        conv = ConvLayer("myconv", in_h=8, in_w=8, in_ch=4, out_ch=4,
                         kernel=1)
        text = layer_summary(conv)
        assert "myconv" in text
        assert "compute" in text

    def test_is_depthwise_false_for_standard(self):
        conv = ConvLayer("c", in_h=8, in_w=8, in_ch=4, out_ch=4, kernel=1)
        assert not is_depthwise(conv)
