"""Tests for repro.core.runtime (Algorithm 2)."""

import pytest

from repro.config import DEFAULT_SOC
from repro.core.latency import build_network_cost
from repro.core.runtime import MoCARuntime, RuntimeDecision
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model

SOC = DEFAULT_SOC
MEM = MemoryHierarchy.from_soc(SOC)


def _runtime(**kwargs):
    return MoCARuntime(SOC, MEM, **kwargs)


def _alexnet_fc_block():
    """The most bandwidth-hungry block in the zoo (AlexNet FC layers)."""
    cost = build_network_cost(build_model("alexnet"), SOC, MEM)
    return max(cost.blocks, key=lambda b: b.from_dram_bytes)


def _light_block():
    """A compute-bound block with low bandwidth demand (KWS convs).

    Note short MEM blocks have *high* instantaneous demand (they are
    pure bandwidth), so "light" means high arithmetic intensity here.
    """
    cost = build_network_cost(build_model("kws"), SOC, MEM)
    return min(
        (b for b in cost.blocks if b.compute_terms),
        key=lambda b: b.bw_demand(
            2, MEM.dram_bandwidth, MEM.l2_bandwidth, SOC.overlap_f
        ),
    )


class TestDynamicScore:
    def test_score_is_priority_plus_urgency(self):
        rt = _runtime()
        score = rt.dynamic_score(5.0, remain_prediction=100.0, slack=200.0)
        assert score == pytest.approx(5.5)

    def test_urgency_grows_as_slack_shrinks(self):
        rt = _runtime()
        relaxed = rt.dynamic_score(0.0, 100.0, 1000.0)
        urgent = rt.dynamic_score(0.0, 100.0, 50.0)
        assert urgent > relaxed

    def test_exhausted_slack_saturates(self):
        rt = _runtime(urgency_cap=50.0)
        assert rt.dynamic_score(3.0, 100.0, 0.0) == pytest.approx(53.0)
        assert rt.dynamic_score(3.0, 100.0, -10.0) == pytest.approx(53.0)

    def test_urgency_capped(self):
        rt = _runtime(urgency_cap=10.0)
        assert rt.dynamic_score(0.0, 1e12, 1.0) == pytest.approx(10.0)

    def test_negative_remain_raises(self):
        with pytest.raises(ValueError):
            _runtime().dynamic_score(0.0, -1.0, 100.0)


class TestNoContention:
    def test_single_app_never_throttled(self):
        rt = _runtime()
        decision = rt.update_app(
            "a", _alexnet_fc_block(), num_tiles=2, user_priority=5,
            remain_prediction=1e6, slack=1e7,
        )
        assert not decision.contention
        assert decision.window == 0
        assert decision.threshold_load == 0
        assert decision.throttle_rate_requests_per_cycle == float("inf")

    def test_light_corunners_no_throttle(self):
        rt = _runtime()
        rt.update_app("a", _light_block(), 2, 5, 1e6, 1e7)
        decision = rt.update_app("b", _light_block(), 2, 5, 1e6, 1e7)
        assert not decision.contention

    def test_publishes_to_scoreboard(self):
        rt = _runtime()
        rt.update_app("a", _light_block(), 2, 5, 1e6, 1e7)
        assert "a" in rt.scoreboard
        assert rt.scoreboard.mem_bw("a") > 0


class TestContention:
    def _saturate(self, rt, n_apps=3):
        """Publish several heavy co-runners to exceed DRAM bandwidth."""
        block = _alexnet_fc_block()
        for i in range(n_apps):
            rt.update_app(f"bg{i}", block, 2, 5, 1e6, 1e7)
        return block

    def test_overflow_detected(self):
        rt = _runtime()
        block = self._saturate(rt)
        decision = rt.update_app("victim", block, 2, 5, 1e6, 1e7)
        assert decision.contention
        assert decision.window > 0
        assert decision.threshold_load > 0

    def test_throttled_rate_below_demand(self):
        rt = _runtime()
        block = self._saturate(rt)
        demand = block.bw_demand(2, MEM.dram_bandwidth, MEM.l2_bandwidth,
                                 SOC.overlap_f)
        decision = rt.update_app("victim", block, 2, 5, 1e6, 1e7)
        assert decision.bw_rate < demand

    def test_rate_floor_respected(self):
        rt = _runtime(min_bw_rate=0.5)
        block = self._saturate(rt, n_apps=6)
        decision = rt.update_app("victim", block, 2, 0, 1e6, 1e12)
        assert decision.bw_rate >= 0.5

    def test_high_priority_sheds_less(self):
        rt_low = _runtime()
        block = self._saturate(rt_low)
        low = rt_low.update_app("victim", block, 2, 0, 1e6, 1e12)

        rt_high = _runtime()
        self._saturate(rt_high)
        high = rt_high.update_app("victim", block, 2, 11, 1e6, 1e4)
        assert high.bw_rate >= low.bw_rate

    def test_throttled_prediction_longer(self):
        rt = _runtime()
        block = self._saturate(rt)
        unthrottled = block.predict(2, MEM.dram_bandwidth, MEM.l2_bandwidth,
                                    SOC.overlap_f)
        decision = rt.update_app("victim", block, 2, 5, 1e6, 1e7)
        assert decision.prediction >= unthrottled

    def test_hw_config_encodes_rate(self):
        rt = _runtime()
        block = self._saturate(rt)
        decision = rt.update_app("victim", block, 2, 5, 1e6, 1e7)
        # threshold/window give a finite request rate.
        rate = decision.throttle_rate_requests_per_cycle
        assert 0 < rate < float("inf")

    def test_retire_removes_from_scoreboard(self):
        rt = _runtime()
        rt.update_app("a", _light_block(), 2, 5, 1e6, 1e7)
        rt.retire_app("a")
        assert "a" not in rt.scoreboard

    def test_retiring_heavy_app_clears_contention(self):
        rt = _runtime()
        block = self._saturate(rt, n_apps=3)
        first = rt.update_app("victim", block, 2, 5, 1e6, 1e7)
        assert first.contention
        for i in range(3):
            rt.retire_app(f"bg{i}")
        second = rt.update_app("victim", block, 2, 5, 1e6, 1e7)
        assert not second.contention

    def test_reset_clears_everything(self):
        rt = _runtime()
        self._saturate(rt)
        rt.reset()
        assert len(rt.scoreboard) == 0

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            _runtime().update_app("a", _light_block(), 0, 5, 1e6, 1e7)


class TestConstruction:
    def test_invalid_urgency_cap(self):
        with pytest.raises(ValueError):
            MoCARuntime(SOC, MEM, urgency_cap=0)

    def test_invalid_min_rate(self):
        with pytest.raises(ValueError):
            MoCARuntime(SOC, MEM, min_bw_rate=0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            MoCARuntime(SOC, MEM, overflow_tolerance=-0.1)

    def test_decision_is_frozen(self):
        decision = RuntimeDecision(
            app_id="a", contention=False, bw_rate=1.0, prediction=1.0,
            score=1.0, window=0, threshold_load=0,
        )
        with pytest.raises(Exception):
            decision.bw_rate = 2.0
