"""Tests for the deterministic fault-injection harness (ISSUE
tentpole): plan parsing, rule selection/attempt gating determinism,
process-scoped activation, and the corruption helper."""

import pytest

from repro.experiments.faults import (
    ALL_ATTEMPTS,
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    clear_plan,
    corrupt_bytes,
    install_plan,
    installed_plan,
    maybe_inject,
)
from repro.sim.engine import SimulationError


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no plan installed."""
    clear_plan()
    yield
    clear_plan()


class TestFaultRule:
    def test_explicit_cells_select_exactly(self):
        rule = FaultRule(kind="transient", cells=(2, 5))
        assert [i for i in range(8) if rule.selects(i)] == [2, 5]

    def test_rate_selection_deterministic(self):
        rule = FaultRule(kind="transient", rate=0.5, seed=7)
        picks = [rule.selects(i) for i in range(200)]
        assert picks == [rule.selects(i) for i in range(200)]
        # A 0.5 rate over 200 cells hits a plausible fraction of them.
        assert 50 < sum(picks) < 150

    def test_rate_selection_seed_sensitive(self):
        a = FaultRule(kind="transient", rate=0.5, seed=1)
        b = FaultRule(kind="transient", rate=0.5, seed=2)
        assert [a.selects(i) for i in range(100)] != [
            b.selects(i) for i in range(100)
        ]

    def test_attempt_gating(self):
        first_only = FaultRule(kind="transient", cells=(0,), attempts=1)
        assert first_only.fires(0, 0)
        assert not first_only.fires(0, 1)
        two = FaultRule(kind="transient", cells=(0,), attempts=2)
        assert two.fires(0, 1)
        assert not two.fires(0, 2)
        poison = FaultRule(
            kind="transient", cells=(0,), attempts=ALL_ATTEMPTS
        )
        assert all(poison.fires(0, attempt) for attempt in range(10))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="nonsense", cells=(0,)),
            dict(kind="transient"),  # neither cells nor rate
            dict(kind="transient", rate=1.5),
            dict(kind="transient", rate=-0.1),
            dict(kind="transient", cells=()),
            dict(kind="transient", cells=(-1,)),
            dict(kind="transient", cells=(0,), attempts=-1),
            dict(kind="hang", cells=(0,), seconds=0),
        ],
    )
    def test_invalid_rules_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(**kwargs)


class TestFaultPlanParse:
    def test_every_kind_parses(self):
        for kind in FAULT_KINDS:
            plan = FaultPlan.parse(f"{kind}:cells=1")
            assert plan.rules[0].kind == kind

    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "crash:cells=2,5:attempts=all;"
            "transient:rate=0.25:seed=7:attempts=2;"
            "hang:cells=1:seconds=30"
        )
        crash, transient, hang = plan.rules
        assert crash.cells == (2, 5)
        assert crash.attempts == ALL_ATTEMPTS
        assert transient.rate == 0.25
        assert transient.seed == 7
        assert transient.attempts == 2
        assert hang.seconds == 30.0

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.parse(
            "crash:cells=3;transient:cells=3:attempts=all"
        )
        assert plan.fault_for(3, 0).kind == "crash"
        # crash gates on attempts=1; the second rule takes over after.
        assert plan.fault_for(3, 1).kind == "transient"

    def test_corrupt_never_fires_at_execution_time(self):
        plan = FaultPlan.parse("corrupt:cells=1")
        assert plan.fault_for(1, 0) is None
        assert plan.corrupts(1)
        assert not plan.corrupts(0)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "crash:cells=2;;transient:cells=0",
            "crash:cells",
            "explode:cells=1",
            "crash:cells=x",
            "transient:rate=lots",
            "crash:cells=1:volume=11",
            "transient:cells=1:attempts=sometimes",
        ],
    )
    def test_malformed_specs_rejected_with_fragment(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_plans_pickle_and_compare_by_value(self):
        import pickle

        plan = FaultPlan.parse("crash:cells=2;transient:rate=0.5")
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestActivation:
    def test_no_plan_is_a_noop(self):
        assert installed_plan() is None
        maybe_inject(0, 0)  # must not raise

    def test_transient_fires_in_any_process(self):
        install_plan(FaultPlan.parse("transient:cells=3"), in_worker=False)
        maybe_inject(2, 0)  # unselected cell: no-op
        with pytest.raises(SimulationError, match="cell 3, attempt 0"):
            maybe_inject(3, 0)
        maybe_inject(3, 1)  # attempts=1: retry is clean

    def test_crash_and_hang_suppressed_outside_workers(self):
        """A pool-targeted plan must not kill (or stall) the parent
        process or a serial run."""
        install_plan(
            FaultPlan.parse("crash:cells=0;hang:cells=1:seconds=3600"),
            in_worker=False,
        )
        maybe_inject(0, 0)  # would os._exit in a worker
        maybe_inject(1, 0)  # would sleep an hour in a worker

    def test_clear_plan(self):
        install_plan(FaultPlan.parse("transient:cells=0"), in_worker=True)
        assert installed_plan() is not None
        clear_plan()
        assert installed_plan() is None
        maybe_inject(0, 0)


class TestCorruptBytes:
    def test_deterministic_and_damaging(self):
        data = b'{"index": 3, "policy": "moca"}'
        out = corrupt_bytes(data, seed=3)
        assert out != data
        assert len(out) == len(data)
        assert out == corrupt_bytes(data, seed=3)

    def test_seed_varies_damage(self):
        data = b"0123456789" * 4
        assert corrupt_bytes(data, seed=1) != corrupt_bytes(data, seed=2)

    def test_never_touches_newlines(self):
        """Corruption must damage a journal line's content, not its
        framing — a flipped newline would merge two lines."""
        data = b"abc\ndef\nghi"
        for seed in range(32):
            out = corrupt_bytes(data, seed=seed)
            assert out.count(b"\n") == data.count(b"\n")

    def test_empty_input_unchanged(self):
        assert corrupt_bytes(b"") == b""
