"""Tests for repro.models.analysis (roofline) and the timeline chart."""

import pytest

from repro.config import DEFAULT_SOC
from repro.models.analysis import (
    analyze_network,
    format_roofline,
    machine_balance,
)
from repro.models.layers import LayerKind
from repro.models.zoo import build_model, model_names
from repro.reporting import timeline_chart
from repro.sim.trace import Trace, TraceEvent

SOC = DEFAULT_SOC


class TestMachineBalance:
    def test_positive(self):
        assert machine_balance(SOC) > 0

    def test_value(self):
        # 256 * 0.85 MACs/cycle over 16 B/cycle = 13.6 MAC/B.
        assert machine_balance(SOC) == pytest.approx(13.6)


class TestAnalyzeNetwork:
    def test_covers_all_layers(self):
        net = build_model("resnet50")
        summary = analyze_network(net, SOC)
        assert len(summary.layers) == len(net)

    def test_fraction_in_unit_interval(self):
        for name in model_names():
            summary = analyze_network(build_model(name), SOC)
            assert 0.0 <= summary.memory_bound_fraction <= 1.0

    def test_mem_layers_always_memory_bound(self):
        summary = analyze_network(build_model("resnet50"), SOC)
        for row in summary.layers:
            if row.kind is LayerKind.MEM:
                assert row.memory_bound

    def test_alexnet_most_memory_bound_heavy_model(self):
        fractions = {
            name: analyze_network(build_model(name), SOC).memory_bound_fraction
            for name in ("alexnet", "resnet50", "googlenet", "yolov2")
        }
        assert max(fractions, key=fractions.get) == "alexnet"

    def test_alexnet_fc_layers_flagged(self):
        summary = analyze_network(build_model("alexnet"), SOC)
        by_name = {l.name: l for l in summary.layers}
        assert by_name["fc6"].memory_bound
        assert by_name["fc7"].memory_bound

    def test_more_tiles_raise_memory_bound_fraction(self):
        # Faster compute moves the bend: more layers become mem-bound.
        one = analyze_network(build_model("resnet50"), SOC, num_tiles=1)
        eight = analyze_network(build_model("resnet50"), SOC, num_tiles=8)
        assert eight.memory_bound_fraction >= one.memory_bound_fraction

    def test_format(self):
        summary = analyze_network(build_model("alexnet"), SOC)
        text = format_roofline(summary)
        assert "alexnet" in text
        assert "machine balance" in text


class TestTimelineChart:
    def _trace(self):
        trace = Trace()
        trace.log(0.0, TraceEvent.DISPATCH, "a")
        trace.log(10.0, TraceEvent.START, "a")
        trace.log(100.0, TraceEvent.FINISH, "a")
        trace.log(5.0, TraceEvent.DISPATCH, "b")
        trace.log(50.0, TraceEvent.START, "b")
        trace.log(200.0, TraceEvent.FINISH, "b")
        return trace

    def test_renders_rows(self):
        text = timeline_chart(self._trace())
        assert "a" in text and "b" in text
        assert "F" in text and "=" in text

    def test_wait_marks_present(self):
        text = timeline_chart(self._trace())
        assert "." in text

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            timeline_chart(Trace())

    def test_max_jobs_truncates(self):
        trace = Trace()
        for i in range(30):
            trace.log(float(i), TraceEvent.DISPATCH, f"j{i:02d}")
            trace.log(float(i + 1), TraceEvent.START, f"j{i:02d}")
            trace.log(float(i + 50), TraceEvent.FINISH, f"j{i:02d}")
        text = timeline_chart(trace, max_jobs=5)
        assert "more jobs not shown" in text

    def test_from_real_simulation(self, soc, mem, task_factory):
        from repro.baselines.static_partition import StaticPartitionPolicy
        from repro.sim.engine import Simulator

        tasks = [task_factory(task_id=f"t{i}", network="kws",
                              dispatch=i * 1e5) for i in range(5)]
        policy = StaticPartitionPolicy()
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem, trace=True)
        sim.run()
        text = timeline_chart(sim.trace)
        assert text.count("F") >= 5
