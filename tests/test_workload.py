"""Tests for repro.sim.workload (scenario generation)."""

import random

import pytest

from repro.config import DEFAULT_SOC
from repro.models.zoo import workload_set
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import (
    PRIORITY_GROUPS,
    PRIORITY_WEIGHTS,
    WorkloadConfig,
    WorkloadGenerator,
    priority_group,
)


@pytest.fixture(scope="module")
def generator():
    return WorkloadGenerator(DEFAULT_SOC, workload_set("C"))


class TestPriorityGroups:
    def test_twelve_levels(self):
        assert len(PRIORITY_WEIGHTS) == 12

    def test_groups_cover_range(self):
        covered = sorted(p for rng in PRIORITY_GROUPS.values() for p in rng)
        assert covered == list(range(12))

    @pytest.mark.parametrize("priority,group", [
        (0, "p-Low"), (2, "p-Low"),
        (3, "p-Mid"), (8, "p-Mid"),
        (9, "p-High"), (11, "p-High"),
    ])
    def test_group_mapping(self, priority, group):
        assert priority_group(priority) == group

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            priority_group(12)

    def test_weights_skew_low(self):
        # Google-trace shape: p-Low weights dominate p-High.
        low = sum(PRIORITY_WEIGHTS[:3])
        high = sum(PRIORITY_WEIGHTS[9:])
        assert low > 3 * high


class TestWorkloadConfig:
    def test_defaults_in_paper_range(self):
        cfg = WorkloadConfig()
        assert 200 <= cfg.num_tasks <= 500

    @pytest.mark.parametrize("kwargs", [
        dict(num_tasks=0),
        dict(load_factor=0.0),
        dict(reference_tiles=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)

    @pytest.mark.parametrize("kwargs,match", [
        (dict(arrival_window=0.0), "arrival_window"),
        (dict(arrival_window=-5.0), "arrival_window"),
        (dict(model_mix=()), "model_mix"),
        (dict(model_mix=(("kws", 0.5), ("alexnet", 0.2))), "sum to 1.0"),
        (dict(model_mix=(("kws", 1.5), ("alexnet", -0.5))), "positive"),
        (dict(model_mix=(("kws", 0.5), ("kws", 0.5))), "repeats"),
        (dict(arrival="lognormal"), "arrival process"),
        (dict(arrival="trace"), "trace_text"),
        (dict(burst_count=0), "burst_count"),
        (dict(burst_spread=0.0), "burst_spread"),
        (dict(diurnal_waves=0.0), "diurnal_waves"),
        (dict(diurnal_depth=1.5), "diurnal_depth"),
        (dict(priority_weights=(1.0,) * 11), "12 entries"),
        (dict(priority_weights=(-1.0,) + (1.0,) * 11), "non-negative"),
        (dict(priority_weights=(0.0,) * 12), "all be zero"),
    ])
    def test_invalid_stochastic_knobs(self, kwargs, match):
        """Bad configs fail here with a clear ValueError instead of
        surfacing as confusing downstream engine errors."""
        with pytest.raises(ValueError, match=match):
            WorkloadConfig(**kwargs)

    def test_model_mix_accepts_mapping(self):
        cfg = WorkloadConfig(model_mix={"kws": 0.5, "alexnet": 0.5})
        assert cfg.model_mix == (("kws", 0.5), ("alexnet", 0.5))

    def test_explicit_arrival_window_accepted(self):
        cfg = WorkloadConfig(arrival_window=5000.0)
        assert cfg.arrival_window == 5000.0


class TestGenerator:
    def test_generates_requested_count(self, generator):
        tasks = generator.generate(WorkloadConfig(num_tasks=50, seed=3))
        assert len(tasks) == 50

    def test_reproducible(self, generator):
        cfg = WorkloadConfig(num_tasks=40, seed=7)
        a = generator.generate(cfg)
        b = generator.generate(cfg)
        assert [(t.task_id, t.dispatch_cycle, t.priority, t.network_name)
                for t in a] == [
            (t.task_id, t.dispatch_cycle, t.priority, t.network_name)
            for t in b
        ]

    def test_different_seeds_differ(self, generator):
        a = generator.generate(WorkloadConfig(num_tasks=40, seed=1))
        b = generator.generate(WorkloadConfig(num_tasks=40, seed=2))
        assert [t.network_name for t in a] != [t.network_name for t in b]

    def test_sorted_by_dispatch(self, generator):
        tasks = generator.generate(WorkloadConfig(num_tasks=60, seed=5))
        dispatches = [t.dispatch_cycle for t in tasks]
        assert dispatches == sorted(dispatches)

    def test_priorities_in_range(self, generator):
        tasks = generator.generate(WorkloadConfig(num_tasks=100, seed=5))
        assert all(0 <= t.priority <= 11 for t in tasks)

    def test_priority_distribution_skews_low(self, generator):
        rng = random.Random(0)
        samples = [generator.sample_priority(rng) for _ in range(3000)]
        low = sum(1 for s in samples if s <= 2)
        high = sum(1 for s in samples if s >= 9)
        assert low > 2 * high

    def test_networks_from_set(self, generator):
        tasks = generator.generate(WorkloadConfig(num_tasks=60, seed=5))
        allowed = {n.name for n in workload_set("C")}
        assert {t.network_name for t in tasks} <= allowed

    def test_qos_level_applied(self, generator):
        hard = generator.generate(
            WorkloadConfig(num_tasks=20, seed=5, qos_level=QosLevel.HARD)
        )
        light = generator.generate(
            WorkloadConfig(num_tasks=20, seed=5, qos_level=QosLevel.LIGHT)
        )
        for h, l in zip(hard, light):
            assert h.qos_target_cycles < l.qos_target_cycles

    def test_window_scales_inversely_with_load(self, generator):
        heavy = generator.arrival_window(
            WorkloadConfig(num_tasks=100, load_factor=1.0)
        )
        light = generator.arrival_window(
            WorkloadConfig(num_tasks=100, load_factor=0.5)
        )
        assert light == pytest.approx(2.0 * heavy)

    def test_window_scales_with_tasks(self, generator):
        small = generator.arrival_window(WorkloadConfig(num_tasks=50))
        big = generator.arrival_window(WorkloadConfig(num_tasks=200))
        assert big == pytest.approx(4.0 * small)

    def test_isolated_cycles_set(self, generator):
        tasks = generator.generate(WorkloadConfig(num_tasks=10, seed=5))
        assert all(t.isolated_cycles > 0 for t in tasks)

    def test_empty_networks_raise(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(DEFAULT_SOC, [])
