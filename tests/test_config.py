"""Tests for repro.config (Table II encoding and unit helpers)."""

import dataclasses

import pytest

from repro.config import (
    ACC_BYTES,
    DEFAULT_SOC,
    ELEM_BYTES,
    KIB,
    MIB,
    ConfigError,
    SoCConfig,
    TileConfig,
)


class TestTileConfig:
    def test_default_matches_table2_array(self):
        tile = TileConfig()
        assert tile.array_rows == 16
        assert tile.array_cols == 16

    def test_default_matches_table2_sram(self):
        tile = TileConfig()
        assert tile.scratchpad_bytes == 128 * KIB
        assert tile.accumulator_bytes == 64 * KIB

    def test_peak_macs_per_cycle(self):
        assert TileConfig().peak_macs_per_cycle == 256

    def test_effective_macs_below_peak(self):
        tile = TileConfig()
        assert 0 < tile.effective_macs_per_cycle <= tile.peak_macs_per_cycle

    def test_effective_macs_scaling(self):
        tile = TileConfig(compute_efficiency=0.5)
        assert tile.effective_macs_per_cycle == pytest.approx(128.0)

    @pytest.mark.parametrize("field,value", [
        ("array_rows", 0),
        ("array_cols", -1),
        ("scratchpad_bytes", 0),
        ("accumulator_bytes", -5),
    ])
    def test_rejects_nonpositive_dims(self, field, value):
        with pytest.raises(ConfigError):
            TileConfig(**{field: value})

    @pytest.mark.parametrize("eff", [0.0, -0.1, 1.5])
    def test_rejects_bad_efficiency(self, eff):
        with pytest.raises(ConfigError):
            TileConfig(compute_efficiency=eff)


class TestSoCConfig:
    def test_default_matches_table2(self):
        soc = DEFAULT_SOC
        assert soc.num_tiles == 8
        assert soc.l2_bytes == 2 * MIB
        assert soc.l2_banks == 8
        assert soc.dram_bandwidth_bytes_per_cycle == 16.0
        assert soc.frequency_hz == 1e9

    def test_l2_aggregate_bandwidth(self):
        soc = DEFAULT_SOC
        expected = soc.l2_banks * soc.l2_bytes_per_bank_cycle
        assert soc.l2_bandwidth_bytes_per_cycle == expected

    def test_total_peak_macs(self):
        assert DEFAULT_SOC.total_peak_macs_per_cycle == 8 * 256

    def test_cycles_to_seconds(self):
        assert DEFAULT_SOC.cycles_to_seconds(1e9) == pytest.approx(1.0)

    def test_cycles_to_ms(self):
        assert DEFAULT_SOC.cycles_to_ms(2e6) == pytest.approx(2.0)

    def test_with_overlap_returns_copy(self):
        soc = DEFAULT_SOC.with_overlap(0.5)
        assert soc.overlap_f == 0.5
        assert DEFAULT_SOC.overlap_f != 0.5
        assert soc.num_tiles == DEFAULT_SOC.num_tiles

    def test_with_tiles_returns_copy(self):
        soc = DEFAULT_SOC.with_tiles(4)
        assert soc.num_tiles == 4
        assert DEFAULT_SOC.num_tiles == 8

    @pytest.mark.parametrize("field,value", [
        ("num_tiles", 0),
        ("l2_bytes", -1),
        ("l2_banks", 0),
        ("l2_bytes_per_bank_cycle", 0),
        ("dram_bandwidth_bytes_per_cycle", 0.0),
        ("frequency_hz", -1.0),
    ])
    def test_rejects_invalid_values(self, field, value):
        with pytest.raises(ConfigError):
            dataclasses.replace(DEFAULT_SOC, **{field: value})

    @pytest.mark.parametrize("f", [-0.1, 1.1])
    def test_rejects_bad_overlap(self, f):
        with pytest.raises(ConfigError):
            dataclasses.replace(DEFAULT_SOC, overlap_f=f)

    @pytest.mark.parametrize("a", [0.0, 1.01, -0.5])
    def test_rejects_bad_alpha(self, a):
        with pytest.raises(ConfigError):
            dataclasses.replace(DEFAULT_SOC, multi_tile_alpha=a)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_SOC.num_tiles = 4

    def test_element_sizes(self):
        assert ELEM_BYTES == 1  # int8 activations/weights
        assert ACC_BYTES == 4   # int32 partial sums
