"""Tests for repro.accelerator.multitile (instruction co-simulation)."""

import pytest

from repro.accelerator.multitile import MultiTenantPipelineSim, co_run_layers
from repro.config import DEFAULT_SOC
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.layers import ConvLayer, DenseLayer

SOC = DEFAULT_SOC
MEM = MemoryHierarchy.from_soc(SOC)
BW = MEM.dram_bandwidth


def _fc():
    """A memory-bound layer: AlexNet-class fully-connected."""
    return DenseLayer("fc", in_features=9216, out_features=4096)


def _conv():
    """A compute-bound layer."""
    return ConvLayer("c", in_h=28, in_w=28, in_ch=128, out_ch=128,
                     kernel=3, padding=1)


class TestBasics:
    def test_single_app_finishes(self):
        result = co_run_layers(SOC, BW, {"a": _conv()})
        assert result.finish_times["a"] > 0
        assert result.makespan == result.finish_times["a"]

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            MultiTenantPipelineSim(SOC, 0.0)

    def test_no_apps_raises(self):
        with pytest.raises(ValueError):
            MultiTenantPipelineSim(SOC, BW).run({})

    def test_deterministic(self):
        r1 = co_run_layers(SOC, BW, {"a": _fc(), "b": _conv()})
        r2 = co_run_layers(SOC, BW, {"a": _fc(), "b": _conv()})
        assert r1.finish_times == r2.finish_times


class TestContention:
    def test_two_memory_bound_apps_stretch(self):
        alone = co_run_layers(SOC, BW, {"a": _fc()}).finish_times["a"]
        shared = co_run_layers(SOC, BW, {"a": _fc(), "b": _fc()})
        # Two identical streams on one channel: each takes ~2x.
        assert shared.finish_times["a"] == pytest.approx(2 * alone, rel=0.1)

    def test_compute_bound_apps_unaffected(self):
        alone = co_run_layers(SOC, BW, {"a": _conv()}).finish_times["a"]
        shared = co_run_layers(
            SOC, BW, {"a": _conv(), "b": _conv()}
        ).finish_times["a"]
        # Compute time dominates; sharing the channel barely matters.
        assert shared <= alone * 1.3

    def test_cap_slows_capped_app_only(self):
        free = co_run_layers(SOC, BW, {"a": _fc(), "b": _fc()})
        capped = co_run_layers(
            SOC, BW, {"a": _fc(), "b": _fc()}, caps={"b": 2.0}
        )
        assert capped.finish_times["b"] > free.finish_times["b"]
        assert capped.finish_times["a"] < free.finish_times["a"]

    def test_agrees_with_fluid_contention_model(self):
        """The instruction co-sim and the fluid rate law must agree on
        the co-location stretch of a memory-bound layer."""
        from repro.core.latency import estimate_layer

        fc = _fc()
        # Fluid: at equal shares, each app gets BW/2 -> memory time 2x.
        est_full = estimate_layer(fc, SOC, MEM, num_tiles=1)
        est_half = estimate_layer(fc, SOC, MEM, num_tiles=1, dram_bw=BW / 2)
        fluid_stretch = est_half.prediction / est_full.prediction

        alone = co_run_layers(SOC, BW, {"a": fc}).finish_times["a"]
        shared = co_run_layers(
            SOC, BW, {"a": fc, "b": _fc()}
        ).finish_times["a"]
        isa_stretch = shared / alone
        assert isa_stretch == pytest.approx(fluid_stretch, rel=0.15)
