"""Shared fixtures for the simulator-level tests."""

import pytest

from repro.config import DEFAULT_SOC
from repro.core.latency import build_network_cost
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model
from repro.sim.job import Task


@pytest.fixture(scope="session")
def soc():
    return DEFAULT_SOC


@pytest.fixture(scope="session")
def mem(soc):
    return MemoryHierarchy.from_soc(soc)


def make_task(
    soc,
    mem,
    task_id="t0",
    network="kws",
    dispatch=0.0,
    priority=5,
    qos_target=None,
    qos_slack=3.0,
):
    """Build a Task with sensible defaults for engine tests."""
    cost = build_network_cost(build_model(network), soc, mem)
    isolated = cost.total_prediction(
        soc.num_tiles, mem.dram_bandwidth, mem.l2_bandwidth, soc.overlap_f
    )
    ref = cost.total_prediction(
        2, mem.dram_bandwidth, mem.l2_bandwidth, soc.overlap_f
    )
    if qos_target is None:
        qos_target = qos_slack * ref
    return Task(
        task_id=task_id,
        network_name=network,
        cost=cost,
        dispatch_cycle=dispatch,
        priority=priority,
        qos_target_cycles=qos_target,
        isolated_cycles=isolated,
    )


@pytest.fixture()
def task_factory(soc, mem):
    def factory(**kwargs):
        return make_task(soc, mem, **kwargs)

    return factory
