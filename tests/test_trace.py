"""Tests for repro.sim.trace."""

from repro.sim.trace import Trace, TraceEvent


class TestTrace:
    def test_log_and_len(self):
        trace = Trace()
        trace.log(10.0, TraceEvent.DISPATCH, "a")
        trace.log(20.0, TraceEvent.START, "a")
        assert len(trace) == 2

    def test_disabled_drops(self):
        trace = Trace(enabled=False)
        trace.log(10.0, TraceEvent.DISPATCH, "a")
        assert len(trace) == 0

    def test_of_kind(self):
        trace = Trace()
        trace.log(1.0, TraceEvent.START, "a")
        trace.log(2.0, TraceEvent.FINISH, "a")
        trace.log(3.0, TraceEvent.START, "b")
        starts = trace.of_kind(TraceEvent.START)
        assert [r.job_id for r in starts] == ["a", "b"]

    def test_for_job(self):
        trace = Trace()
        trace.log(1.0, TraceEvent.START, "a")
        trace.log(2.0, TraceEvent.START, "b")
        assert len(trace.for_job("a")) == 1

    def test_count(self):
        trace = Trace()
        trace.log(1.0, TraceEvent.BW_RECONFIG, "a")
        trace.log(2.0, TraceEvent.BW_RECONFIG, "a")
        trace.log(3.0, TraceEvent.BW_RECONFIG, "b")
        assert trace.count(TraceEvent.BW_RECONFIG) == 3
        assert trace.count(TraceEvent.BW_RECONFIG, "a") == 2

    def test_format_limit(self):
        trace = Trace()
        for i in range(5):
            trace.log(float(i), TraceEvent.DISPATCH, f"t{i}")
        text = trace.format(limit=2)
        assert "t0" in text and "t1" in text and "t4" not in text

    def test_format_contains_detail(self):
        trace = Trace()
        trace.log(1.0, TraceEvent.TILE_REPARTITION, "a", "tiles=4")
        assert "tiles=4" in trace.format()
