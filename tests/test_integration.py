"""Cross-module integration tests: the paper's headline shapes on a
reduced scenario, plus whole-pipeline invariants.

These run one moderate scenario (shared across tests via fixtures) and
assert the *orderings* the paper reports, not absolute numbers.
"""

import pytest

from repro.baselines import PlanariaPolicy, PremaPolicy, StaticPartitionPolicy
from repro.config import DEFAULT_SOC
from repro.core.policy import MoCAPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics import summarize
from repro.models.zoo import workload_set
from repro.sim.engine import run_simulation
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def scenario_summaries():
    """All four policies on Workload-A / QoS-H, two seeds, n=60."""
    soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    gen = WorkloadGenerator(soc, workload_set("A"), mem, QosModel(soc,
                                                                  slack_factor=2.0))
    out = {}
    for name, factory in (
        ("prema", PremaPolicy),
        ("static", StaticPartitionPolicy),
        ("planaria", PlanariaPolicy),
        ("moca", MoCAPolicy),
    ):
        summaries = []
        for seed in (1, 2):
            tasks = gen.generate(WorkloadConfig(
                num_tasks=60, qos_level=QosLevel.HARD, load_factor=0.7,
                seed=seed,
            ))
            result = run_simulation(soc, tasks, factory(), mem=mem)
            summaries.append(summarize(name, result.results))
        out[name] = summaries
    return out


def _mean(summaries, attr):
    vals = [getattr(s, attr) for s in summaries]
    return sum(vals) / len(vals)


class TestHeadlineShapes:
    """The paper's who-wins orderings on the hardest scenario."""

    def test_moca_beats_every_baseline_on_sla(self, scenario_summaries):
        moca = _mean(scenario_summaries["moca"], "sla_rate")
        for baseline in ("prema", "static", "planaria"):
            assert moca > _mean(scenario_summaries[baseline], "sla_rate")

    def test_moca_beats_every_baseline_on_stp(self, scenario_summaries):
        moca = _mean(scenario_summaries["moca"], "stp")
        for baseline in ("prema", "static", "planaria"):
            assert moca > _mean(scenario_summaries[baseline], "stp")

    def test_prema_worst_throughput(self, scenario_summaries):
        # Temporal multiplexing underutilizes the spatial array.
        prema = _mean(scenario_summaries["prema"], "stp")
        for spatial in ("static", "moca"):
            assert prema < _mean(scenario_summaries[spatial], "stp")

    def test_planaria_collapses_on_light_models_at_qos_h(
        self, scenario_summaries
    ):
        # Figure 5's key Planaria finding: thread-migration overhead is
        # comparable to light-model runtimes, dragging it below even
        # the static baseline at QoS-H on Workload-A.
        planaria = _mean(scenario_summaries["planaria"], "sla_rate")
        static = _mean(scenario_summaries["static"], "sla_rate")
        assert planaria < static

    def test_moca_priority_ordering(self, scenario_summaries):
        # Averaged across seeds, higher priority groups achieve at
        # least the satisfaction of p-Low (few p-High tasks per run
        # make per-seed comparisons noisy).
        highs, lows = [], []
        for s in scenario_summaries["moca"]:
            if "p-High" in s.sla_by_group:
                highs.append(s.sla_by_group["p-High"])
            if "p-Low" in s.sla_by_group:
                lows.append(s.sla_by_group["p-Low"])
        assert highs and lows
        # Tolerance: each 60-task run holds only ~5 p-High tasks, so
        # the group estimate is noisy; the deterministic priority
        # preference is asserted in test_policy_moca.
        assert sum(highs) / len(highs) >= sum(lows) / len(lows) - 0.1

    def test_all_tasks_complete_for_all_policies(self, scenario_summaries):
        for summaries in scenario_summaries.values():
            for s in summaries:
                assert s.num_tasks == 60

    def test_metrics_in_valid_ranges(self, scenario_summaries):
        for summaries in scenario_summaries.values():
            for s in summaries:
                assert 0.0 <= s.sla_rate <= 1.0
                assert 0.0 < s.fairness <= 1.0
                assert s.stp > 0
                assert s.mean_slowdown >= 1.0 or s.mean_slowdown > 0


class TestCliSmoke:
    def test_cli_table4(self, capsys):
        from repro.cli import main

        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "moca_hardware" in out

    def test_cli_fig1_small(self, capsys):
        from repro.cli import main

        assert main(["fig1", "--trials", "8"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_cli_validate(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        assert "within 10%" in capsys.readouterr().out
