"""Tests for repro.accelerator.tile (compute model)."""

import dataclasses

import pytest

from repro.accelerator.tile import (
    compute_cycles,
    layer_compute_cycles,
    max_useful_tiles,
)
from repro.config import DEFAULT_SOC
from repro.models.layers import ConvLayer, DenseLayer, PoolLayer


def _big_conv():
    return ConvLayer("c", in_h=56, in_w=56, in_ch=64, out_ch=64, kernel=3,
                     padding=1)


class TestMaxUsefulTiles:
    def test_mem_layer_single_tile(self):
        pool = PoolLayer("p", in_h=8, in_w=8, channels=16)
        assert max_useful_tiles(pool, DEFAULT_SOC) == 1

    def test_large_layer_uses_all_tiles(self):
        assert max_useful_tiles(_big_conv(), DEFAULT_SOC) == 8

    def test_tiny_layer_capped(self):
        tiny = DenseLayer("fc", in_features=16, out_features=16)
        assert max_useful_tiles(tiny, DEFAULT_SOC) == 1

    def test_never_exceeds_soc_tiles(self):
        assert max_useful_tiles(_big_conv(), DEFAULT_SOC) <= DEFAULT_SOC.num_tiles


class TestLayerComputeCycles:
    def test_mem_layer_zero(self):
        pool = PoolLayer("p", in_h=8, in_w=8, channels=16)
        assert layer_compute_cycles(pool, DEFAULT_SOC, 1) == 0.0

    def test_single_tile_formula(self):
        conv = _big_conv()
        cycles = layer_compute_cycles(conv, DEFAULT_SOC, 1)
        expected = conv.macs / DEFAULT_SOC.tile.effective_macs_per_cycle
        assert cycles == pytest.approx(expected)

    def test_more_tiles_faster(self):
        conv = _big_conv()
        t1 = layer_compute_cycles(conv, DEFAULT_SOC, 1)
        t4 = layer_compute_cycles(conv, DEFAULT_SOC, 4)
        t8 = layer_compute_cycles(conv, DEFAULT_SOC, 8)
        assert t1 > t4 > t8

    def test_sublinear_scaling(self):
        conv = _big_conv()
        t1 = layer_compute_cycles(conv, DEFAULT_SOC, 1)
        t8 = layer_compute_cycles(conv, DEFAULT_SOC, 8)
        # Perfect scaling would be 8x; alpha < 1 gives less.
        assert t1 / t8 < 8.0
        assert t1 / t8 == pytest.approx(8 ** DEFAULT_SOC.multi_tile_alpha)

    def test_linear_when_alpha_one(self):
        soc = dataclasses.replace(DEFAULT_SOC, multi_tile_alpha=1.0)
        conv = _big_conv()
        t1 = layer_compute_cycles(conv, soc, 1)
        t8 = layer_compute_cycles(conv, soc, 8)
        assert t1 / t8 == pytest.approx(8.0)

    def test_tiles_beyond_useful_no_gain(self):
        tiny = DenseLayer("fc", in_features=16, out_features=16)
        t1 = layer_compute_cycles(tiny, DEFAULT_SOC, 1)
        t8 = layer_compute_cycles(tiny, DEFAULT_SOC, 8)
        assert t1 == pytest.approx(t8)

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            layer_compute_cycles(_big_conv(), DEFAULT_SOC, 0)


class TestComputeCycles:
    def test_sums_over_layers(self):
        layers = [_big_conv(), DenseLayer("fc", 1024, 1024)]
        total = compute_cycles(layers, DEFAULT_SOC, 2)
        parts = sum(layer_compute_cycles(l, DEFAULT_SOC, 2) for l in layers)
        assert total == pytest.approx(parts)

    def test_empty_is_zero(self):
        assert compute_cycles([], DEFAULT_SOC, 2) == 0.0
