"""Property-based invariants over randomly sampled ScenarioSpecs.

A deterministic sampler draws scenarios across the whole knob space
(arrival processes, model mixes, priority overrides, QoS levels) and
checks the invariants the experiment harness relies on:

- the generator emits exactly ``num_tasks`` tasks with non-decreasing,
  non-negative arrival times, reproducibly per seed;
- every generated task is admitted and finished exactly once, and task
  counts are conserved in ``SimResult``;
- serial and 2-worker parallel execution of registry scenarios are
  bit-identical.
"""

import random
from dataclasses import replace

import pytest

from repro.config import DEFAULT_SOC
from repro.core.policy import MoCAPolicy
from repro.experiments.parallel import ParallelRunner, matrices_identical
from repro.experiments.runner import run_matrix
from repro.memory.hierarchy import MemoryHierarchy
from repro.scenarios import ScenarioSpec, get_scenario, sample_model_mix
from repro.sim.engine import run_simulation
from repro.sim.qos import QosLevel, QosModel
from repro.sim.workload import WorkloadGenerator


def random_spec(case: int) -> ScenarioSpec:
    """Deterministically sample one ScenarioSpec from the knob space."""
    rng = random.Random(20230 + case)
    arrival = rng.choice(["uniform", "bursty", "diurnal"])
    kwargs = dict(
        workload_set=rng.choice("ABC"),
        qos_level=rng.choice(list(QosLevel)),
        num_tasks=rng.randrange(8, 20),
        seeds=(rng.randrange(1, 100),),
        load_factor=rng.uniform(0.4, 1.2),
        slack_factor=rng.uniform(1.5, 3.0),
        arrival=arrival,
    )
    if arrival == "bursty":
        kwargs.update(
            burst_count=rng.randrange(1, 6),
            burst_spread=rng.uniform(0.01, 0.1),
        )
    elif arrival == "diurnal":
        kwargs.update(
            diurnal_waves=rng.uniform(0.5, 4.0),
            diurnal_depth=rng.uniform(0.0, 1.0),
        )
    if rng.random() < 0.5:
        kwargs["model_mix"] = sample_model_mix(
            rng.randrange(1000), set_name=kwargs["workload_set"], size=2
        )
    if rng.random() < 0.3:
        kwargs["priority_weights"] = tuple(
            rng.uniform(0.1, 5.0) for _ in range(12)
        )
    return ScenarioSpec(**kwargs)


def generate_tasks(spec: ScenarioSpec, seed: int):
    mem = MemoryHierarchy.from_soc(DEFAULT_SOC)
    qos = QosModel(DEFAULT_SOC, slack_factor=spec.slack_factor)
    gen = WorkloadGenerator(DEFAULT_SOC, spec.networks(), mem, qos)
    return gen.generate(spec.workload_config(seed)), mem


class TestGeneratorInvariants:
    @pytest.mark.parametrize("case", range(12))
    def test_counts_order_and_reproducibility(self, case):
        spec = random_spec(case)
        seed = spec.seeds[0]
        tasks, _ = generate_tasks(spec, seed)
        again, _ = generate_tasks(spec, seed)

        assert len(tasks) == spec.num_tasks
        dispatches = [t.dispatch_cycle for t in tasks]
        assert all(d >= 0 for d in dispatches)
        assert dispatches == sorted(dispatches)
        assert [
            (t.task_id, t.network_name, t.priority, t.dispatch_cycle)
            for t in tasks
        ] == [
            (t.task_id, t.network_name, t.priority, t.dispatch_cycle)
            for t in again
        ]
        assert len({t.task_id for t in tasks}) == spec.num_tasks
        assert all(0 <= t.priority <= 11 for t in tasks)


class TestSimulationConservation:
    @pytest.mark.parametrize("case", range(6))
    def test_every_task_admitted_exactly_once(self, case):
        spec = random_spec(case)
        tasks, mem = generate_tasks(spec, spec.seeds[0])
        result = run_simulation(DEFAULT_SOC, tasks, MoCAPolicy(), mem=mem)

        finished = [r.task_id for r in result.results]
        assert sorted(finished) == sorted(t.task_id for t in tasks)
        assert len(finished) == len(set(finished)) == spec.num_tasks
        for r in result.results:
            assert r.finished_at >= r.started_at >= 0
            assert r.started_at >= r.dispatch_cycle


class TestSerialParallelIdentity:
    def test_registry_scenarios_bit_identical_across_workers(self):
        specs = [
            replace(get_scenario(name), num_tasks=10, seeds=(1,))
            for name in ("bursty-mixed", "diurnal-light")
        ]
        serial = run_matrix(specs)
        runner = ParallelRunner(workers=2)
        parallel = runner.run_matrix(specs)
        assert matrices_identical(serial, parallel)
        if runner.last_mode != "parallel":
            pytest.skip(
                "process pool unavailable: cross-process identity "
                "not exercised (serial fallback compared)"
            )


@pytest.mark.slow
def test_sweep_cli_two_workers_matches_serial(capsys):
    """Acceptance check: the sweep CLI's parallel output is identical
    to its serial output for registry scenarios."""
    from repro.cli import main

    argv = [
        "sweep", "--scenarios", "bursty-mixed,diurnal-light",
        "--tasks", "24", "--seeds", "1,2",
    ]
    main(argv + ["--workers", "1"])
    serial_out = capsys.readouterr().out
    main(argv + ["--workers", "2"])
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out
