"""Coverage for the PR 1 cost-cache helpers: the network-cost cache,
the per-block predict memos, their invalidation hooks, the
order-sensitive structural fingerprint and the cache telemetry."""

from dataclasses import replace

import pytest

import repro.core.latency as latency
from repro.config import DEFAULT_SOC
from repro.core.latency import (
    BlockCost,
    build_network_cost,
    cache_stats,
    clear_network_cost_cache,
    clear_predict_memos,
    reset_cache_stats,
    warm_network_cost_cache,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model


@pytest.fixture()
def cold_cache():
    clear_network_cost_cache()
    yield
    clear_network_cost_cache()


@pytest.fixture(scope="module")
def mem():
    return MemoryHierarchy.from_soc(DEFAULT_SOC)


class TestNetworkCostCache:
    def test_clear_forces_recompute(self, cold_cache, mem, monkeypatch):
        """clear_network_cost_cache() actually invalidates: the block
        build counter moves again after a clear."""
        calls = {"n": 0}
        real = latency.build_block_cost

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(latency, "build_block_cost", counting)
        net = build_model("kws")

        first = build_network_cost(net, DEFAULT_SOC, mem)
        built = calls["n"]
        assert built > 0

        again = build_network_cost(net, DEFAULT_SOC, mem)
        assert again is first
        assert calls["n"] == built  # pure cache hit

        clear_network_cost_cache()
        rebuilt = build_network_cost(net, DEFAULT_SOC, mem)
        assert calls["n"] == 2 * built  # recomputed from scratch
        assert rebuilt is not first
        assert rebuilt.blocks == first.blocks

    def test_keys_differ_across_memory_hierarchies(self, cold_cache, mem):
        net = build_model("kws")
        base = build_network_cost(net, DEFAULT_SOC, mem)
        assert len(latency._NETWORK_COST_CACHE) == 1

        fatter_dram = MemoryHierarchy(
            l2=mem.l2,
            dram=replace(
                mem.dram,
                peak_bytes_per_cycle=mem.dram.peak_bytes_per_cycle * 2,
            ),
        )
        other = build_network_cost(net, DEFAULT_SOC, fatter_dram)
        assert len(latency._NETWORK_COST_CACHE) == 2
        assert other is not base

    def test_keys_differ_across_block_granularity(self, cold_cache, mem):
        net = build_model("kws")
        coarse = build_network_cost(
            net, DEFAULT_SOC, mem, max_layers_per_block=6
        )
        fine = build_network_cost(
            net, DEFAULT_SOC, mem, max_layers_per_block=2
        )
        assert len(latency._NETWORK_COST_CACHE) == 2
        assert fine is not coarse
        # Same granularity again is a pure cache hit.
        assert build_network_cost(
            net, DEFAULT_SOC, mem, max_layers_per_block=2
        ) is fine
        assert len(latency._NETWORK_COST_CACHE) == 2


def _reorder_layers(net):
    """The same network with two middle layers swapped in place —
    aggregate totals (layer count, MAC sum, weight sum) are untouched,
    only the execution order moves."""
    layers = list(net.layers)
    i = len(layers) // 2
    layers[i - 1], layers[i] = layers[i], layers[i - 1]
    return replace(net, layers=tuple(layers))


class TestOrderSensitiveFingerprint:
    def test_reordering_is_a_cache_miss(self, cold_cache, mem):
        """ISSUE bugfix regression: a cached zoo model whose layers are
        reordered must MISS the network-cost cache.  The old
        fingerprint (name + layer count + total MACs/weights) is
        order-blind and aliased exactly this case."""
        net = build_model("resnet50")
        reordered = _reorder_layers(net)

        # The reordered model is indistinguishable to the old key ...
        assert reordered.name == net.name
        assert len(reordered.layers) == len(net.layers)
        assert reordered.total_macs == net.total_macs
        assert reordered.total_weight_bytes == net.total_weight_bytes
        # ... but not to the order-sensitive digest.
        assert reordered.structural_digest != net.structural_digest

        base = build_network_cost(net, DEFAULT_SOC, mem)
        assert len(latency._NETWORK_COST_CACHE) == 1
        other = build_network_cost(reordered, DEFAULT_SOC, mem)
        assert len(latency._NETWORK_COST_CACHE) == 2  # miss, not alias
        assert other is not base
        # Same model again is still a pure hit.
        assert build_network_cost(net, DEFAULT_SOC, mem) is base

    def test_digest_stable_for_equal_structure(self):
        net = build_model("kws")
        rebuilt = replace(net, layers=tuple(net.layers))
        assert rebuilt.structural_digest == net.structural_digest

    def test_forced_inplace_layer_swap_not_served_stale(self, cold_cache):
        """Even a forced in-place mutation of the frozen instance's
        layer tuple (object.__setattr__) recomputes the digest."""
        net = build_model("kws")
        before = net.structural_digest
        mutated = replace(net, layers=tuple(net.layers))
        swapped = _reorder_layers(net)
        object.__setattr__(mutated, "layers", swapped.layers)
        assert mutated.structural_digest != before
        assert mutated.structural_digest == swapped.structural_digest


class TestCacheTelemetry:
    def test_hit_miss_counters_move(self, cold_cache, mem):
        reset_cache_stats()
        net = build_model("kws")
        build_network_cost(net, DEFAULT_SOC, mem)
        stats = cache_stats()
        assert stats["cost_cache_misses"] == 1
        assert stats["cost_cache_hits"] == 0
        build_network_cost(net, DEFAULT_SOC, mem)
        stats = cache_stats()
        assert stats["cost_cache_hits"] == 1
        assert stats["cost_cache_misses"] == 1

    def test_warm_then_predict_is_all_hits(self, cold_cache, mem):
        """After warm_network_cost_cache, every full-bandwidth predict
        point the engine evaluates is a memo hit."""
        net = build_model("kws")
        warm_network_cost_cache([net], DEFAULT_SOC, mem)
        reset_cache_stats()
        cost = build_network_cost(net, DEFAULT_SOC, mem)  # pure hit
        for block in cost.blocks:
            for tiles in range(1, DEFAULT_SOC.num_tiles + 1):
                block.predict(
                    tiles, mem.dram_bandwidth, mem.l2_bandwidth,
                    DEFAULT_SOC.overlap_f,
                )
        stats = cache_stats()
        assert stats["predict_memo_misses"] == 0
        assert stats["predict_memo_hits"] > 0
        assert stats["cost_cache_hits"] == 1  # the build above

    def test_reset_zeroes_counters_not_caches(self, cold_cache, mem):
        net = build_model("kws")
        first = build_network_cost(net, DEFAULT_SOC, mem)
        reset_cache_stats()
        assert all(v == 0 for v in cache_stats().values())
        assert build_network_cost(net, DEFAULT_SOC, mem) is first


class TestPredictMemoLRU:
    def _point(self, mem, scale=1.0):
        return (
            1, mem.dram_bandwidth * scale, mem.l2_bandwidth,
            DEFAULT_SOC.overlap_f,
        )

    def test_cap_bounds_memo(self, cold_cache, mem, monkeypatch):
        """ISSUE satellite: the per-block predict memo is bounded —
        flooding it with distinct bandwidth points (what a long
        continuous-style run does) evicts instead of growing without
        limit, and an evicted point recomputes the identical float."""
        monkeypatch.setattr(latency, "_PREDICT_MEMO_CAP", 8)
        cost = build_network_cost(build_model("kws"), DEFAULT_SOC, mem)
        block = cost.blocks[0]
        block.clear_predict_memo()
        first_point = self._point(mem)
        baseline = block.predict(*first_point)
        for i in range(1, 50):
            block.predict(*self._point(mem, scale=1.0 / (1.0 + i)))
        memo = block.__dict__["_predict_memo"]
        assert len(memo) <= 8
        assert first_point not in memo  # evicted by the flood
        assert block.predict(*first_point) == baseline

    def test_hits_refresh_recency(self, cold_cache, mem, monkeypatch):
        """A hit moves its entry to most-recently-used: after probing
        cap distinct points, re-hitting the oldest and inserting one
        more evicts the *second*-oldest, not the re-hit one."""
        monkeypatch.setattr(latency, "_PREDICT_MEMO_CAP", 4)
        cost = build_network_cost(build_model("kws"), DEFAULT_SOC, mem)
        block = cost.blocks[0]
        block.clear_predict_memo()
        points = [
            self._point(mem, scale=1.0 / (1.0 + i)) for i in range(4)
        ]
        for p in points:
            block.predict(*p)
        block.predict(*points[0])  # refresh the oldest
        block.predict(*self._point(mem, scale=0.01))  # force eviction
        memo = block.__dict__["_predict_memo"]
        assert points[0] in memo
        assert points[1] not in memo

    def test_eviction_never_changes_metrics(
        self, cold_cache, monkeypatch
    ):
        """The regression the ISSUE asks for: a full MoCA simulation
        with the predict memo and the policy's per-job caches capped
        to pathologically tiny sizes produces bit-identical results
        to the unbounded run — eviction is identity-pinned, it can
        only cost time, never change a number."""
        import repro.core.policy as policy_mod
        from repro.core.policy import MoCAPolicy
        from repro.sim.engine import run_simulation
        from repro.sim.qos import QosLevel
        from repro.sim.workload import WorkloadConfig, WorkloadGenerator
        from repro.models.zoo import workload_set

        mem = MemoryHierarchy.from_soc(DEFAULT_SOC)
        gen = WorkloadGenerator(DEFAULT_SOC, workload_set("A"), mem)
        tasks = gen.generate(
            WorkloadConfig(
                num_tasks=16, qos_level=QosLevel.MEDIUM, seed=7
            )
        )

        def run():
            clear_network_cost_cache()
            clear_predict_memos()
            return run_simulation(
                DEFAULT_SOC, tasks, MoCAPolicy(), mem=mem
            )

        reference = run()
        monkeypatch.setattr(latency, "_PREDICT_MEMO_CAP", 4)
        monkeypatch.setattr(policy_mod, "_JOB_CACHE_CAP", 1)
        capped = run()
        assert capped.results == reference.results
        assert capped.makespan == reference.makespan


class TestPredictMemo:
    def test_clear_predict_memos_invalidates(
        self, cold_cache, mem, monkeypatch
    ):
        """clear_predict_memos() drops the per-block memo of every
        cached cost: the compute counter moves again after a clear."""
        cost = build_network_cost(build_model("kws"), DEFAULT_SOC, mem)
        block = cost.blocks[0]
        point = (4, mem.dram_bandwidth, mem.l2_bandwidth,
                 DEFAULT_SOC.overlap_f)

        calls = {"n": 0}
        real = BlockCost.compute_ideal

        def counting(self, num_tiles):
            calls["n"] += 1
            return real(self, num_tiles)

        monkeypatch.setattr(BlockCost, "compute_ideal", counting)
        block.clear_predict_memo()

        first = block.predict(*point)
        assert calls["n"] == 1
        assert block.predict(*point) == first
        assert calls["n"] == 1  # memo hit, no recompute

        clear_predict_memos()
        assert block.predict(*point) == first
        assert calls["n"] == 2  # memo dropped, recomputed
