"""Coverage for the PR 1 cost-cache helpers: the network-cost cache,
the per-block predict memos, and their invalidation hooks."""

from dataclasses import replace

import pytest

import repro.core.latency as latency
from repro.config import DEFAULT_SOC
from repro.core.latency import (
    BlockCost,
    build_network_cost,
    clear_network_cost_cache,
    clear_predict_memos,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model


@pytest.fixture()
def cold_cache():
    clear_network_cost_cache()
    yield
    clear_network_cost_cache()


@pytest.fixture(scope="module")
def mem():
    return MemoryHierarchy.from_soc(DEFAULT_SOC)


class TestNetworkCostCache:
    def test_clear_forces_recompute(self, cold_cache, mem, monkeypatch):
        """clear_network_cost_cache() actually invalidates: the block
        build counter moves again after a clear."""
        calls = {"n": 0}
        real = latency.build_block_cost

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(latency, "build_block_cost", counting)
        net = build_model("kws")

        first = build_network_cost(net, DEFAULT_SOC, mem)
        built = calls["n"]
        assert built > 0

        again = build_network_cost(net, DEFAULT_SOC, mem)
        assert again is first
        assert calls["n"] == built  # pure cache hit

        clear_network_cost_cache()
        rebuilt = build_network_cost(net, DEFAULT_SOC, mem)
        assert calls["n"] == 2 * built  # recomputed from scratch
        assert rebuilt is not first
        assert rebuilt.blocks == first.blocks

    def test_keys_differ_across_memory_hierarchies(self, cold_cache, mem):
        net = build_model("kws")
        base = build_network_cost(net, DEFAULT_SOC, mem)
        assert len(latency._NETWORK_COST_CACHE) == 1

        fatter_dram = MemoryHierarchy(
            l2=mem.l2,
            dram=replace(
                mem.dram,
                peak_bytes_per_cycle=mem.dram.peak_bytes_per_cycle * 2,
            ),
        )
        other = build_network_cost(net, DEFAULT_SOC, fatter_dram)
        assert len(latency._NETWORK_COST_CACHE) == 2
        assert other is not base

    def test_keys_differ_across_block_granularity(self, cold_cache, mem):
        net = build_model("kws")
        coarse = build_network_cost(
            net, DEFAULT_SOC, mem, max_layers_per_block=6
        )
        fine = build_network_cost(
            net, DEFAULT_SOC, mem, max_layers_per_block=2
        )
        assert len(latency._NETWORK_COST_CACHE) == 2
        assert fine is not coarse
        # Same granularity again is a pure cache hit.
        assert build_network_cost(
            net, DEFAULT_SOC, mem, max_layers_per_block=2
        ) is fine
        assert len(latency._NETWORK_COST_CACHE) == 2


class TestPredictMemo:
    def test_clear_predict_memos_invalidates(
        self, cold_cache, mem, monkeypatch
    ):
        """clear_predict_memos() drops the per-block memo of every
        cached cost: the compute counter moves again after a clear."""
        cost = build_network_cost(build_model("kws"), DEFAULT_SOC, mem)
        block = cost.blocks[0]
        point = (4, mem.dram_bandwidth, mem.l2_bandwidth,
                 DEFAULT_SOC.overlap_f)

        calls = {"n": 0}
        real = BlockCost.compute_ideal

        def counting(self, num_tiles):
            calls["n"] += 1
            return real(self, num_tiles)

        monkeypatch.setattr(BlockCost, "compute_ideal", counting)
        block.clear_predict_memo()

        first = block.predict(*point)
        assert calls["n"] == 1
        assert block.predict(*point) == first
        assert calls["n"] == 1  # memo hit, no recompute

        clear_predict_memos()
        assert block.predict(*point) == first
        assert calls["n"] == 2  # memo dropped, recomputed
