"""Tests for repro.accelerator.dma (request-stream model)."""

import pytest

from repro.accelerator.dma import (
    MEM_REQUEST_BYTES,
    DmaModel,
    bytes_to_requests,
    requests_to_bytes,
)


class TestConversions:
    def test_zero_bytes(self):
        assert bytes_to_requests(0) == 0

    def test_exact_multiple(self):
        assert bytes_to_requests(128) == 2

    def test_rounds_up(self):
        assert bytes_to_requests(65) == 2
        assert bytes_to_requests(1) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bytes_to_requests(-1)

    def test_requests_to_bytes(self):
        assert requests_to_bytes(3) == 3 * MEM_REQUEST_BYTES

    def test_requests_to_bytes_negative(self):
        with pytest.raises(ValueError):
            requests_to_bytes(-1)

    def test_round_trip_upper_bound(self):
        n = 1000
        assert requests_to_bytes(bytes_to_requests(n)) >= n


class TestDmaModel:
    def test_invalid_issue_rate(self):
        with pytest.raises(ValueError):
            DmaModel(issue_rate=0)

    def test_requests_for(self):
        dma = DmaModel()
        assert dma.requests_for(128, 64) == 3

    def test_unthrottled_cycles(self):
        dma = DmaModel(issue_rate=0.5)
        assert dma.unthrottled_cycles(10) == pytest.approx(20.0)

    def test_unthrottled_cycles_negative(self):
        with pytest.raises(ValueError):
            DmaModel().unthrottled_cycles(-1)

    def test_peak_bandwidth(self):
        dma = DmaModel(issue_rate=0.25)
        assert dma.peak_bandwidth_bytes_per_cycle() == pytest.approx(16.0)
