"""The curated top-level API stays importable and complete."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_end_to_end_through_top_level_only(self):
        """The README's quickstart works using only `repro.*` names."""
        gen = repro.WorkloadGenerator(
            repro.DEFAULT_SOC, repro.workload_set("A")
        )
        tasks = gen.generate(repro.WorkloadConfig(
            num_tasks=12, qos_level=repro.QosLevel.MEDIUM, seed=1,
        ))
        result = repro.run_simulation(
            repro.DEFAULT_SOC, tasks, repro.MoCAPolicy()
        )
        summary = repro.summarize("moca", result.results)
        assert summary.num_tasks == 12
        assert 0.0 <= summary.sla_rate <= 1.0

    def test_policies_share_interface(self):
        from repro.sim.policy import Policy

        for cls in (repro.MoCAPolicy, repro.PremaPolicy,
                    repro.StaticPartitionPolicy, repro.PlanariaPolicy):
            assert issubclass(cls, Policy)
