"""Tests for the coordinator/worker execution layer
(repro.experiments.execution): work ledger, transports, coordinator
service, worker loop — and the lease-expiry determinism property the
ISSUE acceptance criteria pin against the export goldens.
"""

import dataclasses
import hashlib
import json
import random

import pytest

from repro.config import DEFAULT_SOC
from repro.experiments.execution import (
    COMPLETED,
    LEASED,
    QUARANTINED,
    UNLEASED,
    Coordinator,
    CoordinatorServer,
    HttpTransport,
    InProcessTransport,
    SweepWorker,
    TransportError,
    WorkLedger,
    build_lease_partial,
    execute_lease,
)
from repro.experiments.parallel import ParallelRunner, Supervision
from repro.experiments.results import (
    CellFailure,
    SweepResults,
    cell_manifest,
)
from repro.experiments.runner import ScenarioSpec, run_matrix
from repro.experiments.sharding import (
    CellJournal,
    ShardPlan,
    manifest_digest,
)
from repro.reporting import sweep_to_csv, sweep_to_json

#: Tiny but real: 1 scenario x 4 policies x 1 seed = 4 cells.
TINY_SPECS = [ScenarioSpec(workload_set="A", num_tasks=6, seeds=(1,))]

SOC_DICT = dataclasses.asdict(DEFAULT_SOC)


@pytest.fixture(scope="module")
def manifest():
    return cell_manifest(TINY_SPECS)


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix(TINY_SPECS)


@pytest.fixture(scope="module")
def tiny_cells(manifest):
    """Every cell of the tiny manifest, computed once and reused to
    craft submissions without re-simulating."""
    runner = ParallelRunner(workers=1)
    cells, failures = execute_lease(
        runner, TINY_SPECS, None, DEFAULT_SOC,
        tuple(range(len(manifest["cells"]))),
    )
    assert not failures
    return {c.index: c for c in cells}


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _lease_doc(lease):
    return {
        "lease_id": lease["lease_id"],
        "worker_id": lease["worker_id"],
        "cell_indices": list(lease["cell_indices"]),
    }


def _partial_for(manifest, lease, cells_by_index, failures=()):
    return build_lease_partial(
        manifest,
        SOC_DICT,
        _lease_doc(lease),
        [
            cells_by_index[i]
            for i in lease["cell_indices"]
            if i not in {f.index for f in failures}
        ],
        list(failures),
    )


def _failure_for(manifest, index, kind="error"):
    cell = manifest["cells"][index]
    label = manifest["scenarios"][cell["spec_index"]]["label"]
    return CellFailure(
        index=index,
        spec_index=cell["spec_index"],
        label=label,
        policy=cell["policy"],
        seed=cell["seed"],
        kind=kind,
        attempts=3,
        message="injected for test",
    )


# ----------------------------------------------------------------------
# Work ledger
# ----------------------------------------------------------------------


class TestWorkLedger:
    def test_initial_state(self, manifest):
        led = WorkLedger(manifest)
        assert len(led) == len(manifest["cells"])
        assert all(
            led.state(i) == UNLEASED for i in range(len(led))
        )
        assert not led.drained
        assert led.digest == manifest_digest(manifest)

    def test_lease_grants_costliest_first(self, manifest):
        led = WorkLedger(manifest, lease_ttl=None, workers_hint=1)
        lease = led.request_lease("w", max_cost=1)
        # max_cost below any cell cost still grants exactly one cell
        # — the costliest available (index 0 here: uniform costs tie-
        # break ascending).
        assert lease.indices == (0,)
        assert led.state(0) == LEASED

    def test_leases_are_exclusive_and_cover_everything(self, manifest):
        led = WorkLedger(manifest, lease_ttl=None)
        seen = []
        while True:
            lease = led.request_lease("w", max_cost=1)
            if lease is None:
                break
            seen.extend(lease.indices)
        assert sorted(seen) == list(range(len(led)))
        assert len(set(seen)) == len(seen)

    def test_default_batch_cost_spreads_total(self, manifest):
        led = WorkLedger(manifest, workers_hint=2)
        # 4 cells x cost 6 over 4x2 batches -> ceil(24/8) = 3, but
        # never below the costliest single cell (6).
        assert led.default_batch_cost() == 6

    def test_heartbeat_renews_and_rejects_unknown(self, manifest):
        clock = FakeClock()
        led = WorkLedger(manifest, lease_ttl=10.0, clock=clock)
        lease = led.request_lease("w")
        clock.advance(8.0)
        assert led.heartbeat(lease.lease_id)
        clock.advance(8.0)  # would be past the original deadline
        assert led.expire() == []
        assert not led.heartbeat(999)

    def test_expiry_returns_unsettled_cells(self, manifest):
        clock = FakeClock()
        led = WorkLedger(manifest, lease_ttl=5.0, clock=clock)
        lease = led.request_lease("w", max_cost=10_000)  # everything
        assert len(lease.indices) > 1
        led.complete(lease.indices[0])
        clock.advance(6.0)
        expired = led.expire()
        assert [e.lease_id for e in expired] == [lease.lease_id]
        assert led.state(lease.indices[0]) == COMPLETED
        for index in lease.indices[1:]:
            assert led.state(index) == UNLEASED
        # The freed cells are re-leasable by someone else.
        again = led.request_lease("thief")
        assert again is not None
        assert set(again.indices) <= set(lease.indices[1:]) | {
            i for i in range(len(led)) if led.state(i) == LEASED
        }

    def test_immortal_leases_never_expire(self, manifest):
        clock = FakeClock()
        led = WorkLedger(manifest, lease_ttl=None, clock=clock)
        led.request_lease("w")
        clock.advance(1e9)
        assert led.expire() == []

    def test_release_frees_immediately(self, manifest):
        led = WorkLedger(manifest, lease_ttl=30.0)
        lease = led.request_lease("w")
        released = led.release(lease.lease_id)
        assert released.lease_id == lease.lease_id
        assert all(led.state(i) == UNLEASED for i in lease.indices)

    def test_pre_lease_shard_matches_shard_plan(self, manifest):
        plan = ShardPlan.from_manifest(manifest, 2)
        led = WorkLedger(manifest)
        lease0 = led.pre_lease_shard(2, 0)
        lease1 = led.pre_lease_shard(2, 1)
        assert lease0.indices == plan.shard(0)
        assert lease1.indices == plan.shard(1)
        assert lease0.cost == plan.costs[0]
        assert led.request_lease("late") is None
        led2 = WorkLedger(manifest)
        led2.pre_lease_shard(2, 0)
        with pytest.raises(ValueError, match="overlaps"):
            led2.pre_lease_shard(1, 0)

    def test_complete_refuses_duplicate(self, manifest):
        led = WorkLedger(manifest)
        led.complete(0)
        with pytest.raises(ValueError, match="already completed"):
            led.complete(0)
        with pytest.raises(ValueError, match="outside manifest"):
            led.complete(len(led))

    def test_quarantine_then_heal(self, manifest):
        led = WorkLedger(manifest)
        led.quarantine(1)
        assert led.state(1) == QUARANTINED
        led.complete(1)  # a later worker healed it
        assert led.state(1) == COMPLETED
        led.quarantine(1)  # completed never regresses
        assert led.state(1) == COMPLETED

    def test_drained(self, manifest):
        led = WorkLedger(manifest)
        for i in range(len(led) - 1):
            led.complete(i)
        assert not led.drained
        led.quarantine(len(led) - 1)
        assert led.drained

    def test_settled_lease_is_retired(self, manifest):
        led = WorkLedger(manifest, lease_ttl=None)
        lease = led.request_lease("w")
        for i in lease.indices:
            led.complete(i)
        assert led.lease(lease.lease_id) is None
        assert led.counts()["leases"] == 0

    def test_replay_rebuilds_exact_state(self, manifest):
        clock = FakeClock()
        led = WorkLedger(manifest, lease_ttl=5.0, clock=clock)
        rng = random.Random(7)
        while not led.drained:
            lease = led.request_lease(
                f"w{rng.randrange(3)}", max_cost=rng.choice([1, 6, 12])
            )
            if lease is None:
                clock.advance(10.0)
                led.expire()
                continue
            action = rng.random()
            if action < 0.3:
                clock.advance(10.0)
                led.expire()
            elif action < 0.4:
                led.quarantine(lease.indices[0])
            else:
                for i in lease.indices:
                    led.complete(i)
        replayed = WorkLedger.replay(manifest, led.log)
        assert [replayed.state(i) for i in range(len(replayed))] == [
            led.state(i) for i in range(len(led))
        ]
        assert replayed.counts() == led.counts()
        assert [l.lease_id for l in replayed.live_leases()] == [
            l.lease_id for l in led.live_leases()
        ]
        # Replay of the replay's log is a fixed point.
        again = WorkLedger.replay(manifest, replayed.log)
        assert again.counts() == led.counts()

    def test_replay_unknown_op_refused(self, manifest):
        with pytest.raises(ValueError, match="unknown ledger op"):
            WorkLedger.replay(manifest, [{"op": "meddle"}])


# ----------------------------------------------------------------------
# Coordinator (in-process transport)
# ----------------------------------------------------------------------


class TestCoordinator:
    def test_worker_drains_matches_serial(
        self, manifest, serial_matrix
    ):
        coord = Coordinator(manifest, lease_ttl=None)
        worker = SweepWorker(
            InProcessTransport(coord), worker_id="solo", workers=1
        )
        summary = worker.run()
        assert summary["cells"] == len(manifest["cells"])
        assert summary["refused"] == 0
        assert coord.acc.complete and coord.drained
        assert coord.acc.matrix() == serial_matrix

    def test_two_workers_split_the_manifest(
        self, manifest, serial_matrix, tiny_cells
    ):
        coord = Coordinator(manifest, lease_ttl=None)
        transport = InProcessTransport(coord)
        workers = [
            SweepWorker(transport, worker_id=w, workers=1)
            for w in ("alpha", "beta")
        ]
        # Alternate single steps so both demonstrably contribute.
        while not coord.drained:
            for worker in workers:
                worker.step()
        status = coord.status()
        assert set(status["workers"]) == {"alpha", "beta"}
        assert (
            status["workers"]["alpha"]["cells_completed"]
            + status["workers"]["beta"]["cells_completed"]
            == len(manifest["cells"])
        )
        assert coord.acc.matrix() == serial_matrix

    def test_submit_tampered_partial_refused(
        self, manifest, tiny_cells
    ):
        coord = Coordinator(manifest, lease_ttl=None)
        t = InProcessTransport(coord)
        lease = t.lease_request("w")
        partial = _partial_for(manifest, lease, tiny_cells)
        partial["manifest"] = json.loads(
            json.dumps(partial["manifest"])
        )
        partial["manifest"]["cells"][0]["seed"] = 999
        with pytest.raises(ValueError, match="tampered"):
            t.submit_partial(partial)
        # Nothing folded: the lease is still live and submittable.
        good = _partial_for(manifest, lease, tiny_cells)
        reply = t.submit_partial(good)
        assert reply["accepted"] == len(lease["cell_indices"])

    def test_submit_wrong_soc_refused(self, manifest, tiny_cells):
        coord = Coordinator(manifest, lease_ttl=None)
        t = InProcessTransport(coord)
        lease = t.lease_request("w")
        partial = _partial_for(manifest, lease, tiny_cells)
        partial["soc"] = dict(partial["soc"], num_tiles=99)
        with pytest.raises(ValueError, match="SoC"):
            t.submit_partial(partial)

    def test_submit_dead_lease_refused(self, manifest, tiny_cells):
        clock = FakeClock()
        coord = Coordinator(manifest, lease_ttl=5.0, clock=clock)
        t = InProcessTransport(coord)
        lease = t.lease_request("slow")
        clock.advance(10.0)
        # The expiry sweep runs on the next protocol call.
        thief = t.lease_request("thief")
        assert set(thief["cell_indices"]) & set(
            lease["cell_indices"]
        )
        with pytest.raises(ValueError, match="not live"):
            t.submit_partial(
                _partial_for(manifest, lease, tiny_cells)
            )
        assert not t.heartbeat(lease["lease_id"], "slow")["ok"]

    def test_submit_coverage_mismatch_refused(
        self, manifest, tiny_cells
    ):
        coord = Coordinator(manifest, lease_ttl=None)
        t = InProcessTransport(coord)
        lease = t.lease_request("w")
        partial = _partial_for(manifest, lease, tiny_cells)
        partial["cells"] = partial["cells"][:-1]  # truncated
        with pytest.raises(ValueError, match="do not match"):
            t.submit_partial(partial)

    def test_submit_wrong_slice_refused(self, manifest, tiny_cells):
        coord = Coordinator(manifest, lease_ttl=None)
        t = InProcessTransport(coord)
        lease = t.lease_request("w")
        doctored = dict(lease)
        doctored["cell_indices"] = list(lease["cell_indices"])[:-1]
        with pytest.raises(ValueError, match="declared slice"):
            t.submit_partial(
                _partial_for(manifest, doctored, tiny_cells)
            )

    def test_submit_not_a_lease_partial_refused(self, manifest):
        coord = Coordinator(manifest, lease_ttl=None)
        with pytest.raises(ValueError, match="not a repro-sweep"):
            coord.submit_partial({"format": "something-else"})

    def test_quarantined_failure_degrades(self, manifest, tiny_cells):
        coord = Coordinator(manifest, lease_ttl=None)
        t = InProcessTransport(coord)
        lease = t.lease_request("w", max_cost=10_000)  # everything
        failure = _failure_for(manifest, lease["cell_indices"][0])
        reply = t.submit_partial(
            _partial_for(manifest, lease, tiny_cells, [failure])
        )
        assert reply["quarantined"] == 1
        assert coord.drained
        assert not coord.acc.complete and coord.acc.degraded
        status = coord.status()
        assert status["degraded"] and status["drained"]
        assert status["quarantined"] == 1

    def test_status_reports_warmup_timeout_telemetry(self, manifest):
        coord = Coordinator(manifest, lease_ttl=None)
        t = InProcessTransport(coord)
        lease = t.lease_request("w")
        t.heartbeat(
            lease["lease_id"], "w", {"warmup_timeouts": 2}
        )
        t.heartbeat(
            lease["lease_id"], "w", {"warmup_timeouts": 3}
        )
        status = coord.status()
        assert status["workers"]["w"]["warmup_timeouts"] == 3
        assert status["warmup_timeouts"] == 3
        assert status["expected"] == len(manifest["cells"])
        assert not status["drained"]

    def test_status_includes_manifest_on_request(self, manifest):
        coord = Coordinator(manifest, lease_ttl=None)
        assert "manifest" not in coord.status()
        assert coord.status(include_manifest=True)["manifest"] == (
            manifest
        )

    def test_worker_refuses_soc_mismatch(self, manifest):
        coord = Coordinator(manifest, lease_ttl=None)
        wrong = dataclasses.replace(DEFAULT_SOC, num_tiles=2)
        worker = SweepWorker(
            InProcessTransport(coord), worker_id="w", soc=wrong
        )
        with pytest.raises(ValueError, match="SoC"):
            worker.run()


class TestCoordinatorJournal:
    def test_killed_coordinator_resumes_only_missing(
        self, manifest, tiny_cells, tmp_path, serial_matrix
    ):
        coord = Coordinator(manifest, lease_ttl=None,
                            out_dir=tmp_path)
        t = InProcessTransport(coord)
        first = t.lease_request("w", max_cost=12)
        t.submit_partial(_partial_for(manifest, first, tiny_cells))
        done = set(first["cell_indices"])
        # Simulate a SIGKILL: no close(), no discard — just drop it.
        del coord
        resumed = Coordinator.resume(tmp_path, lease_ttl=None)
        assert [
            i for i in range(len(manifest["cells"]))
            if resumed.ledger.state(i) == COMPLETED
        ] == sorted(done)
        # Only the missing cells get leased out again.
        t2 = InProcessTransport(resumed)
        lease = t2.lease_request("w2", max_cost=10_000)
        assert sorted(lease["cell_indices"]) == sorted(
            set(range(len(manifest["cells"]))) - done
        )
        t2.submit_partial(_partial_for(manifest, lease, tiny_cells))
        assert resumed.acc.complete
        assert resumed.acc.matrix() == serial_matrix

    def test_journal_carries_replayable_lease_log(
        self, manifest, tiny_cells, tmp_path
    ):
        coord = Coordinator(manifest, lease_ttl=None,
                            out_dir=tmp_path)
        t = InProcessTransport(coord)
        while not coord.drained:
            lease = t.lease_request("w")
            t.submit_partial(
                _partial_for(manifest, lease, tiny_cells)
            )
        coord.close()
        ops = CellJournal.read_events(
            tmp_path / "cells.jsonl", "lease-op"
        )
        replayed = WorkLedger.replay(manifest, ops)
        assert replayed.drained
        assert replayed.counts() == coord.ledger.counts()

    def test_foreign_journal_refused(self, manifest, tmp_path):
        other = cell_manifest(
            [ScenarioSpec(workload_set="A", num_tasks=7, seeds=(1,))]
        )
        Coordinator(other, lease_ttl=None, out_dir=tmp_path).close()
        with pytest.raises(ValueError, match="different sweep"):
            Coordinator(manifest, lease_ttl=None, out_dir=tmp_path)


# ----------------------------------------------------------------------
# Lease-expiry determinism (ISSUE satellite): any interleaving of
# worker deaths and re-leases yields byte-identical exports.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_setup():
    from test_reporting import GOLDEN_EXPORT_PATH, GOLDEN_EXPORT_SPECS

    manifest = cell_manifest(GOLDEN_EXPORT_SPECS)
    runner = ParallelRunner(workers=1)
    cells, failures = execute_lease(
        runner, GOLDEN_EXPORT_SPECS, None, DEFAULT_SOC,
        tuple(range(len(manifest["cells"]))),
    )
    assert not failures
    golden = json.loads(GOLDEN_EXPORT_PATH.read_text())
    return manifest, {c.index: c for c in cells}, golden["digests"]


class TestLeaseExpiryDeterminism:
    @pytest.mark.parametrize("trial", range(4))
    def test_any_death_interleaving_matches_golden(
        self, golden_setup, trial
    ):
        """Workers lease, die (expiry), steal and re-submit in a
        seeded random interleaving; the merged exports must carry the
        same pinned digests as the serial golden run, every time.
        Cells are precomputed (cell execution is a pure function of
        the payload) so the property runs many interleavings without
        re-simulating."""
        manifest, cells_by_index, digests = golden_setup
        clock = FakeClock()
        coord = Coordinator(manifest, lease_ttl=5.0, clock=clock)
        t = InProcessTransport(coord)
        rng = random.Random(trial)
        while not coord.drained:
            worker = f"w{rng.randrange(3)}"
            lease = t.lease_request(
                worker, max_cost=rng.choice([None, 1, 16, 64])
            )
            if lease is None:
                clock.advance(10.0)
                coord.expire_leases()
                continue
            roll = rng.random()
            if roll < 0.35:
                # Worker dies mid-lease: heartbeats stop, the TTL
                # runs out, the cells go back to the pool.
                clock.advance(10.0)
                coord.expire_leases()
                with pytest.raises(ValueError, match="not live"):
                    t.submit_partial(
                        _partial_for(manifest, lease, cells_by_index)
                    )
            else:
                t.submit_partial(
                    _partial_for(manifest, lease, cells_by_index)
                )
        assert coord.acc.complete
        matrix = coord.acc.matrix()
        actual = {
            "json": hashlib.sha256(
                sweep_to_json(matrix).encode()
            ).hexdigest()[:16],
            "csv": hashlib.sha256(
                sweep_to_csv(matrix).encode()
            ).hexdigest()[:16],
        }
        assert actual == digests


# ----------------------------------------------------------------------
# HTTP transport end-to-end
# ----------------------------------------------------------------------


class TestHttpTransport:
    def test_drain_over_http_with_worker_death(
        self, manifest, serial_matrix
    ):
        """One worker leases over HTTP and dies silently; a second
        worker steals the expired lease and drains the sweep to the
        exact serial matrix."""
        coord = Coordinator(manifest, lease_ttl=0.4)
        with CoordinatorServer(coord) as server:
            doomed = HttpTransport(server.url)
            stolen = doomed.lease_request("doomed")
            assert stolen is not None  # ...and never heard from again
            survivor = SweepWorker(
                HttpTransport(server.url),
                worker_id="survivor",
                workers=1,
                poll_interval=0.1,
            )
            summary = survivor.run()
        assert summary["cells"] == len(manifest["cells"])
        assert coord.acc.complete
        assert coord.acc.matrix() == serial_matrix
        status = coord.status()
        assert set(status["workers"]) >= {"doomed", "survivor"}

    def test_refusal_maps_to_value_error(self, manifest):
        coord = Coordinator(manifest, lease_ttl=None)
        with CoordinatorServer(coord) as server:
            t = HttpTransport(server.url)
            with pytest.raises(ValueError, match="not a repro-sweep"):
                t.submit_partial({"format": "nonsense"})
            with pytest.raises(ValueError, match="worker"):
                t._post("/lease", {})
            with pytest.raises(TransportError, match="HTTP 404"):
                t._post("/nonsense", {})

    def test_unreachable_coordinator_is_transport_error(self):
        t = HttpTransport("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(TransportError, match="unreachable"):
            t.sweep_status()

    def test_bad_url_refused(self):
        with pytest.raises(ValueError, match="http"):
            HttpTransport("ftp://example.com")

    def test_worker_survives_transport_blips(self, manifest):
        """A worker retries transport errors with backoff instead of
        dying — a flaky wire must not strand a lease."""
        coord = Coordinator(manifest, lease_ttl=None)
        inner = InProcessTransport(coord)

        class Flaky(InProcessTransport):
            def __init__(self):
                super().__init__(coord)
                self.failures = 2

            def lease_request(self, worker_id, max_cost=None):
                if self.failures:
                    self.failures -= 1
                    raise TransportError("blip")
                return inner.lease_request(worker_id, max_cost)

        worker = SweepWorker(
            Flaky(),
            worker_id="w",
            workers=1,
            supervision=Supervision(backoff_base=0.01),
        )
        summary = worker.run()
        assert summary["cells"] == len(manifest["cells"])


# ----------------------------------------------------------------------
# Server shutdown hardening
# ----------------------------------------------------------------------


class TestCoordinatorServerStop:
    def test_stop_is_idempotent(self, manifest):
        server = CoordinatorServer(Coordinator(manifest))
        server.start()
        server.stop()
        server.stop()  # second stop is a no-op, not a crash

    def test_stop_without_start(self, manifest):
        server = CoordinatorServer(Coordinator(manifest))
        server.stop()  # never started: still closes the socket

    def test_start_after_stop_refused(self, manifest):
        server = CoordinatorServer(Coordinator(manifest))
        server.start()
        server.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            server.start()

    def test_concurrent_stops_close_once(self, manifest):
        """stop() racing stop() from another thread: both return, the
        socket closes exactly once (no double-close error), and the
        discovery file is gone."""
        import threading

        server = CoordinatorServer(Coordinator(manifest))
        server.start()
        errors = []

        def stopper():
            try:
                server.stop()
            except Exception as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [
            threading.Thread(target=stopper) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_discovery_file_removed_on_stop(self, manifest, tmp_path):
        server = CoordinatorServer(Coordinator(manifest))
        server.start()
        discovery = tmp_path / "coordinator.json"
        server.publish_discovery(discovery)
        payload = json.loads(discovery.read_text())
        assert payload["url"] == server.url
        assert payload["manifest_digest"] == server.coordinator.digest
        server.stop()
        assert not discovery.exists()

    def test_discovery_removed_even_when_already_unlinked(
        self, manifest, tmp_path
    ):
        """A racing cleanup (or operator rm) deleting the file first
        must not turn stop() into a crash."""
        server = CoordinatorServer(Coordinator(manifest))
        server.start()
        discovery = tmp_path / "coordinator.json"
        server.publish_discovery(discovery)
        discovery.unlink()
        server.stop()  # no FileNotFoundError
        assert not discovery.exists()

    def test_requests_during_stop_do_not_leak_discovery(
        self, manifest, tmp_path
    ):
        """A worker hammering /status while stop() runs: the server
        stays coherent and the discovery file is still removed."""
        import threading

        server = CoordinatorServer(Coordinator(manifest))
        server.start()
        discovery = tmp_path / "coordinator.json"
        server.publish_discovery(discovery)
        transport = HttpTransport(server.url, timeout=1.0)
        halt = threading.Event()

        def hammer():
            while not halt.is_set():
                try:
                    transport.sweep_status()
                except (TransportError, ValueError):
                    return  # server went down mid-request: expected

        t = threading.Thread(target=hammer)
        t.start()
        try:
            server.stop()
        finally:
            halt.set()
            t.join(timeout=5)
        assert not t.is_alive()
        assert not discovery.exists()


# ----------------------------------------------------------------------
# Static sharding rides the same ledger
# ----------------------------------------------------------------------


class TestStaticShardsOnLedger:
    def test_run_shard_partial_unchanged(self, manifest):
        """The re-routed run_shard must emit byte-identical partial
        artifacts (slice, cost, digest) to the pre-refactor planner —
        the partial format is an on-disk compatibility surface."""
        from repro.experiments.sharding import run_shard

        plan = ShardPlan.from_manifest(manifest, 2)
        partial = run_shard(manifest, 1, 2)
        assert partial["shard"]["cell_indices"] == list(plan.shard(1))
        assert partial["shard"]["cost"] == plan.costs[1]
        assert partial["manifest_digest"] == plan.digest
