"""Tests for the full MoCA policy (scheduler + runtime on the engine)."""

import pytest

from repro.core.policy import MoCAPolicy
from repro.core.scheduler import SchedulerConfig
from repro.sim.engine import Simulator, run_simulation
from repro.sim.trace import TraceEvent


def _sim(soc, mem, tasks, policy=None, trace=False):
    policy = policy if policy is not None else MoCAPolicy()
    policy.reset()
    return Simulator(soc, tasks, policy, mem=mem, trace=trace), policy


class TestAdmission:
    def test_admits_onto_slots(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}") for i in range(6)]
        sim, policy = _sim(soc, mem, tasks)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert len(sim.running) == 4

    def test_priority_order(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}", priority=i)
            for i in range(6)
        ]
        sim, policy = _sim(soc, mem, tasks)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        running = {j.job_id for j in sim.running}
        # Top-4 priorities admitted (5, 4, 3, 2).
        assert running == {"t5", "t4", "t3", "t2"}

    def test_admission_grows_when_queue_drained(self, soc, mem,
                                                task_factory):
        tasks = [task_factory(task_id="only")]
        sim, policy = _sim(soc, mem, tasks)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        job = sim.running[0]
        # No backlog: the single admitted job gets an enlarged slot.
        assert job.tiles > SchedulerConfig().tiles_per_task

    def test_base_slots_under_backlog(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}") for i in range(8)]
        sim, policy = _sim(soc, mem, tasks)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert all(
            j.tiles == SchedulerConfig().tiles_per_task for j in sim.running
        )


class TestRegulation:
    def test_no_caps_without_contention(self, soc, mem, task_factory):
        # A lone application can never overflow the DRAM: Algorithm 2
        # must leave it unthrottled for its entire run.
        tasks = [task_factory(task_id="solo", network="alexnet")]
        result = run_simulation(soc, tasks, MoCAPolicy(), mem=mem)
        assert result.results[0].bw_reconfigs == 0

    def test_caps_under_contention(self, soc, mem, task_factory):
        # Four AlexNets oversubscribe the DRAM during their FC blocks.
        tasks = [task_factory(task_id=f"t{i}", network="alexnet")
                 for i in range(4)]
        policy = MoCAPolicy()
        policy.reset()
        result = run_simulation(soc, tasks, policy, mem=mem, trace=True)
        reconfigs = sum(r.bw_reconfigs for r in result.results)
        assert reconfigs > 0

    def test_caps_sum_within_bandwidth(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}", network="alexnet")
                 for i in range(4)]
        sim, policy = _sim(soc, mem, tasks)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        caps = [j.bw_cap for j in sim.running if j.bw_cap is not None]
        if caps:
            assert sum(caps) <= mem.dram_bandwidth * 1.3

    def test_memory_reconfig_cheap(self, soc, mem, task_factory):
        # Each bw reconfig costs ~8 cycles (not a 1 M thread migration).
        tasks = [task_factory(task_id=f"t{i}", network="alexnet")
                 for i in range(4)]
        result = run_simulation(soc, tasks, MoCAPolicy(), mem=mem)
        for r in result.results:
            if r.bw_reconfigs and not r.tile_repartitions:
                assert r.stall_cycles <= r.bw_reconfigs * 8 + 1e-6

    def test_scoreboard_retired_on_finish(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}", network="kws")
                 for i in range(2)]
        policy = MoCAPolicy()
        policy.reset()
        run_simulation(soc, tasks, policy, mem=mem)
        assert len(policy._runtime.scoreboard) == 0


class TestComputeRepartition:
    def test_rare_by_default(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}",
                         network=["kws", "squeezenet", "alexnet",
                                  "resnet50"][i % 4],
                         dispatch=i * 5e5)
            for i in range(8)
        ]
        result = run_simulation(soc, tasks, MoCAPolicy(), mem=mem)
        total_reparts = sum(r.tile_repartitions for r in result.results)
        # MoCA triggers compute repartition "much less frequently".
        assert total_reparts <= 2

    def test_can_be_disabled(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}", network="yolov2",
                              qos_target=1e6)
                 for i in range(2)]
        policy = MoCAPolicy(enable_compute_repartition=False)
        result = run_simulation(soc, tasks, policy, mem=mem)
        assert sum(r.tile_repartitions for r in result.results) == 0


class TestEndToEnd:
    def test_mixed_workload_finishes(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}",
                         network=["kws", "alexnet", "squeezenet",
                                  "googlenet", "yolo_lite"][i % 5],
                         dispatch=i * 3e5, priority=(i * 5) % 12)
            for i in range(10)
        ]
        result = run_simulation(soc, tasks, MoCAPolicy(), mem=mem)
        assert len(result.results) == 10

    def test_deterministic(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}", network="alexnet",
                         dispatch=i * 1e5)
            for i in range(4)
        ]
        r1 = run_simulation(soc, tasks, MoCAPolicy(), mem=mem)
        r2 = run_simulation(soc, tasks, MoCAPolicy(), mem=mem)
        for a, b in zip(r1.results, r2.results):
            assert a.finished_at == b.finished_at

    def test_high_priority_preferred_under_load(self, soc, mem,
                                                task_factory):
        tasks = []
        for i in range(12):
            tasks.append(task_factory(
                task_id=f"t{i:02d}", network="squeezenet",
                priority=(11 if i % 3 == 0 else 0), dispatch=0.0,
            ))
        result = run_simulation(soc, tasks, MoCAPolicy(), mem=mem)
        high = [r for r in result.results if r.priority == 11]
        low = [r for r in result.results if r.priority == 0]
        mean_high = sum(r.latency for r in high) / len(high)
        mean_low = sum(r.latency for r in low) / len(low)
        assert mean_high < mean_low
