"""Tests for distributed sweep sharding (ISSUE tentpole): ShardPlan
balancing/determinism, run_shard partial artifacts, and the merge
path's bit-identity with single-host runs."""

import copy
import hashlib
import json
import random

import pytest

from repro.experiments.parallel import ParallelRunner
from repro.experiments.results import (
    SweepResults,
    cell_from_dict,
    cell_manifest,
    cell_to_dict,
)
from repro.experiments.runner import default_policies, run_matrix
from repro.experiments.faults import FaultPlan
from repro.experiments.sharding import (
    JOURNAL_NAME,
    PARTIAL_FORMAT,
    CellJournal,
    ShardPlan,
    manifest_digest,
    manifest_specs,
    merge_partials,
    partial_from_json,
    partial_to_json,
    run_shard,
)
from repro.reporting import sweep_to_csv, sweep_to_json
from repro.scenarios import ScenarioSpec
from repro.sim.qos import QosLevel

SPECS = [
    ScenarioSpec(
        workload_set="A", qos_level=QosLevel.MEDIUM,
        num_tasks=12, seeds=(1, 2),
    ),
    ScenarioSpec(
        workload_set="A", qos_level=QosLevel.LIGHT,
        num_tasks=8, seeds=(3,),
    ),
]


@pytest.fixture(scope="module")
def manifest():
    return cell_manifest(SPECS)


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix(SPECS)


@pytest.fixture(scope="module")
def partials(manifest):
    return [run_shard(manifest, i, 3) for i in range(3)]


class TestManifestDigest:
    def test_digest_stable_and_order_sensitive(self, manifest):
        assert manifest_digest(manifest) == manifest_digest(
            copy.deepcopy(manifest)
        )
        other = cell_manifest(list(reversed(SPECS)))
        assert manifest_digest(other) != manifest_digest(manifest)

    def test_digest_sensitive_to_any_knob(self, manifest):
        from dataclasses import replace

        bumped = cell_manifest(
            [replace(SPECS[0], num_tasks=13), SPECS[1]]
        )
        assert manifest_digest(bumped) != manifest_digest(manifest)

    def test_manifest_specs_round_trip(self, manifest):
        assert manifest_specs(manifest) == SPECS

    def test_manifest_specs_rejects_tampering(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["cells"] = broken["cells"][:-1]
        with pytest.raises(ValueError, match="round-trip"):
            manifest_specs(broken)
        broken = copy.deepcopy(manifest)
        broken["cells"][0]["policy"] = "impostor"
        with pytest.raises(ValueError, match="round-trip"):
            manifest_specs(broken)
        with pytest.raises(ValueError, match="manifest"):
            manifest_specs({"scenarios": []})
        # Wrong-typed sections get the malformed-structure message,
        # not a garbled "missing <TypeError text>".
        with pytest.raises(ValueError, match="malformed structure"):
            manifest_specs({"scenarios": 5, "policies": []})


class TestShardPlan:
    def test_every_cell_in_exactly_one_shard(self, manifest):
        for n in (1, 2, 3, 5):
            plan = ShardPlan.from_manifest(manifest, n)
            flat = sorted(
                i for shard in plan.assignments for i in shard
            )
            assert flat == list(range(len(manifest["cells"])))

    def test_deterministic(self, manifest):
        a = ShardPlan.from_manifest(manifest, 4)
        b = ShardPlan.from_manifest(copy.deepcopy(manifest), 4)
        assert a == b

    def test_cost_aware_balance(self, manifest):
        """LPT balancing: no shard's task-count load exceeds the
        ideal mean by more than one cell's worth."""
        plan = ShardPlan.from_manifest(manifest, 3)
        total = sum(plan.costs)
        heaviest_cell = max(
            spec["spec"]["num_tasks"] for spec in manifest["scenarios"]
        )
        for load in plan.costs:
            assert load <= total / plan.num_shards + heaviest_cell

    def test_more_shards_than_cells_gives_empty_shards(self, manifest):
        cells = len(manifest["cells"])
        plan = ShardPlan.from_manifest(manifest, cells + 5)
        non_empty = [s for s in plan.assignments if s]
        assert len(non_empty) == cells
        assert all(len(s) == 1 for s in non_empty)

    def test_bad_inputs(self, manifest):
        with pytest.raises(ValueError, match=">= 1"):
            ShardPlan.from_manifest(manifest, 0)
        plan = ShardPlan.from_manifest(manifest, 2)
        with pytest.raises(ValueError, match="outside"):
            plan.shard(2)


class TestRunShard:
    def test_partial_is_self_describing(self, manifest, partials):
        digest = manifest_digest(manifest)
        seen = []
        for i, partial in enumerate(partials):
            assert partial["format"] == PARTIAL_FORMAT
            assert partial["manifest_digest"] == digest
            assert partial["manifest"] == manifest
            shard = partial["shard"]
            assert (shard["index"], shard["count"]) == (i, 3)
            assert shard["wall_seconds"] >= 0
            assert sorted(c["index"] for c in partial["cells"]) == list(
                shard["cell_indices"]
            )
            seen.extend(shard["cell_indices"])
        assert sorted(seen) == list(range(len(manifest["cells"])))

    def test_partial_json_round_trip(self, partials):
        back = partial_from_json(partial_to_json(partials[0]))
        assert back == partials[0]
        with pytest.raises(ValueError, match=PARTIAL_FORMAT.split("/")[0]):
            partial_from_json(json.dumps({"format": "other"}))

    def test_cell_dict_round_trip(self, partials):
        for payload in partials[0]["cells"]:
            cell = cell_from_dict(payload)
            assert cell_to_dict(cell) == payload

    def test_bad_shard_index_rejected(self, manifest):
        with pytest.raises(ValueError, match="outside"):
            run_shard(manifest, 2, 2)

    def test_missing_policy_factory_rejected(self, manifest):
        with pytest.raises(ValueError, match="moca"):
            run_shard(
                manifest, 0, 2,
                policies={"prema": default_policies()["prema"]},
            )

    def test_reuses_caller_runner(self, manifest):
        runner = ParallelRunner(workers=1)
        partial = run_shard(manifest, 0, 2, runner=runner)
        assert partial["shard"]["workers"] == 1
        assert partial["shard"]["mode"] == "serial"


class TestMergeIdentity:
    def test_merged_matrix_identical_to_unsharded(
        self, partials, serial_matrix
    ):
        """ISSUE tentpole: merging all partials reproduces the
        unsharded matrix bit-for-bit."""
        acc = SweepResults.from_partials(partials)
        matrix = acc.matrix()
        assert set(matrix) == set(serial_matrix)
        for label, cell in serial_matrix.items():
            for policy, result in cell.items():
                assert matrix[label][policy].per_seed == result.per_seed

    def test_merge_order_independent_and_exports_byte_identical(
        self, partials, serial_matrix
    ):
        """ISSUE acceptance: JSON/CSV export bytes of the merged
        matrix equal the single-host run's, whatever order the
        partials arrive in."""
        want_json = sweep_to_json(serial_matrix)
        want_csv = sweep_to_csv(serial_matrix)
        for trial in range(3):
            shuffled = partials[:]
            random.Random(trial).shuffle(shuffled)
            matrix = SweepResults.from_partials(shuffled).matrix()
            assert sweep_to_json(matrix) == want_json
            assert sweep_to_csv(matrix) == want_csv

    def test_single_shard_merge(self, manifest, serial_matrix):
        partial = run_shard(manifest, 0, 1)
        matrix = merge_partials([partial]).matrix()
        assert sweep_to_json(matrix) == sweep_to_json(serial_matrix)

    def test_merged_exports_match_pinned_goldens(self):
        """ISSUE acceptance: the shard/merge path reproduces the
        golden-pinned export digests (tests/goldens/sweep_exports.json)
        that the one-host exporters are held to."""
        from test_reporting import GOLDEN_EXPORT_PATH, GOLDEN_EXPORT_SPECS

        manifest = cell_manifest(GOLDEN_EXPORT_SPECS)
        merged = merge_partials(
            [run_shard(manifest, i, 2) for i in (1, 0)]
        ).matrix()
        golden = json.loads(GOLDEN_EXPORT_PATH.read_text())
        actual = {
            "json": hashlib.sha256(
                sweep_to_json(merged).encode()
            ).hexdigest()[:16],
            "csv": hashlib.sha256(
                sweep_to_csv(merged).encode()
            ).hexdigest()[:16],
        }
        assert actual == golden["digests"]


class TestMergeRefusals:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no partials"):
            merge_partials([])

    def test_gap_detected_with_absent_shard_named(self, partials):
        with pytest.raises(ValueError, match=r"absent shard\(s\): \['2/3'\]"):
            merge_partials([partials[0], partials[2]])
        acc = SweepResults.from_partials(
            [partials[0], partials[2]], require_complete=False
        )
        assert not acc.complete
        assert acc.missing_indices() == sorted(
            partials[1]["shard"]["cell_indices"]
        )

    def test_overlap_detected(self, partials):
        """An artifact padded with another shard's cell is refused —
        the plan check catches it before the cell-level overlap check
        (which stays as defense in depth behind it)."""
        overlapping = copy.deepcopy(partials[1])
        stolen = copy.deepcopy(partials[0]["cells"][0])
        overlapping["cells"].append(stolen)
        overlapping["shard"]["cell_indices"] = sorted(
            overlapping["shard"]["cell_indices"] + [stolen["index"]]
        )
        with pytest.raises(ValueError, match="deterministic plan"):
            merge_partials([partials[0], overlapping, partials[2]])

    def test_duplicate_shard_rejected(self, partials):
        with pytest.raises(ValueError, match="more than once"):
            merge_partials(list(partials) + [partials[0]])

    def test_mixed_manifest_digests_rejected(self, manifest):
        from dataclasses import replace

        other = cell_manifest([replace(SPECS[0], num_tasks=13), SPECS[1]])
        a = run_shard(manifest, 0, 2)
        b = run_shard(other, 1, 2)
        with pytest.raises(ValueError, match="different sweeps"):
            merge_partials([a, b])

    def test_mixed_soc_configs_rejected(self, manifest, partials):
        """Review finding: the manifest digest describes the workload
        only; partials simulated under different hardware models must
        refuse to merge."""
        import dataclasses as dc

        from repro.config import DEFAULT_SOC

        other_soc = dc.replace(DEFAULT_SOC, num_tiles=4)
        foreign = run_shard(manifest, 1, 3, soc=other_soc)
        with pytest.raises(ValueError, match="SoC configurations"):
            merge_partials([partials[0], foreign, partials[2]])

    def test_partials_record_the_soc(self, partials):
        import dataclasses as dc

        from repro.config import DEFAULT_SOC

        assert partials[0]["soc"] == dc.asdict(DEFAULT_SOC)

    def test_mixed_shard_counts_rejected(self, manifest, partials):
        half = run_shard(manifest, 0, 2)
        with pytest.raises(ValueError, match="different shard plans"):
            merge_partials([half, partials[2]])

    def test_tampered_digest_rejected(self, partials):
        forged = copy.deepcopy(partials[0])
        forged["manifest"]["cells"][0]["seed"] = 999
        with pytest.raises(ValueError, match="tampered"):
            merge_partials([forged])

    def test_truncated_cells_rejected(self, partials):
        truncated = copy.deepcopy(partials[0])
        truncated["cells"] = truncated["cells"][:-1]
        with pytest.raises(ValueError, match="declared slice"):
            merge_partials([truncated])

    def test_slice_disagreeing_with_plan_rejected(self, partials):
        """Review finding: a partial whose declared slice differs from
        the deterministic plan (e.g. built by a different planner)
        would corrupt the gap diagnostics; it is refused outright."""
        a = copy.deepcopy(partials[0])
        b = copy.deepcopy(partials[1])
        # Swap one cell between the two shards: both stay internally
        # consistent (cells match their declared slices) but neither
        # slice matches the plan any more.
        cell_a, cell_b = a["cells"].pop(), b["cells"].pop()
        a["cells"].append(cell_b)
        b["cells"].append(cell_a)
        a["shard"]["cell_indices"] = sorted(
            c["index"] for c in a["cells"]
        )
        b["shard"]["cell_indices"] = sorted(
            c["index"] for c in b["cells"]
        )
        with pytest.raises(ValueError, match="deterministic plan"):
            merge_partials([a, b, partials[2]])

    def test_shard_index_outside_plan_rejected(self, partials):
        rogue = copy.deepcopy(partials[0])
        rogue["shard"]["index"] = 5
        with pytest.raises(ValueError, match="outside"):
            merge_partials([rogue] + list(partials[1:]))

    def test_malformed_cell_payload_rejected_cleanly(self, partials):
        """Review finding: a corrupt cell dict must surface as the
        same ValueError family as every other refusal, not a raw
        KeyError traceback."""
        mangled = copy.deepcopy(partials[0])
        del mangled["cells"][0]["summary"]
        with pytest.raises(ValueError, match="malformed cell"):
            merge_partials([mangled])

    def test_foreign_document_rejected(self, partials):
        alien = {"format": "something-else"}
        with pytest.raises(ValueError, match="repro-sweep-partial"):
            merge_partials([alien, partials[0]])

    def test_truncated_top_level_rejected_cleanly(self, partials):
        """Review finding: a format-tagged document missing its
        top-level keys must refuse with a ValueError, not leak a
        KeyError traceback from field access."""
        stub = {"format": PARTIAL_FORMAT}
        with pytest.raises(ValueError, match="malformed partial"):
            merge_partials([stub])
        with pytest.raises(ValueError, match="malformed partial"):
            partial_from_json(json.dumps(stub))
        headless = copy.deepcopy(partials[0])
        del headless["shard"]["cell_indices"]
        with pytest.raises(ValueError, match="shard"):
            merge_partials([headless])
        # Wrongly typed shard fields are refused too, not leaked as
        # TypeErrors from the comparisons downstream.
        stringly = copy.deepcopy(partials[0])
        stringly["shard"]["index"] = "0"
        with pytest.raises(ValueError, match="typed"):
            merge_partials([stringly])
        numeric = copy.deepcopy(partials[0])
        numeric["manifest_digest"] = 5
        with pytest.raises(ValueError, match="typed"):
            merge_partials([numeric])
        # Corrupt metric values refuse at decode, not deep in export
        # arithmetic.
        stringy_metric = copy.deepcopy(partials[0])
        stringy_metric["cells"][0]["summary"]["sla_rate"] = "0.9"
        with pytest.raises(ValueError, match="sla_rate"):
            merge_partials([stringy_metric])


class TestShardMergeProperty:
    """ISSUE satellite: for random specs and any shard count, merging
    shuffled partials reproduces the unsharded sweep exactly."""

    @pytest.mark.parametrize("case", range(4))
    def test_random_specs_any_shard_count(self, case):
        from dataclasses import replace

        from test_scenario_properties import random_spec

        rng = random.Random(5150 + case)
        specs = []
        for i in range(rng.randrange(1, 3)):
            spec = random_spec(100 * case + i)
            specs.append(
                replace(spec, num_tasks=min(spec.num_tasks, 10),
                        name=f"prop-shard-{case}-{i}")
            )
        manifest = cell_manifest(specs)
        num_shards = rng.randrange(1, len(manifest["cells"]) + 2)
        partials = [
            run_shard(manifest, i, num_shards)
            for i in range(num_shards)
        ]
        rng.shuffle(partials)
        merged = SweepResults.from_partials(partials).matrix()
        serial = run_matrix(specs)
        assert sweep_to_json(merged) == sweep_to_json(serial)
        assert sweep_to_csv(merged) == sweep_to_csv(serial)


class TestIterCellsIndices:
    def test_subset_keeps_global_indices(self):
        runner = ParallelRunner(workers=1)
        wanted = [5, 0, 3]
        cells = list(runner.iter_cells(SPECS, indices=wanted))
        assert sorted(c.index for c in cells) == sorted(wanted)

    def test_empty_subset_yields_nothing(self):
        runner = ParallelRunner(workers=1)
        assert list(runner.iter_cells(SPECS, indices=[])) == []

    def test_bad_indices_rejected(self):
        runner = ParallelRunner(workers=1)
        with pytest.raises(ValueError, match="outside"):
            list(runner.iter_cells(SPECS, indices=[0, 999]))
        with pytest.raises(ValueError, match="duplicate"):
            list(runner.iter_cells(SPECS, indices=[1, 1]))


class TestShardFailures:
    """Partials carry quarantined failures (ISSUE tentpole): merge
    distinguishes 'failed' from 'missing'."""

    @pytest.fixture(scope="class")
    def degraded_partial(self, manifest):
        from repro.experiments.parallel import Supervision

        return run_shard(
            manifest, 0, 1,
            supervision=Supervision(
                max_retries=0, backoff_base=0.0,
                fault_plan=FaultPlan.parse(
                    "transient:cells=0:attempts=all"
                ),
            ),
        )

    def test_supervised_shard_quarantines_into_partial(
        self, degraded_partial, manifest
    ):
        (failure,) = degraded_partial["failures"]
        assert failure["index"] == 0
        assert failure["kind"] == "error"
        covered = sorted(
            [c["index"] for c in degraded_partial["cells"]]
            + [f["index"] for f in degraded_partial["failures"]]
        )
        assert covered == list(range(len(manifest["cells"])))

    def test_degraded_partial_round_trips(self, degraded_partial):
        back = partial_from_json(partial_to_json(degraded_partial))
        assert back == degraded_partial

    def test_merge_folds_failures_as_failed_not_missing(
        self, degraded_partial
    ):
        acc = merge_partials([degraded_partial], require_complete=False)
        assert acc.failed_indices() == [0]
        assert acc.degraded
        # ... and a complete merge refuses, pointing at resume.
        with pytest.raises(ValueError, match="resume"):
            merge_partials([degraded_partial])

    def test_unsupervised_shard_records_no_failures(self, partials):
        assert all(p["failures"] == [] for p in partials)

    def test_legacy_partials_without_failures_key_accepted(
        self, partials, serial_matrix
    ):
        legacy = [copy.deepcopy(p) for p in partials]
        for p in legacy:
            del p["failures"]
        acc = merge_partials(legacy)
        assert acc.matrix() == serial_matrix

    def test_wrongly_typed_failures_rejected(self, partials):
        bad = copy.deepcopy(partials[0])
        bad["failures"] = "nope"
        with pytest.raises(ValueError, match="failures"):
            partial_from_json(partial_to_json(bad))

    def test_failure_outside_slice_rejected(self, partials):
        bad = copy.deepcopy(partials[0])
        bad["failures"] = [
            dict(
                index=10**6, spec_index=0, label="x", policy="moca",
                seed=1, kind="error", attempts=1, message="m",
            )
        ]
        with pytest.raises(ValueError, match="declared slice"):
            merge_partials([bad], require_complete=False)


class TestCellJournal:
    """The crash-resume checkpoint journal: per-line checksums,
    corruption degrades to a re-run, headers bind to the sweep."""

    @pytest.fixture()
    def soc_dict(self):
        import dataclasses

        from repro.config import DEFAULT_SOC

        return dataclasses.asdict(DEFAULT_SOC)

    @pytest.fixture()
    def cells(self, partials):
        return [cell_from_dict(c) for c in partials[0]["cells"]]

    def _open(self, tmp_path, manifest):
        from repro.config import DEFAULT_SOC

        return CellJournal.open(tmp_path, manifest, DEFAULT_SOC)

    def test_round_trip_exact(self, tmp_path, manifest, cells, soc_dict):
        from repro.experiments.results import CellFailure

        # Quarantine an index the cells don't cover (a journaled
        # success would supersede the failure on replay).
        free = next(
            i for i in range(len(manifest["cells"]))
            if i not in {c.index for c in cells}
        )
        entry = manifest["cells"][free]
        failure = CellFailure(
            index=free, spec_index=entry["spec_index"],
            label=SPECS[entry["spec_index"]].label,
            policy=entry["policy"], seed=entry["seed"], kind="crash",
            attempts=2, message="boom",
        )
        with self._open(tmp_path, manifest) as journal:
            for cell in cells:
                journal.append_cell(cell)
            journal.append_failure(failure)
        back_cells, back_failures, skipped = CellJournal.read(
            tmp_path / JOURNAL_NAME,
            manifest_digest(manifest), soc_dict,
        )
        assert skipped == 0
        assert back_cells == sorted(cells, key=lambda c: c.index)
        assert back_failures == [failure]

    def test_corrupted_line_skipped_not_trusted(
        self, tmp_path, manifest, cells, soc_dict, capsys
    ):
        with self._open(tmp_path, manifest) as journal:
            journal.append_cell(cells[0])
            journal.append_cell(cells[1], corrupt=True)
        back, _, skipped = CellJournal.read(
            tmp_path / JOURNAL_NAME,
            manifest_digest(manifest), soc_dict,
        )
        assert skipped == 1
        assert [c.index for c in back] == [cells[0].index]
        assert "re-run" in capsys.readouterr().err

    def test_torn_tail_skipped(self, tmp_path, manifest, cells, soc_dict):
        path = tmp_path / JOURNAL_NAME
        with self._open(tmp_path, manifest) as journal:
            journal.append_cell(cells[0])
        with path.open("ab") as fh:
            fh.write(b'{"kind":"cell","sha2')  # the crash, mid-write
        back, _, skipped = CellJournal.read(
            path, manifest_digest(manifest), soc_dict
        )
        assert skipped == 1
        assert [c.index for c in back] == [cells[0].index]

    def test_wrong_digest_refused(self, tmp_path, manifest, soc_dict):
        with self._open(tmp_path, manifest):
            pass
        with pytest.raises(ValueError, match="different sweep"):
            CellJournal.read(
                tmp_path / JOURNAL_NAME, "0" * 64, soc_dict
            )

    def test_tampered_header_refused(self, tmp_path, manifest, soc_dict):
        """The header's digest is recomputed from its embedded
        manifest — editing one without the other is caught."""
        path = tmp_path / JOURNAL_NAME
        with self._open(tmp_path, manifest):
            pass
        lines = path.read_bytes().splitlines(keepends=True)
        entry = json.loads(lines[0])
        entry["data"]["manifest_digest"] = "0" * 64
        canonical = json.dumps(
            entry["data"], sort_keys=True, separators=(",", ":")
        )
        entry["sha256"] = hashlib.sha256(canonical.encode()).hexdigest()
        path.write_bytes(json.dumps(entry).encode() + b"\n")
        with pytest.raises(ValueError, match="journal"):
            CellJournal.read(path, manifest_digest(manifest), soc_dict)

    def test_reopen_appends_and_foreign_journal_refused(
        self, tmp_path, manifest, cells, soc_dict
    ):
        with self._open(tmp_path, manifest) as journal:
            journal.append_cell(cells[0])
        with self._open(tmp_path, manifest) as journal:
            journal.append_cell(cells[1])
        back, _, skipped = CellJournal.read(
            tmp_path / JOURNAL_NAME,
            manifest_digest(manifest), soc_dict,
        )
        assert skipped == 0
        assert sorted(c.index for c in back) == sorted(
            c.index for c in cells[:2]
        )
        from repro.config import DEFAULT_SOC
        from dataclasses import replace

        other = cell_manifest([replace(SPECS[0], num_tasks=99)])
        with pytest.raises(ValueError, match="different sweep"):
            CellJournal.open(tmp_path, other, DEFAULT_SOC)

    def test_success_supersedes_failure_on_replay(
        self, tmp_path, manifest, cells, soc_dict
    ):
        from repro.experiments.results import CellFailure

        target = cells[0]
        spec_index, policy, seed = (
            target.spec_index, target.policy, target.seed
        )
        failure = CellFailure(
            index=target.index, spec_index=spec_index,
            label=target.label, policy=policy, seed=seed,
            kind="error", attempts=1, message="first try",
        )
        with self._open(tmp_path, manifest) as journal:
            journal.append_failure(failure)
            journal.append_cell(target)  # the resumed re-run
        back_cells, back_failures, _ = CellJournal.read(
            tmp_path / JOURNAL_NAME,
            manifest_digest(manifest), soc_dict,
        )
        assert [c.index for c in back_cells] == [target.index]
        assert back_failures == []

    def test_discard_removes_the_file(self, tmp_path, manifest):
        journal = self._open(tmp_path, manifest)
        path = tmp_path / JOURNAL_NAME
        assert path.exists()
        journal.discard()
        assert not path.exists()


class TestJournalExtensionEvents:
    """PR 8: the coordinator piggybacks its lease-op audit trail on
    the cell journal as checksummed *extension events*.  ``read()``
    must tolerate kinds it does not aggregate (silently — they are
    not damage), and ``read_events()`` must recover them in order."""

    @pytest.fixture()
    def soc_dict(self):
        import dataclasses

        from repro.config import DEFAULT_SOC

        return dataclasses.asdict(DEFAULT_SOC)

    @pytest.fixture()
    def cells(self, partials):
        return [cell_from_dict(c) for c in partials[0]["cells"]]

    def _open(self, tmp_path, manifest):
        from repro.config import DEFAULT_SOC

        return CellJournal.open(tmp_path, manifest, DEFAULT_SOC)

    def test_read_ignores_extension_events_silently(
        self, tmp_path, manifest, cells, soc_dict, capsys
    ):
        with self._open(tmp_path, manifest) as journal:
            journal.append_event("lease-op", {"op": "lease", "id": 1})
            journal.append_cell(cells[0])
            journal.append_event("lease-op", {"op": "expire", "id": 1})
        back, failures, skipped = CellJournal.read(
            tmp_path / JOURNAL_NAME,
            manifest_digest(manifest), soc_dict,
        )
        assert skipped == 0  # extension lines are not damage
        assert [c.index for c in back] == [cells[0].index]
        assert failures == []
        assert capsys.readouterr().err == ""

    def test_read_events_in_journal_order(
        self, tmp_path, manifest, cells
    ):
        ops = [{"op": "lease", "id": i} for i in range(5)]
        with self._open(tmp_path, manifest) as journal:
            for op in ops[:3]:
                journal.append_event("lease-op", op)
            journal.append_cell(cells[0])
            for op in ops[3:]:
                journal.append_event("lease-op", op)
            journal.append_event("other-kind", {"op": "noise"})
        path = tmp_path / JOURNAL_NAME
        assert CellJournal.read_events(path, "lease-op") == ops
        assert CellJournal.read_events(path, "other-kind") == [
            {"op": "noise"}
        ]
        assert CellJournal.read_events(path, "absent") == []

    def test_damaged_event_lines_skipped(
        self, tmp_path, manifest
    ):
        with self._open(tmp_path, manifest) as journal:
            journal.append_event("lease-op", {"op": "lease", "id": 1})
        path = tmp_path / JOURNAL_NAME
        with path.open("ab") as fh:
            fh.write(b'{"kind":"lease-op","sha2')  # torn tail
        assert CellJournal.read_events(path, "lease-op") == [
            {"op": "lease", "id": 1}
        ]

    def test_reserved_kinds_refused(self, tmp_path, manifest):
        with self._open(tmp_path, manifest) as journal:
            for kind in ("header", "cell", "failure"):
                with pytest.raises(ValueError, match="reserved"):
                    journal.append_event(kind, {})
