"""Tests for repro.sim.job (tasks, jobs, results)."""

import pytest

from repro.sim.job import Job, JobPhase, Task, TaskResult, results_from_jobs


class TestTaskValidation:
    def test_valid_task(self, task_factory):
        task = task_factory(task_id="x", priority=11)
        assert task.task_id == "x"
        assert task.deadline == task.dispatch_cycle + task.qos_target_cycles

    def test_negative_dispatch_raises(self, task_factory):
        with pytest.raises(ValueError):
            task_factory(dispatch=-1.0)

    @pytest.mark.parametrize("priority", [-1, 12])
    def test_priority_range(self, task_factory, priority):
        with pytest.raises(ValueError):
            task_factory(priority=priority)

    def test_nonpositive_target_raises(self, task_factory):
        with pytest.raises(ValueError):
            task_factory(qos_target=0.0)


class TestJob:
    def test_initial_state(self, task_factory):
        job = Job(task=task_factory())
        assert job.phase is JobPhase.PENDING
        assert job.block_idx == 0
        assert job.at_block_boundary
        assert job.tiles == 0

    def test_num_blocks(self, task_factory):
        task = task_factory()
        job = Job(task=task)
        assert job.num_blocks == len(task.cost.blocks)
        assert job.remaining_blocks == job.num_blocks

    def test_current_block(self, task_factory):
        task = task_factory()
        job = Job(task=task)
        assert job.current_block is task.cost.blocks[0]

    def test_stall_check(self, task_factory):
        job = Job(task=task_factory())
        job.stall_until = 100.0
        assert job.is_stalled(50.0)
        assert not job.is_stalled(100.0)

    def test_latency_requires_finish(self, task_factory):
        job = Job(task=task_factory())
        with pytest.raises(ValueError):
            _ = job.latency

    def test_latency_and_sla(self, task_factory):
        task = task_factory(dispatch=100.0, qos_target=1000.0)
        job = Job(task=task)
        job.finished_at = 900.0
        assert job.latency == pytest.approx(800.0)
        assert job.met_sla
        job.finished_at = 1200.0
        assert not job.met_sla


class TestTaskResult:
    def _finished_job(self, task_factory):
        task = task_factory(dispatch=100.0, qos_target=5000.0)
        job = Job(task=task)
        job.started_at = 400.0
        job.finished_at = 2100.0
        return job

    def test_from_job(self, task_factory):
        result = TaskResult.from_job(self._finished_job(task_factory))
        assert result.latency == pytest.approx(2000.0)
        assert result.runtime == pytest.approx(1700.0)
        assert result.wait_cycles == pytest.approx(300.0)
        assert result.met_sla

    def test_slowdown(self, task_factory):
        result = TaskResult.from_job(self._finished_job(task_factory))
        assert result.slowdown == pytest.approx(
            result.latency / result.isolated_cycles
        )

    def test_unfinished_raises(self, task_factory):
        job = Job(task=task_factory())
        with pytest.raises(ValueError):
            TaskResult.from_job(job)

    def test_results_sorted(self, task_factory):
        jobs = []
        for tid in ("b", "a", "c"):
            task = task_factory(task_id=tid)
            job = Job(task=task)
            job.started_at = 0.0
            job.finished_at = 10.0
            jobs.append(job)
        results = results_from_jobs(jobs)
        assert [r.task_id for r in results] == ["a", "b", "c"]
