"""Tests for repro.sim.plan: AllocationPlan, AllocationController,
DecisionCadence — the declarative policy↔engine seam."""

import pytest

from repro.sim.engine import SimulationError, Simulator, run_simulation
from repro.sim.job import JobPhase
from repro.sim.plan import (
    CADENCE_MODES,
    EMPTY_PLAN,
    AllocationPlan,
    DecisionCadence,
)
from repro.sim.policy import (
    COMPUTE_RECONFIG_CYCLES,
    MEMORY_RECONFIG_CYCLES,
    Policy,
)


class _IdlePolicy(Policy):
    """Plan-emitting policy that never wants anything (tests drive
    the controller directly)."""

    name = "idle"

    def decide(self, sim):
        return EMPTY_PLAN


class _PlannedPairs(Policy):
    """Declarative twin of the engine tests' greedy 2-tile policy."""

    name = "planned-pairs"

    def decide(self, sim):
        free = sim.free_tiles
        admissions = []
        for job in sim.ready:
            if free < 2:
                break
            admissions.append((job.job_id, 2))
            free -= 2
        return AllocationPlan(admissions=tuple(admissions))


def _sim(soc, mem, task_factory, n=2, policy=None, **kwargs):
    tasks = [task_factory(task_id=f"t{i}") for i in range(n)]
    policy = policy if policy is not None else _IdlePolicy()
    policy.reset()
    return Simulator(soc, tasks, policy, mem=mem, **kwargs)


class TestAllocationPlanValueObject:
    def test_empty_plan(self):
        assert EMPTY_PLAN.is_empty
        assert AllocationPlan() == EMPTY_PLAN
        assert EMPTY_PLAN.job_ids() == ()

    def test_plans_are_hashable_and_diffable(self):
        a = AllocationPlan(admissions=(("t0", 2),))
        b = AllocationPlan(admissions=(("t0", 2),))
        c = AllocationPlan(admissions=(("t0", 4),))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_lists_coerced_to_tuples(self):
        plan = AllocationPlan(
            admissions=[("t0", 2)], bw_caps=[("t1", None)],
            preemptions=["t2"],
        )
        assert plan.admissions == (("t0", 2),)
        assert plan.bw_caps == (("t1", None),)
        assert plan.preemptions == ("t2",)
        assert plan.job_ids() == ("t0", "t1", "t2")

    def test_duplicate_job_in_field_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AllocationPlan(admissions=(("t0", 2), ("t0", 4)))
        with pytest.raises(ValueError, match="duplicate"):
            AllocationPlan(preemptions=("t0", "t0"))

    def test_preempt_plus_retile_rejected(self):
        with pytest.raises(ValueError, match="preempts and re-tiles"):
            AllocationPlan(preemptions=("t0",), tiles=(("t0", 4),))

    def test_malformed_pairs_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            AllocationPlan(tiles=(("t0", 1, 2),))


class TestControllerDiffing:
    def test_empty_plan_is_noop_and_keeps_epoch(self, soc, mem,
                                                task_factory):
        sim = _sim(soc, mem, task_factory)
        epoch = sim._alloc_epoch
        assert sim.controller.apply(EMPTY_PLAN) == 0
        assert sim.controller.apply(None) == 0
        assert sim._alloc_epoch == epoch
        assert sim.controller.plans_noop == 2
        assert sim.controller.plans_applied == 0

    def test_unknown_job_raises_simulation_error(self, soc, mem,
                                                 task_factory):
        sim = _sim(soc, mem, task_factory)
        with pytest.raises(SimulationError, match="unknown job"):
            sim.controller.apply(
                AllocationPlan(admissions=(("ghost", 2),))
            )

    def test_finished_job_raises_simulation_error(self, soc, mem,
                                                  task_factory):
        policy = _PlannedPairs()
        policy.reset()
        task = task_factory(task_id="t0")
        sim = Simulator(soc, [task], policy, mem=mem)
        sim.run()
        with pytest.raises(SimulationError, match="finished job"):
            sim.controller.apply(AllocationPlan(tiles=(("t0", 4),)))

    def test_atomic_allocation_coalesces_manual_mutations(
        self, soc, mem, task_factory
    ):
        # The public contextmanager shares the controller's batching
        # implementation: N mutations inside -> one epoch bump, and
        # an empty block bumps nothing.
        sim = _sim(soc, mem, task_factory, n=2)
        sim._dispatch_arrivals()
        epoch = sim._alloc_epoch
        with sim.atomic_allocation():
            sim.start_job(sim.jobs["t0"], 2)
            sim.start_job(sim.jobs["t1"], 2)
        assert sim._alloc_epoch == epoch + 1
        with sim.atomic_allocation():
            pass
        assert sim._alloc_epoch == epoch + 1

    def test_plan_applies_atomically_one_epoch_bump(self, soc, mem,
                                                    task_factory):
        sim = _sim(soc, mem, task_factory, n=3)
        sim._dispatch_arrivals()
        epoch = sim._alloc_epoch
        applied = sim.controller.apply(
            AllocationPlan(
                admissions=(("t0", 2), ("t1", 2), ("t2", 2)),
            )
        )
        assert applied == 3
        # Three admissions, one cache invalidation.
        assert sim._alloc_epoch == epoch + 1
        assert [j.job_id for j in sim.running] == ["t0", "t1", "t2"]

    def test_restating_live_state_is_free(self, soc, mem, task_factory):
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 4),)))
        job = sim.jobs["t0"]
        epoch = sim._alloc_epoch
        applied = sim.controller.apply(
            AllocationPlan(tiles=(("t0", 4),), bw_caps=(("t0", None),))
        )
        assert applied == 0
        assert sim._alloc_epoch == epoch
        assert job.stall_cycles == 0.0
        assert job.tile_repartitions == 0
        assert job.bw_reconfigs == 0

    def test_preempt_and_readmit_same_job_in_one_plan(self, soc, mem,
                                                      task_factory):
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        job = sim.jobs["t0"]
        applied = sim.controller.apply(
            AllocationPlan(
                preemptions=("t0",), admissions=(("t0", 6),),
            )
        )
        assert applied == 2
        assert job.phase is JobPhase.RUNNING
        assert job.tiles == 6
        assert job.preemptions == 1
        # Checkpoint-and-restart, not a repartition: no migration stall.
        assert job.stall_cycles == 0.0

    def test_bw_cap_only_plan_charges_only_memory_cost(self, soc, mem,
                                                       task_factory):
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        job = sim.jobs["t0"]
        sim.controller.apply(AllocationPlan(bw_caps=(("t0", 4.0),)))
        assert job.bw_cap == 4.0
        assert job.bw_reconfigs == 1
        assert job.stall_cycles == pytest.approx(MEMORY_RECONFIG_CYCLES)
        assert job.stall_until == pytest.approx(
            sim.now + MEMORY_RECONFIG_CYCLES
        )
        assert job.tile_repartitions == 0

    def test_shrink_funds_admission_in_same_plan(self, soc, mem,
                                                 task_factory):
        sim = _sim(soc, mem, task_factory, n=2)
        sim._dispatch_arrivals()
        sim.controller.apply(
            AllocationPlan(admissions=(("t0", soc.num_tiles),))
        )
        # Without the shrink-before-admission ordering this plan is
        # unsatisfiable: 0 tiles are free when it is submitted.
        applied = sim.controller.apply(
            AllocationPlan(
                tiles=(("t0", soc.num_tiles - 2),),
                admissions=(("t1", 2),),
            )
        )
        assert applied == 2
        assert sim.jobs["t0"].tiles == soc.num_tiles - 2
        assert sim.jobs["t1"].tiles == 2
        assert sim.free_tiles == 0

    def test_admit_and_retile_same_job_charges_migration(
        self, soc, mem, task_factory
    ):
        # start_job + set_tiles in one plan: the retile applies after
        # the admission, exactly like the imperative sequence.
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        applied = sim.controller.apply(
            AllocationPlan(admissions=(("t0", 2),), tiles=(("t0", 4),))
        )
        job = sim.jobs["t0"]
        assert applied == 2
        assert job.tiles == 4
        assert job.tile_repartitions == 1
        assert job.stall_cycles == pytest.approx(COMPUTE_RECONFIG_CYCLES)

    def test_extra_stalls_extend(self, soc, mem, task_factory):
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(
            AllocationPlan(
                admissions=(("t0", 2),), stalls=(("t0", 500.0),),
            )
        )
        assert sim.jobs["t0"].stall_cycles == pytest.approx(500.0)


class TestSameInstantDoubleChargeRegression:
    """ISSUE satellite: a tile change issued twice at the same instant
    must charge COMPUTE_RECONFIG_CYCLES exactly once."""

    def test_identical_retile_twice_same_instant_charges_once(
        self, soc, mem, task_factory
    ):
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        job = sim.jobs["t0"]
        sim.controller.apply(AllocationPlan(tiles=(("t0", 4),)))
        sim.controller.apply(AllocationPlan(tiles=(("t0", 4),)))
        assert job.tiles == 4
        assert job.stall_cycles == pytest.approx(COMPUTE_RECONFIG_CYCLES)
        assert job.tile_repartitions == 1

    def test_reapplied_transition_after_toggle_is_free(
        self, soc, mem, task_factory
    ):
        # 2 -> 4 (paid), 4 -> 2 (paid), 2 -> 4 again at the same
        # instant: the 4-tile transition was already paid for at this
        # instant, so the re-application changes state but charges
        # nothing more — coincident-event re-decisions cannot
        # double-bill the migration.
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        job = sim.jobs["t0"]
        sim.controller.apply(AllocationPlan(tiles=(("t0", 4),)))
        sim.controller.apply(AllocationPlan(tiles=(("t0", 2),)))
        charged = job.stall_cycles
        sim.controller.apply(AllocationPlan(tiles=(("t0", 4),)))
        assert job.tiles == 4
        assert job.stall_cycles == pytest.approx(charged)

    def test_identical_bw_cap_twice_same_instant_charges_once(
        self, soc, mem, task_factory
    ):
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        job = sim.jobs["t0"]
        sim.controller.apply(AllocationPlan(bw_caps=(("t0", 4.0),)))
        sim.controller.apply(AllocationPlan(bw_caps=(("t0", 4.0),)))
        assert job.bw_reconfigs == 1
        assert job.stall_cycles == pytest.approx(MEMORY_RECONFIG_CYCLES)


class TestDecisionCadence:
    def test_modes_validate(self):
        for mode in CADENCE_MODES:
            if mode == "interval":
                DecisionCadence(mode=mode, interval=1e6)
            else:
                DecisionCadence(mode=mode)
        with pytest.raises(ValueError, match="unknown cadence"):
            DecisionCadence(mode="sometimes")
        with pytest.raises(ValueError, match="positive"):
            DecisionCadence(mode="interval")
        with pytest.raises(ValueError, match="no interval"):
            DecisionCadence(mode="every-event", interval=5.0)
        # NaN/inf would silently disable decisions while jobs run.
        for bad in (float("nan"), float("inf"), 0.0, -1.0):
            with pytest.raises(ValueError):
                DecisionCadence(mode="interval", interval=bad)
        with pytest.raises(ValueError):
            DecisionCadence.parse("interval:nan")
        with pytest.raises(ValueError):
            DecisionCadence.parse("interval:inf")

    def test_parse_round_trips(self):
        for text in ("every-event", "block-boundary", "interval:5e6"):
            cad = DecisionCadence.parse(text)
            assert DecisionCadence.parse(cad.key) == cad
        # key must be exact for any float, not just 6 significant
        # digits (%g would turn 1234567.0 into 1.23457e+06).
        precise = DecisionCadence(mode="interval", interval=1234567.0)
        assert DecisionCadence.parse(precise.key) == precise
        with pytest.raises(ValueError):
            DecisionCadence.parse("interval")
        with pytest.raises(ValueError):
            DecisionCadence.parse("interval:zero")

    def test_every_event_is_bit_identical(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id=f"t{i}", network=n, dispatch=i * 1e5)
            for i, n in enumerate(("kws", "alexnet", "squeezenet"))
        ]
        base = run_simulation(soc, tasks, _PlannedPairs(), mem=mem)
        explicit = run_simulation(
            soc, tasks, _PlannedPairs(), mem=mem,
            cadence=DecisionCadence.parse("every-event"),
        )
        assert tuple(base.results) == tuple(explicit.results)
        assert base.decisions == base.events

    def test_regulated_cadences_decide_less_and_still_finish(
        self, soc, mem, task_factory
    ):
        tasks = [
            task_factory(task_id=f"t{i}", network="kws",
                         dispatch=i * 1e4)
            for i in range(6)
        ]
        every = run_simulation(soc, tasks, _PlannedPairs(), mem=mem)
        for key in ("block-boundary", "interval:1e6"):
            regulated = run_simulation(
                soc, tasks, _PlannedPairs(), mem=mem,
                cadence=DecisionCadence.parse(key),
            )
            assert len(regulated.results) == len(tasks)
            assert regulated.decisions < every.decisions

    def test_idle_system_always_decides(self, soc, mem, task_factory):
        # A lone task arriving into an idle SoC must be admitted even
        # under regulated cadences (no block boundary will ever come).
        task = task_factory(task_id="t0", dispatch=12345.0)
        for key in ("block-boundary", "interval:1e9"):
            result = run_simulation(
                soc, [task], _PlannedPairs(), mem=mem,
                cadence=DecisionCadence.parse(key),
            )
            assert result.results[0].finished_at > 0

    def test_spec_cadence_round_trip(self):
        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(
            workload_set="A", num_tasks=8, seeds=(1,),
            decision_cadence="interval", decision_interval=2e6,
        )
        assert spec.cadence() == DecisionCadence("interval", 2e6)
        payload = spec.to_dict()
        assert payload["decision_cadence"] == "interval"
        assert ScenarioSpec.from_dict(payload) == spec
        # Defaults are omitted so pre-cadence exports stay pinned.
        default = ScenarioSpec(workload_set="A", num_tasks=8, seeds=(1,))
        assert "decision_cadence" not in default.to_dict()
        assert "decision_interval" not in default.to_dict()
        assert ScenarioSpec.from_dict(default.to_dict()) == default

    def test_spec_rejects_bad_cadence(self):
        from repro.scenarios import ScenarioSpec

        with pytest.raises(ValueError, match="cadence"):
            ScenarioSpec(decision_cadence="sometimes")
        with pytest.raises(ValueError, match="interval"):
            ScenarioSpec(decision_cadence="interval")


class TestPolicyBridge:
    def test_plan_policy_via_on_event_bridge(self, soc, mem,
                                             task_factory):
        # policy.on_event(sim) must remain a valid way to drive a
        # plan-emitting policy (the legacy seam's spelling).
        sim = _sim(soc, mem, task_factory, policy=_PlannedPairs())
        sim._dispatch_arrivals()
        sim.policy.on_event(sim)
        assert len(sim.running) == 2

    def test_policy_without_either_hook_fails_at_construction(
        self, soc, mem, task_factory
    ):
        class _Hollow(Policy):
            name = "hollow"

        # Fail fast: the simulator refuses the policy up front
        # instead of raising mid-simulation at the first decision.
        with pytest.raises(SimulationError, match="neither"):
            _sim(soc, mem, task_factory, policy=_Hollow())
        with pytest.raises(NotImplementedError, match="neither"):
            _Hollow().decide(None)

    def test_builtin_policies_emit_plans(self):
        from repro.baselines import (
            PlanariaPolicy,
            PremaPolicy,
            StaticPartitionPolicy,
        )
        from repro.core.policy import MoCAPolicy

        for cls in (PlanariaPolicy, PremaPolicy, StaticPartitionPolicy,
                    MoCAPolicy):
            assert cls().emits_plans

    def test_legacy_imperative_policy_still_supported(self, soc, mem,
                                                      task_factory):
        class _Legacy(Policy):
            name = "legacy"

            def on_event(self, sim):
                while sim.ready and sim.free_tiles >= 2:
                    sim.start_job(sim.ready[0], 2)

        assert not _Legacy().emits_plans
        result = run_simulation(
            soc,
            [task_factory(task_id=f"t{i}") for i in range(3)],
            _Legacy(),
            mem=mem,
        )
        assert len(result.results) == 3
        # Imperative mutations bypass the controller entirely.
        assert result.plan_actions == 0


class TestTrustedPlans:
    """ISSUE tentpole (a): AllocationPlan.trusted skips field
    validation for plans built from live simulator state, and the
    controller resolves them through the fast path without changing
    any observable semantics."""

    def test_trusted_equals_validated_plan(self):
        a = AllocationPlan(admissions=(("t0", 2),), bw_caps=(("t1", 4.0),))
        b = AllocationPlan.trusted(
            admissions=(("t0", 2),), bw_caps=(("t1", 4.0),)
        )
        assert a == b and hash(a) == hash(b)
        assert not a._trusted and b._trusted

    def test_trusted_empty_plan_is_noop(self, soc, mem, task_factory):
        sim = _sim(soc, mem, task_factory)
        noops = sim.controller.plans_noop
        assert sim.controller.apply(AllocationPlan.trusted()) == 0
        assert sim.controller.plans_noop == noops + 1

    def test_trusted_caps_only_charges_like_validated(
        self, soc, mem, task_factory
    ):
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        job = sim.jobs["t0"]
        applied = sim.controller.apply(
            AllocationPlan.trusted(bw_caps=(("t0", 4.0),))
        )
        assert applied == 1
        assert job.bw_cap == 4.0
        assert job.bw_reconfigs == 1
        assert job.stall_cycles == pytest.approx(MEMORY_RECONFIG_CYCLES)

    def test_trusted_caps_restated_is_noop(self, soc, mem, task_factory):
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        sim.controller.apply(AllocationPlan.trusted(bw_caps=(("t0", 4.0),)))
        noops = sim.controller.plans_noop
        assert sim.controller.apply(
            AllocationPlan.trusted(bw_caps=(("t0", 4.0),))
        ) == 0
        assert sim.controller.plans_noop == noops + 1
        assert sim.jobs["t0"].bw_reconfigs == 1

    def test_trusted_same_instant_toggle_dedupes_across_plans(
        self, soc, mem, task_factory
    ):
        # A -> B -> A across three coincident trusted plans: the cap
        # changes all land, but the job serves exactly one
        # reconfiguration stall — stall_job saturates at now + cycles
        # within an instant, and the return to an already-paid value
        # is journal-deduped (this drives the lazy pending-journal
        # fold).
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        job = sim.jobs["t0"]
        sim.controller.apply(AllocationPlan.trusted(bw_caps=(("t0", 4.0),)))
        sim.controller.apply(AllocationPlan.trusted(bw_caps=(("t0", 8.0),)))
        sim.controller.apply(AllocationPlan.trusted(bw_caps=(("t0", 4.0),)))
        assert job.bw_cap == 4.0
        assert job.bw_reconfigs == 3
        assert job.stall_cycles == pytest.approx(MEMORY_RECONFIG_CYCLES)
        # The fold materialised the fast path's pending charges into
        # the shared journal.
        assert sim.controller._paid == {
            ("t0", "bw_cap"): {4.0, 8.0}
        }
        assert sim.controller._pending_caps == []

    def test_trusted_dedupe_shared_with_validated_path(
        self, soc, mem, task_factory
    ):
        # Fast-path charges must be visible to a subsequent *validated*
        # plan at the same instant (the pending journal folds into the
        # shared one).
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        sim.controller.apply(AllocationPlan(admissions=(("t0", 2),)))
        job = sim.jobs["t0"]
        sim.controller.apply(AllocationPlan.trusted(bw_caps=(("t0", 4.0),)))
        sim.controller.apply(AllocationPlan(bw_caps=(("t0", 8.0),)))
        charged = job.stall_cycles
        sim.controller.apply(AllocationPlan(bw_caps=(("t0", 4.0),)))
        assert job.bw_cap == 4.0
        assert job.stall_cycles == pytest.approx(charged)

    def test_trusted_caps_unknown_job_fails_cleanly(
        self, soc, mem, task_factory, monkeypatch
    ):
        # Pin the *unchecked* error path (REPRO_CHECK=1 intercepts
        # broken trusted plans earlier; tests/test_sanitizer.py
        # covers that).
        import repro.sanitizer as sanitizer

        monkeypatch.setattr(sanitizer, "enabled", False)
        sim = _sim(soc, mem, task_factory)
        with pytest.raises(SimulationError, match="unknown job"):
            sim.controller.apply(
                AllocationPlan.trusted(bw_caps=(("ghost", 4.0),))
            )

    def test_trusted_general_unknown_job_fails_cleanly(
        self, soc, mem, task_factory, monkeypatch
    ):
        import repro.sanitizer as sanitizer

        monkeypatch.setattr(sanitizer, "enabled", False)
        sim = _sim(soc, mem, task_factory)
        with pytest.raises(SimulationError, match="unknown job"):
            sim.controller.apply(
                AllocationPlan.trusted(admissions=(("ghost", 2),))
            )

    def test_trusted_mixed_plan_uses_general_path(
        self, soc, mem, task_factory
    ):
        # Admissions + caps in one trusted plan: the general resolve
        # applies both in canonical order.
        sim = _sim(soc, mem, task_factory)
        sim._dispatch_arrivals()
        applied = sim.controller.apply(AllocationPlan.trusted(
            admissions=(("t0", 2),), bw_caps=(("t0", 4.0),),
        ))
        assert applied == 2
        job = sim.jobs["t0"]
        assert job.phase is JobPhase.RUNNING
        assert job.tiles == 2 and job.bw_cap == 4.0
