"""Tests for the static-partition baseline."""

import pytest

from repro.baselines.static_partition import StaticPartitionPolicy
from repro.sim.engine import Simulator, run_simulation


class TestStaticPartition:
    def test_invalid_slot(self):
        with pytest.raises(ValueError):
            StaticPartitionPolicy(tiles_per_slot=0)

    def test_admits_fcfs(self, soc, mem, task_factory):
        tasks = [
            task_factory(task_id="late", dispatch=100.0),
            task_factory(task_id="early", dispatch=0.0),
        ]
        policy = StaticPartitionPolicy()
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem, trace=True)
        sim.run()
        starts = sim.trace.of_kind(
            __import__("repro.sim.trace", fromlist=["TraceEvent"]).TraceEvent.START
        )
        assert starts[0].job_id == "early"

    def test_four_slots_on_default_soc(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}") for i in range(6)]
        policy = StaticPartitionPolicy(tiles_per_slot=2)
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert len(sim.running) == 4
        assert sim.free_tiles == 0

    def test_never_repartitions(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}", network="squeezenet")
                 for i in range(6)]
        result = run_simulation(soc, tasks, StaticPartitionPolicy(), mem=mem)
        assert all(r.tile_repartitions == 0 for r in result.results)
        assert all(r.preemptions == 0 for r in result.results)

    def test_all_tasks_finish(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}", network=n)
                 for i, n in enumerate(["kws", "alexnet", "yolo_lite",
                                        "squeezenet", "googlenet"])]
        result = run_simulation(soc, tasks, StaticPartitionPolicy(), mem=mem)
        assert len(result.results) == 5

    def test_bigger_slots_fewer_concurrent(self, soc, mem, task_factory):
        tasks = [task_factory(task_id=f"t{i}") for i in range(4)]
        policy = StaticPartitionPolicy(tiles_per_slot=4)
        policy.reset()
        sim = Simulator(soc, tasks, policy, mem=mem)
        sim._dispatch_arrivals()
        policy.on_event(sim)
        assert len(sim.running) == 2
