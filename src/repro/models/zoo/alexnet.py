"""AlexNet (Krizhevsky et al., NeurIPS 2012) — Table III, Workload set B.

The classic 5-conv / 3-FC ImageNet network with the original 227x227
input and the two-group convolutions of the dual-GPU formulation.  Its
latency is dominated by the memory-intensive fully-connected layers,
which is why the paper singles it out as the most contention-sensitive
workload (Figure 1a).
"""

from __future__ import annotations

from repro.models.graph import Network
from repro.models.layers import ConvLayer, DenseLayer, PoolLayer


def build_alexnet() -> Network:
    """Build the AlexNet layer graph."""
    layers = (
        ConvLayer("conv1", in_h=227, in_w=227, in_ch=3, out_ch=96,
                  kernel=11, stride=4, padding=0),
        PoolLayer("pool1", in_h=55, in_w=55, channels=96, kernel=3, stride=2),
        ConvLayer("conv2", in_h=27, in_w=27, in_ch=96, out_ch=256,
                  kernel=5, stride=1, padding=2, groups=2),
        PoolLayer("pool2", in_h=27, in_w=27, channels=256, kernel=3, stride=2),
        ConvLayer("conv3", in_h=13, in_w=13, in_ch=256, out_ch=384,
                  kernel=3, stride=1, padding=1),
        ConvLayer("conv4", in_h=13, in_w=13, in_ch=384, out_ch=384,
                  kernel=3, stride=1, padding=1, groups=2),
        ConvLayer("conv5", in_h=13, in_w=13, in_ch=384, out_ch=256,
                  kernel=3, stride=1, padding=1, groups=2),
        PoolLayer("pool5", in_h=13, in_w=13, channels=256, kernel=3, stride=2),
        DenseLayer("fc6", in_features=6 * 6 * 256, out_features=4096),
        DenseLayer("fc7", in_features=4096, out_features=4096),
        DenseLayer("fc8", in_features=4096, out_features=1000),
    )
    return Network(
        name="alexnet",
        layers=layers,
        input_bytes=227 * 227 * 3,
        domain="image classification",
    )
