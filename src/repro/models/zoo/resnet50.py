"""ResNet-50 (He et al., CVPR 2016) — Table III, Workload set B.

The 50-layer bottleneck residual network.  Residual additions are the
archetypal MEM layers in Algorithm 1: their skip operand was produced
several layers earlier and must be refetched from DRAM when the shared
L2 cannot retain it.
"""

from __future__ import annotations

from typing import List

from repro.models.graph import Network
from repro.models.layers import (
    ConvLayer,
    DenseLayer,
    Layer,
    PoolLayer,
    ResidualAddLayer,
)


def _bottleneck(name: str, h: int, w: int, in_ch: int, mid_ch: int,
                out_ch: int, stride: int, project: bool) -> List[Layer]:
    """A bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand, add.

    Args:
        name: Block name prefix.
        h, w: Input spatial dimensions.
        in_ch: Input channels.
        mid_ch: Bottleneck width.
        out_ch: Output channels (4x mid_ch in ResNet-50).
        stride: Stride applied by the 3x3 convolution.
        project: Whether the skip path carries a 1x1 projection (first
            block of each stage).
    """
    out_h = (h - 1) // stride + 1
    out_w = (w - 1) // stride + 1
    layers: List[Layer] = [
        ConvLayer(f"{name}_conv1", in_h=h, in_w=w, in_ch=in_ch,
                  out_ch=mid_ch, kernel=1),
        ConvLayer(f"{name}_conv2", in_h=h, in_w=w, in_ch=mid_ch,
                  out_ch=mid_ch, kernel=3, stride=stride, padding=1),
        ConvLayer(f"{name}_conv3", in_h=out_h, in_w=out_w, in_ch=mid_ch,
                  out_ch=out_ch, kernel=1),
    ]
    if project:
        layers.append(
            ConvLayer(f"{name}_proj", in_h=h, in_w=w, in_ch=in_ch,
                      out_ch=out_ch, kernel=1, stride=stride)
        )
    layers.append(
        ResidualAddLayer(f"{name}_add", h=out_h, w=out_w, channels=out_ch)
    )
    return layers


def build_resnet50() -> Network:
    """Build the ResNet-50 layer graph."""
    layers: List[Layer] = [
        ConvLayer("conv1", in_h=224, in_w=224, in_ch=3, out_ch=64,
                  kernel=7, stride=2, padding=3),
        PoolLayer("pool1", in_h=112, in_w=112, channels=64, kernel=3,
                  stride=2, padding=1),
    ]
    # (stage, blocks, mid_ch, out_ch, input spatial dim)
    stages = (
        ("layer1", 3, 64, 256, 56),
        ("layer2", 4, 128, 512, 56),
        ("layer3", 6, 256, 1024, 28),
        ("layer4", 3, 512, 2048, 14),
    )
    in_ch = 64
    for stage_name, num_blocks, mid_ch, out_ch, in_dim in stages:
        for b in range(num_blocks):
            first = b == 0
            stride = 2 if first and stage_name != "layer1" else 1
            h = in_dim if first else (in_dim - 1) // (2 if stage_name != "layer1" else 1) + 1
            # Spatial dim after the stage's stride has been applied.
            dim = in_dim if first else _stage_out_dim(stage_name, in_dim)
            layers += _bottleneck(
                f"{stage_name}_block{b}", h=dim, w=dim, in_ch=in_ch,
                mid_ch=mid_ch, out_ch=out_ch, stride=stride, project=first,
            )
            in_ch = out_ch
    layers += [
        PoolLayer("global_pool", in_h=7, in_w=7, channels=2048,
                  global_pool=True),
        DenseLayer("fc", in_features=2048, out_features=1000),
    ]
    return Network(
        name="resnet50",
        layers=tuple(layers),
        input_bytes=224 * 224 * 3,
        domain="image classification",
    )


def _stage_out_dim(stage_name: str, in_dim: int) -> int:
    """Spatial dimension inside a stage after its entry stride."""
    return in_dim if stage_name == "layer1" else (in_dim - 1) // 2 + 1
