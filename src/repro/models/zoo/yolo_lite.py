"""YOLO-LITE (Huang et al., IEEE Big Data 2018) — Workload set A.

The real-time non-GPU object detector: seven convolutions over a
224x224 input (the paper's "trial 3, no batch norm" configuration).
"""

from __future__ import annotations

from repro.models.graph import Network
from repro.models.layers import ConvLayer, PoolLayer


def build_yolo_lite() -> Network:
    """Build the YOLO-LITE layer graph."""
    layers = (
        ConvLayer("conv1", in_h=224, in_w=224, in_ch=3, out_ch=16,
                  kernel=3, padding=1),
        PoolLayer("pool1", in_h=224, in_w=224, channels=16, kernel=2, stride=2),
        ConvLayer("conv2", in_h=112, in_w=112, in_ch=16, out_ch=32,
                  kernel=3, padding=1),
        PoolLayer("pool2", in_h=112, in_w=112, channels=32, kernel=2, stride=2),
        ConvLayer("conv3", in_h=56, in_w=56, in_ch=32, out_ch=64,
                  kernel=3, padding=1),
        PoolLayer("pool3", in_h=56, in_w=56, channels=64, kernel=2, stride=2),
        ConvLayer("conv4", in_h=28, in_w=28, in_ch=64, out_ch=128,
                  kernel=3, padding=1),
        PoolLayer("pool4", in_h=28, in_w=28, channels=128, kernel=2, stride=2),
        ConvLayer("conv5", in_h=14, in_w=14, in_ch=128, out_ch=128,
                  kernel=3, padding=1),
        PoolLayer("pool5", in_h=14, in_w=14, channels=128, kernel=2, stride=2),
        ConvLayer("conv6", in_h=7, in_w=7, in_ch=128, out_ch=256,
                  kernel=3, padding=1),
        ConvLayer("conv7_det", in_h=7, in_w=7, in_ch=256, out_ch=125,
                  kernel=1),
    )
    return Network(
        name="yolo_lite",
        layers=layers,
        input_bytes=224 * 224 * 3,
        domain="object detection",
    )
