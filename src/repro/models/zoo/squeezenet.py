"""SqueezeNet v1.0 (Iandola et al., 2016) — Table III, Workload set A.

AlexNet-level accuracy with 50x fewer parameters.  Its short runtime is
why the paper's Figure 1b shows it suffering the largest worst-case
slowdown under co-location: a brief execution window can be entirely
overlapped by a co-runner's memory-intensive layers.
"""

from __future__ import annotations

from typing import List

from repro.models.graph import Network
from repro.models.layers import ConcatLayer, ConvLayer, Layer, PoolLayer


def _fire(name: str, h: int, w: int, in_ch: int, squeeze: int,
          expand1: int, expand3: int) -> List[Layer]:
    """A Fire module: 1x1 squeeze, parallel 1x1/3x3 expands, concat."""
    return [
        ConvLayer(f"{name}_squeeze1x1", in_h=h, in_w=w, in_ch=in_ch,
                  out_ch=squeeze, kernel=1),
        ConvLayer(f"{name}_expand1x1", in_h=h, in_w=w, in_ch=squeeze,
                  out_ch=expand1, kernel=1),
        ConvLayer(f"{name}_expand3x3", in_h=h, in_w=w, in_ch=squeeze,
                  out_ch=expand3, kernel=3, padding=1),
        ConcatLayer(f"{name}_concat", h=h, w=w, in_channels=(expand1, expand3)),
    ]


def build_squeezenet() -> Network:
    """Build the SqueezeNet v1.0 layer graph."""
    layers: List[Layer] = [
        ConvLayer("conv1", in_h=224, in_w=224, in_ch=3, out_ch=96,
                  kernel=7, stride=2),
        PoolLayer("pool1", in_h=109, in_w=109, channels=96, kernel=3, stride=2),
    ]
    layers += _fire("fire2", 54, 54, 96, 16, 64, 64)
    layers += _fire("fire3", 54, 54, 128, 16, 64, 64)
    layers += _fire("fire4", 54, 54, 128, 32, 128, 128)
    layers.append(
        PoolLayer("pool4", in_h=54, in_w=54, channels=256, kernel=3, stride=2)
    )
    layers += _fire("fire5", 26, 26, 256, 32, 128, 128)
    layers += _fire("fire6", 26, 26, 256, 48, 192, 192)
    layers += _fire("fire7", 26, 26, 384, 48, 192, 192)
    layers += _fire("fire8", 26, 26, 384, 64, 256, 256)
    layers.append(
        PoolLayer("pool8", in_h=26, in_w=26, channels=512, kernel=3, stride=2)
    )
    layers += _fire("fire9", 12, 12, 512, 64, 256, 256)
    layers += [
        ConvLayer("conv10", in_h=12, in_w=12, in_ch=512, out_ch=1000, kernel=1),
        PoolLayer("global_pool", in_h=12, in_w=12, channels=1000,
                  global_pool=True),
    ]
    return Network(
        name="squeezenet",
        layers=tuple(layers),
        input_bytes=224 * 224 * 3,
        domain="image classification",
    )
