"""Keyword spotting res15 (Tang & Lin, ICASSP 2018) — Workload set A.

The deep residual keyword-spotting network: a 3x3x45 stem followed by
six residual blocks of two dilated 3x3x45 convolutions each, operating
on a 101x40 MFCC spectrogram.  The smallest workload in the suite.
"""

from __future__ import annotations

from typing import List

from repro.models.graph import Network
from repro.models.layers import (
    ConvLayer,
    DenseLayer,
    Layer,
    PoolLayer,
    ResidualAddLayer,
)

_H, _W, _CH = 101, 40, 45


def build_kws() -> Network:
    """Build the res15 keyword-spotting layer graph."""
    layers: List[Layer] = [
        ConvLayer("conv0", in_h=_H, in_w=_W, in_ch=1, out_ch=_CH,
                  kernel=3, padding=1, has_bias=False),
    ]
    for block in range(6):
        # Dilated convolutions keep the spatial extent (padding = dilation);
        # dilation does not change MAC or footprint accounting.
        layers.append(
            ConvLayer(f"res{block}_conv1", in_h=_H, in_w=_W, in_ch=_CH,
                      out_ch=_CH, kernel=3, padding=1, has_bias=False)
        )
        layers.append(
            ConvLayer(f"res{block}_conv2", in_h=_H, in_w=_W, in_ch=_CH,
                      out_ch=_CH, kernel=3, padding=1, has_bias=False)
        )
        layers.append(
            ResidualAddLayer(f"res{block}_add", h=_H, w=_W, channels=_CH)
        )
    layers += [
        PoolLayer("global_pool", in_h=_H, in_w=_W, channels=_CH,
                  global_pool=True),
        DenseLayer("fc", in_features=_CH, out_features=12),
    ]
    return Network(
        name="kws",
        layers=tuple(layers),
        input_bytes=_H * _W * 1,
        domain="speech processing",
    )
