"""YOLOv2 / YOLO9000 (Redmon & Farhadi, CVPR 2017) — Workload set B.

Darknet-19 backbone at 416x416 plus the detection head with the
passthrough (reorg + concat) connection.  The largest network in the
benchmark suite by both MACs and activation traffic.
"""

from __future__ import annotations

from typing import List

from repro.models.graph import Network
from repro.models.layers import ConcatLayer, ConvLayer, Layer, PoolLayer


def build_yolov2() -> Network:
    """Build the YOLOv2 (COCO head, 425 output channels) layer graph."""
    layers: List[Layer] = [
        ConvLayer("conv1", in_h=416, in_w=416, in_ch=3, out_ch=32,
                  kernel=3, padding=1),
        PoolLayer("pool1", in_h=416, in_w=416, channels=32, kernel=2, stride=2),
        ConvLayer("conv2", in_h=208, in_w=208, in_ch=32, out_ch=64,
                  kernel=3, padding=1),
        PoolLayer("pool2", in_h=208, in_w=208, channels=64, kernel=2, stride=2),
        ConvLayer("conv3", in_h=104, in_w=104, in_ch=64, out_ch=128,
                  kernel=3, padding=1),
        ConvLayer("conv4", in_h=104, in_w=104, in_ch=128, out_ch=64, kernel=1),
        ConvLayer("conv5", in_h=104, in_w=104, in_ch=64, out_ch=128,
                  kernel=3, padding=1),
        PoolLayer("pool5", in_h=104, in_w=104, channels=128, kernel=2,
                  stride=2),
        ConvLayer("conv6", in_h=52, in_w=52, in_ch=128, out_ch=256,
                  kernel=3, padding=1),
        ConvLayer("conv7", in_h=52, in_w=52, in_ch=256, out_ch=128, kernel=1),
        ConvLayer("conv8", in_h=52, in_w=52, in_ch=128, out_ch=256,
                  kernel=3, padding=1),
        PoolLayer("pool8", in_h=52, in_w=52, channels=256, kernel=2, stride=2),
        ConvLayer("conv9", in_h=26, in_w=26, in_ch=256, out_ch=512,
                  kernel=3, padding=1),
        ConvLayer("conv10", in_h=26, in_w=26, in_ch=512, out_ch=256, kernel=1),
        ConvLayer("conv11", in_h=26, in_w=26, in_ch=256, out_ch=512,
                  kernel=3, padding=1),
        ConvLayer("conv12", in_h=26, in_w=26, in_ch=512, out_ch=256, kernel=1),
        ConvLayer("conv13", in_h=26, in_w=26, in_ch=256, out_ch=512,
                  kernel=3, padding=1),
        PoolLayer("pool13", in_h=26, in_w=26, channels=512, kernel=2, stride=2),
        ConvLayer("conv14", in_h=13, in_w=13, in_ch=512, out_ch=1024,
                  kernel=3, padding=1),
        ConvLayer("conv15", in_h=13, in_w=13, in_ch=1024, out_ch=512, kernel=1),
        ConvLayer("conv16", in_h=13, in_w=13, in_ch=512, out_ch=1024,
                  kernel=3, padding=1),
        ConvLayer("conv17", in_h=13, in_w=13, in_ch=1024, out_ch=512, kernel=1),
        ConvLayer("conv18", in_h=13, in_w=13, in_ch=512, out_ch=1024,
                  kernel=3, padding=1),
        # Detection head.
        ConvLayer("conv19", in_h=13, in_w=13, in_ch=1024, out_ch=1024,
                  kernel=3, padding=1),
        ConvLayer("conv20", in_h=13, in_w=13, in_ch=1024, out_ch=1024,
                  kernel=3, padding=1),
        # Passthrough: 1x1 on the 26x26x512 feature map, then a
        # space-to-depth reorg to 13x13x256 concatenated with conv20.
        ConvLayer("conv21_passthrough", in_h=26, in_w=26, in_ch=512,
                  out_ch=64, kernel=1),
        ConcatLayer("reorg_concat", h=13, w=13, in_channels=(1024, 256)),
        ConvLayer("conv22", in_h=13, in_w=13, in_ch=1280, out_ch=1024,
                  kernel=3, padding=1),
        ConvLayer("conv23_det", in_h=13, in_w=13, in_ch=1024, out_ch=425,
                  kernel=1),
    ]
    return Network(
        name="yolov2",
        layers=tuple(layers),
        input_bytes=416 * 416 * 3,
        domain="object detection",
    )
