"""Benchmark DNN model zoo (Table III).

Seven inference models spanning image classification, object detection
and speech processing, grouped into the paper's workload sets:

- **Workload set A** (light models): SqueezeNet, YOLO-LITE, KWS.
- **Workload set B** (heavy models): GoogLeNet, AlexNet, ResNet-50,
  YOLOv2.
- **Workload set C** (mixed): the union of A and B.

Networks are built lazily and cached — layer graphs are immutable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.models.graph import Network
from repro.models.zoo.alexnet import build_alexnet
from repro.models.zoo.googlenet import build_googlenet
from repro.models.zoo.kws import build_kws
from repro.models.zoo.resnet50 import build_resnet50
from repro.models.zoo.squeezenet import build_squeezenet
from repro.models.zoo.yolo_lite import build_yolo_lite
from repro.models.zoo.yolov2 import build_yolov2

MODEL_BUILDERS: Dict[str, Callable[[], Network]] = {
    "squeezenet": build_squeezenet,
    "yolo_lite": build_yolo_lite,
    "kws": build_kws,
    "googlenet": build_googlenet,
    "alexnet": build_alexnet,
    "resnet50": build_resnet50,
    "yolov2": build_yolov2,
}

#: Table III workload sets.
WORKLOAD_SET_A: Tuple[str, ...] = ("squeezenet", "yolo_lite", "kws")
WORKLOAD_SET_B: Tuple[str, ...] = ("googlenet", "alexnet", "resnet50", "yolov2")
WORKLOAD_SET_C: Tuple[str, ...] = WORKLOAD_SET_A + WORKLOAD_SET_B

WORKLOAD_SETS: Dict[str, Tuple[str, ...]] = {
    "A": WORKLOAD_SET_A,
    "B": WORKLOAD_SET_B,
    "C": WORKLOAD_SET_C,
}

_CACHE: Dict[str, Network] = {}


def model_names() -> List[str]:
    """All model names in the zoo, in registry order."""
    return list(MODEL_BUILDERS)


def build_model(name: str) -> Network:
    """Build (or fetch the cached) network by name.

    Raises:
        KeyError: If ``name`` is not in the zoo.
    """
    if name not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        )
    if name not in _CACHE:
        _CACHE[name] = MODEL_BUILDERS[name]()
    return _CACHE[name]


def workload_set(set_name: str) -> List[Network]:
    """Networks of a Table III workload set ('A', 'B' or 'C')."""
    key = set_name.upper()
    if key not in WORKLOAD_SETS:
        raise KeyError(f"unknown workload set {set_name!r}; use A, B or C")
    return [build_model(n) for n in WORKLOAD_SETS[key]]


__all__ = [
    "MODEL_BUILDERS",
    "WORKLOAD_SETS",
    "WORKLOAD_SET_A",
    "WORKLOAD_SET_B",
    "WORKLOAD_SET_C",
    "build_model",
    "model_names",
    "workload_set",
]
