"""GoogLeNet / Inception-v1 (Szegedy et al., CVPR 2015) — Workload set B.

Nine inception modules over a 224x224 input.  Each module's four
branches are linearized in execution order; the pool-projection branch
contributes its 3x3 stride-1 pooling as a MEM layer and the module ends
with a channel concatenation (pure data movement).
"""

from __future__ import annotations

from typing import List

from repro.models.graph import Network
from repro.models.layers import ConcatLayer, ConvLayer, Layer, PoolLayer


def _inception(name: str, h: int, w: int, in_ch: int, c1: int,
               c3r: int, c3: int, c5r: int, c5: int, pp: int) -> List[Layer]:
    """An inception module: 1x1 / 3x3 / 5x5 / pool-proj branches."""
    return [
        ConvLayer(f"{name}_1x1", in_h=h, in_w=w, in_ch=in_ch, out_ch=c1,
                  kernel=1),
        ConvLayer(f"{name}_3x3_reduce", in_h=h, in_w=w, in_ch=in_ch,
                  out_ch=c3r, kernel=1),
        ConvLayer(f"{name}_3x3", in_h=h, in_w=w, in_ch=c3r, out_ch=c3,
                  kernel=3, padding=1),
        ConvLayer(f"{name}_5x5_reduce", in_h=h, in_w=w, in_ch=in_ch,
                  out_ch=c5r, kernel=1),
        ConvLayer(f"{name}_5x5", in_h=h, in_w=w, in_ch=c5r, out_ch=c5,
                  kernel=5, padding=2),
        PoolLayer(f"{name}_pool", in_h=h, in_w=w, channels=in_ch,
                  kernel=3, stride=1, padding=1),
        ConvLayer(f"{name}_pool_proj", in_h=h, in_w=w, in_ch=in_ch,
                  out_ch=pp, kernel=1),
        ConcatLayer(f"{name}_concat", h=h, w=w, in_channels=(c1, c3, c5, pp)),
    ]


def build_googlenet() -> Network:
    """Build the GoogLeNet (Inception-v1) layer graph."""
    layers: List[Layer] = [
        ConvLayer("conv1", in_h=224, in_w=224, in_ch=3, out_ch=64,
                  kernel=7, stride=2, padding=3),
        PoolLayer("pool1", in_h=112, in_w=112, channels=64, kernel=3,
                  stride=2, padding=1),
        ConvLayer("conv2_reduce", in_h=56, in_w=56, in_ch=64, out_ch=64,
                  kernel=1),
        ConvLayer("conv2", in_h=56, in_w=56, in_ch=64, out_ch=192,
                  kernel=3, padding=1),
        PoolLayer("pool2", in_h=56, in_w=56, channels=192, kernel=3,
                  stride=2, padding=1),
    ]
    layers += _inception("inception_3a", 28, 28, 192, 64, 96, 128, 16, 32, 32)
    layers += _inception("inception_3b", 28, 28, 256, 128, 128, 192, 32, 96, 64)
    layers.append(
        PoolLayer("pool3", in_h=28, in_w=28, channels=480, kernel=3,
                  stride=2, padding=1)
    )
    layers += _inception("inception_4a", 14, 14, 480, 192, 96, 208, 16, 48, 64)
    layers += _inception("inception_4b", 14, 14, 512, 160, 112, 224, 24, 64, 64)
    layers += _inception("inception_4c", 14, 14, 512, 128, 128, 256, 24, 64, 64)
    layers += _inception("inception_4d", 14, 14, 512, 112, 144, 288, 32, 64, 64)
    layers += _inception("inception_4e", 14, 14, 528, 256, 160, 320, 32, 128,
                         128)
    layers.append(
        PoolLayer("pool4", in_h=14, in_w=14, channels=832, kernel=3,
                  stride=2, padding=1)
    )
    layers += _inception("inception_5a", 7, 7, 832, 256, 160, 320, 32, 128, 128)
    layers += _inception("inception_5b", 7, 7, 832, 384, 192, 384, 48, 128, 128)
    layers += [
        PoolLayer("global_pool", in_h=7, in_w=7, channels=1024,
                  global_pool=True),
    ]
    from repro.models.layers import DenseLayer

    layers.append(DenseLayer("fc", in_features=1024, out_features=1000))
    return Network(
        name="googlenet",
        layers=tuple(layers),
        input_bytes=224 * 224 * 3,
        domain="image classification",
    )
