"""Network graphs: ordered layer sequences with shape accounting.

MoCA executes networks layer by layer (or layer-block by layer-block) on
accelerator tiles, so the graph abstraction the system needs is an
ordered sequence of :class:`repro.models.layers.Layer` objects plus
aggregate accounting.  Branchy topologies (inception modules, residual
blocks) are linearized in execution order — which is exactly what a
single-accelerator schedule does with them — with the data-movement
consequences of branches (skip-operand reloads, concatenation traffic)
captured by the MEM layers in the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.models.layers import Layer, LayerKind


class GraphError(ValueError):
    """Raised for malformed network definitions."""


@dataclass(frozen=True)
class Network:
    """An ordered DNN layer graph.

    Attributes:
        name: Model name (e.g. ``"resnet50"``).
        layers: Execution-ordered layers.
        input_bytes: Size of the network input (the "image" of Alg. 1
            line 7), used for the input-caching decision.
        domain: Application domain, for reporting (Table III).
    """

    name: str
    layers: Tuple[Layer, ...] = field(default_factory=tuple)
    input_bytes: int = 0
    domain: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("network needs a name")
        if not self.layers:
            raise GraphError(f"{self.name}: network has no layers")
        if self.input_bytes <= 0:
            raise GraphError(f"{self.name}: input_bytes must be positive")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise GraphError(f"{self.name}: duplicate layer names {dupes}")

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Layer:
        return self.layers[idx]

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates over the whole network."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        """Total parameter footprint (the model size)."""
        return sum(layer.weight_bytes + layer.bias_bytes for layer in self.layers)

    @property
    def total_mem_bytes(self) -> int:
        """Total shared-memory traffic summed over layers."""
        return sum(layer.total_mem_bytes for layer in self.layers)

    @property
    def compute_layers(self) -> Tuple[Layer, ...]:
        return tuple(l for l in self.layers if l.kind is LayerKind.COMPUTE)

    @property
    def mem_layers(self) -> Tuple[Layer, ...]:
        return tuple(l for l in self.layers if l.kind is LayerKind.MEM)

    @property
    def arithmetic_intensity(self) -> float:
        """Whole-network MACs per byte of shared-memory traffic."""
        mem = self.total_mem_bytes
        return self.total_macs / mem if mem else 0.0

    @property
    def structural_digest(self) -> str:
        """Order-sensitive digest of the full layer sequence.

        Chains every layer's :func:`~repro.models.layers.
        layer_structural_digest` in execution order (plus the network
        name and input size), so any in-place edit — including
        *reordering* layers without changing aggregate totals —
        produces a different digest.  The network-cost cache keys on
        this.  Memoised per layer tuple (keyed on the tuple's
        identity, so even a forced in-place swap of ``layers`` on the
        frozen instance cannot serve a stale digest).
        """
        import hashlib

        from repro.models.layers import layer_structural_digest

        cached = self.__dict__.get("_structural_digest")
        if cached is None or cached[0] is not self.layers:
            blob = "|".join(
                [self.name, str(self.input_bytes)]
                + [layer_structural_digest(l) for l in self.layers]
            )
            digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
            cached = (self.layers, digest)
            object.__setattr__(self, "_structural_digest", cached)
        return cached[1]

    def layer_index(self, name: str) -> int:
        """Index of the layer named ``name`` (raises if absent)."""
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise KeyError(f"{self.name}: no layer named {name!r}")

    def summary(self) -> str:
        """Multi-line summary: per-layer lines plus totals."""
        from repro.models.layers import layer_summary, pretty_bytes

        lines = [f"Network {self.name} ({self.domain}): {len(self)} layers"]
        lines.extend("  " + layer_summary(layer) for layer in self.layers)
        lines.append(
            f"  total: {self.total_macs / 1e9:.3f} GMACs, "
            f"params {pretty_bytes(self.total_weight_bytes)}, "
            f"traffic {pretty_bytes(self.total_mem_bytes)}"
        )
        return "\n".join(lines)


def validate_chain(layers: Sequence[Layer]) -> List[str]:
    """Best-effort shape-chaining check for linearized graphs.

    Returns a list of human-readable warnings for adjacent layers whose
    output/input footprints are wildly inconsistent.  Linearized branchy
    graphs legitimately break strict equality (a concat's input is the
    union of several earlier outputs), so this is a heuristic lint used
    by the model zoo's tests, not a hard validator.
    """
    warnings: List[str] = []
    for prev, curr in zip(layers, layers[1:]):
        prev_out = prev.output_bytes
        curr_in = curr.input_bytes
        if prev_out == 0 or curr_in == 0:
            continue
        ratio = curr_in / prev_out
        if ratio > 8.0 or ratio < 1.0 / 8.0:
            warnings.append(
                f"{prev.name} -> {curr.name}: output {prev_out} B vs "
                f"input {curr_in} B (ratio {ratio:.2f})"
            )
    return warnings
