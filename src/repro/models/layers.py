"""Layer-level description of DNN workloads.

MoCA's runtime (Algorithm 1) reasons about DNN layers purely through
their *shapes*: the number of multiply-accumulate operations, the sizes
of the weight / input-activation / output-activation tensors, and
whether the operator is compute-bound (CONV, FC) or memory-bound
(residual additions, poolings that cannot be fused).  This module
provides the layer dataclasses and the shape accounting that everything
above it (the latency model, the simulator, the schedulers) consumes.

All tensor sizes are reported in **bytes** assuming Gemmini's int8
datatype (:data:`repro.config.ELEM_BYTES`).
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.config import ELEM_BYTES


class LayerKind(enum.Enum):
    """Operator classification used by Algorithm 1.

    ``COMPUTE`` layers have high arithmetic intensity (convolutions,
    fully-connected layers).  ``MEM`` layers exhibit little data reuse
    and are bandwidth-bound (residual additions, max-poolings that
    cannot be fused with a preceding CONV).
    """

    COMPUTE = "compute"
    MEM = "mem"


class LayerError(ValueError):
    """Raised when a layer is constructed with inconsistent dimensions."""


def conv_out_dim(in_dim: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output dimension of a convolution/pooling window."""
    out = (in_dim + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise LayerError(
            f"window (k={kernel}, s={stride}, p={padding}) does not fit "
            f"input dim {in_dim}"
        )
    return out


@dataclass(frozen=True)
class Layer:
    """Base class for all layer descriptions.

    Subclasses fill in the shape accounting.  Every quantity a consumer
    may need is exposed as a property so that the rest of the library
    never re-derives shapes:

    - :attr:`macs` — multiply-accumulate count (0 for MEM layers).
    - :attr:`weight_bytes`, :attr:`input_bytes`, :attr:`output_bytes`,
      :attr:`bias_bytes` — tensor footprints.
    - :attr:`kind` — COMPUTE vs MEM per Algorithm 1.
    """

    name: str

    @property
    def kind(self) -> LayerKind:
        raise NotImplementedError

    @property
    def macs(self) -> int:
        raise NotImplementedError

    @property
    def weight_bytes(self) -> int:
        raise NotImplementedError

    @property
    def input_bytes(self) -> int:
        raise NotImplementedError

    @property
    def output_bytes(self) -> int:
        raise NotImplementedError

    @property
    def bias_bytes(self) -> int:
        return 0

    @property
    def total_load_bytes(self) -> int:
        """Bytes loaded from the shared memory system (L2-visible)."""
        return self.weight_bytes + self.input_bytes + self.bias_bytes

    @property
    def total_store_bytes(self) -> int:
        """Bytes stored to the shared memory system (L2-visible)."""
        return self.output_bytes

    @property
    def total_mem_bytes(self) -> int:
        """Total traffic to the shared L2 (Alg. 1 line 5)."""
        return self.total_load_bytes + self.total_store_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per byte of shared-memory traffic."""
        mem = self.total_mem_bytes
        return self.macs / mem if mem else 0.0


@dataclass(frozen=True)
class ConvLayer(Layer):
    """2-D convolution (optionally depthwise or grouped).

    Attributes:
        in_h, in_w: Input spatial dimensions.
        in_ch: Input channels.
        out_ch: Output channels.
        kernel: Square kernel size.
        stride: Stride (same in both dimensions).
        padding: Zero padding (same on all sides).
        groups: Channel groups; ``groups == in_ch == out_ch`` gives a
            depthwise convolution.
        has_bias: Whether a per-output-channel bias is loaded.
    """

    in_h: int = 1
    in_w: int = 1
    in_ch: int = 1
    out_ch: int = 1
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    groups: int = 1
    has_bias: bool = True

    def __post_init__(self) -> None:
        for attr in ("in_h", "in_w", "in_ch", "out_ch", "kernel", "stride"):
            if getattr(self, attr) <= 0:
                raise LayerError(f"{self.name}: {attr} must be positive")
        if self.padding < 0:
            raise LayerError(f"{self.name}: padding must be non-negative")
        if self.groups <= 0:
            raise LayerError(f"{self.name}: groups must be positive")
        if self.in_ch % self.groups or self.out_ch % self.groups:
            raise LayerError(
                f"{self.name}: channels ({self.in_ch}->{self.out_ch}) not "
                f"divisible by groups ({self.groups})"
            )
        # Validate output dims eagerly so bad shapes fail at model build.
        conv_out_dim(self.in_h, self.kernel, self.stride, self.padding)
        conv_out_dim(self.in_w, self.kernel, self.stride, self.padding)

    @property
    def out_h(self) -> int:
        return conv_out_dim(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        return conv_out_dim(self.in_w, self.kernel, self.stride, self.padding)

    @property
    def kind(self) -> LayerKind:
        return LayerKind.COMPUTE

    @property
    def macs(self) -> int:
        per_group_in = self.in_ch // self.groups
        return (
            self.out_h
            * self.out_w
            * self.out_ch
            * self.kernel
            * self.kernel
            * per_group_in
        )

    @property
    def weight_bytes(self) -> int:
        per_group_in = self.in_ch // self.groups
        return (
            self.kernel * self.kernel * per_group_in * self.out_ch * ELEM_BYTES
        )

    @property
    def input_bytes(self) -> int:
        return self.in_h * self.in_w * self.in_ch * ELEM_BYTES

    @property
    def output_bytes(self) -> int:
        return self.out_h * self.out_w * self.out_ch * ELEM_BYTES

    @property
    def bias_bytes(self) -> int:
        from repro.config import ACC_BYTES

        return self.out_ch * ACC_BYTES if self.has_bias else 0


@dataclass(frozen=True)
class DenseLayer(Layer):
    """Fully-connected layer (GEMV for batch 1).

    Attributes:
        in_features: Input feature count.
        out_features: Output feature count.
        has_bias: Whether a bias vector is loaded.
    """

    in_features: int = 1
    out_features: int = 1
    has_bias: bool = True

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise LayerError(f"{self.name}: feature counts must be positive")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.COMPUTE

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features

    @property
    def weight_bytes(self) -> int:
        return self.in_features * self.out_features * ELEM_BYTES

    @property
    def input_bytes(self) -> int:
        return self.in_features * ELEM_BYTES

    @property
    def output_bytes(self) -> int:
        return self.out_features * ELEM_BYTES

    @property
    def bias_bytes(self) -> int:
        from repro.config import ACC_BYTES

        return self.out_features * ACC_BYTES if self.has_bias else 0


@dataclass(frozen=True)
class PoolLayer(Layer):
    """Max/average pooling treated as a MEM layer (Alg. 1).

    Pooling performs comparisons rather than MACs and streams its input
    once, so Algorithm 1 classifies it as memory-bound.

    Attributes:
        in_h, in_w, channels: Input tensor shape.
        kernel, stride, padding: Pooling window.
        global_pool: If True, pool over the whole spatial extent
            (kernel/stride are ignored, output is 1x1).
    """

    in_h: int = 1
    in_w: int = 1
    channels: int = 1
    kernel: int = 2
    stride: int = 2
    padding: int = 0
    global_pool: bool = False

    def __post_init__(self) -> None:
        for attr in ("in_h", "in_w", "channels"):
            if getattr(self, attr) <= 0:
                raise LayerError(f"{self.name}: {attr} must be positive")
        if not self.global_pool:
            conv_out_dim(self.in_h, self.kernel, self.stride, self.padding)
            conv_out_dim(self.in_w, self.kernel, self.stride, self.padding)

    @property
    def out_h(self) -> int:
        if self.global_pool:
            return 1
        return conv_out_dim(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        if self.global_pool:
            return 1
        return conv_out_dim(self.in_w, self.kernel, self.stride, self.padding)

    @property
    def kind(self) -> LayerKind:
        return LayerKind.MEM

    @property
    def macs(self) -> int:
        return 0

    @property
    def weight_bytes(self) -> int:
        return 0

    @property
    def input_bytes(self) -> int:
        return self.in_h * self.in_w * self.channels * ELEM_BYTES

    @property
    def output_bytes(self) -> int:
        return self.out_h * self.out_w * self.channels * ELEM_BYTES


@dataclass(frozen=True)
class ResidualAddLayer(Layer):
    """Element-wise residual addition — the canonical MEM layer.

    Reads two operand tensors (A from the main path, B from the skip
    connection) and writes one.  Algorithm 1's MEM path distinguishes
    the operand that may still be cached (A, just produced) from the one
    fetched from DRAM (B, produced many layers earlier).

    Attributes:
        h, w, channels: Tensor shape (both operands and output).
    """

    h: int = 1
    w: int = 1
    channels: int = 1

    def __post_init__(self) -> None:
        for attr in ("h", "w", "channels"):
            if getattr(self, attr) <= 0:
                raise LayerError(f"{self.name}: {attr} must be positive")

    @property
    def tensor_bytes(self) -> int:
        return self.h * self.w * self.channels * ELEM_BYTES

    @property
    def kind(self) -> LayerKind:
        return LayerKind.MEM

    @property
    def macs(self) -> int:
        return 0

    @property
    def weight_bytes(self) -> int:
        return 0

    @property
    def input_bytes(self) -> int:
        # Two input operands (A and B).
        return 2 * self.tensor_bytes

    @property
    def output_bytes(self) -> int:
        return self.tensor_bytes

    @property
    def skip_operand_bytes(self) -> int:
        """Bytes of the long-lived skip operand (Alg. 1's InputB)."""
        return self.tensor_bytes


@dataclass(frozen=True)
class ConcatLayer(Layer):
    """Channel-wise concatenation (GoogLeNet inception outputs, YOLO
    route layers).  Pure data movement, hence a MEM layer.

    Attributes:
        h, w: Spatial dimensions shared by all inputs.
        in_channels: Channel counts of each concatenated input.
    """

    h: int = 1
    w: int = 1
    in_channels: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.h <= 0 or self.w <= 0:
            raise LayerError(f"{self.name}: spatial dims must be positive")
        if not self.in_channels or any(c <= 0 for c in self.in_channels):
            raise LayerError(f"{self.name}: need positive input channels")

    @property
    def out_channels(self) -> int:
        return sum(self.in_channels)

    @property
    def kind(self) -> LayerKind:
        return LayerKind.MEM

    @property
    def macs(self) -> int:
        return 0

    @property
    def weight_bytes(self) -> int:
        return 0

    @property
    def input_bytes(self) -> int:
        return self.h * self.w * self.out_channels * ELEM_BYTES

    @property
    def output_bytes(self) -> int:
        return self.h * self.w * self.out_channels * ELEM_BYTES


def layer_structural_digest(layer: Layer) -> str:
    """Stable digest of one layer's complete structural identity.

    Layers are frozen dataclasses, so their ``repr`` enumerates the
    class name and every constructor field (dimensions, kernel,
    stride, groups, ...) — everything the latency model's shape
    accounting can read.  Two layers digest equal iff they are
    structurally interchangeable; consumers that care about *order*
    (e.g. the network-cost cache) chain these digests in sequence.
    """
    return hashlib.sha256(repr(layer).encode()).hexdigest()[:16]


def macs_to_flops(macs: int) -> int:
    """Convert a MAC count to the FLOP count papers commonly report."""
    return 2 * macs


def layer_summary(layer: Layer) -> str:
    """One-line human-readable summary of a layer's shape accounting."""
    return (
        f"{layer.name}: {layer.kind.value}, "
        f"{layer.macs / 1e6:.2f} MMACs, "
        f"W={layer.weight_bytes / 1024:.1f} KiB, "
        f"IA={layer.input_bytes / 1024:.1f} KiB, "
        f"OA={layer.output_bytes / 1024:.1f} KiB, "
        f"AI={layer.arithmetic_intensity:.2f} MAC/B"
    )


def is_depthwise(layer: Layer) -> bool:
    """Whether ``layer`` is a depthwise convolution."""
    return (
        isinstance(layer, ConvLayer)
        and layer.groups > 1
        and layer.groups == layer.in_ch == layer.out_ch
    )


def effective_pe_utilization(layer: Layer, array_rows: int, array_cols: int) -> float:
    """Fraction of the systolic array a layer can keep busy.

    A weight-stationary 16x16 array maps (in-channel x out-channel)
    slices onto (rows x cols).  Layers with fewer channels than the
    array dimension strand PEs; depthwise convolutions map one channel
    per column.  This mirrors how Gemmini's im2col-based mapping loses
    utilization on thin layers and feeds the compute-time estimate.
    """
    if layer.kind is LayerKind.MEM:
        return 0.0
    if isinstance(layer, ConvLayer):
        if is_depthwise(layer):
            # Depthwise: no in-channel reduction to spread across rows.
            return min(1.0, layer.out_ch / (array_rows * array_cols))
        rows = min(1.0, (layer.in_ch // layer.groups) / array_rows)
        cols = min(1.0, (layer.out_ch // layer.groups) / array_cols)
        # im2col lets spatial positions fill the reduction dimension when
        # channels are thin (e.g. the 3-channel first layer), recovering
        # most of the row utilization.
        if layer.in_ch < array_rows:
            rows = min(
                1.0, (layer.kernel * layer.kernel * layer.in_ch) / array_rows
            )
        return max(rows * cols, 1.0 / (array_rows * array_cols))
    if isinstance(layer, DenseLayer):
        rows = min(1.0, layer.in_features / array_rows)
        cols = min(1.0, layer.out_features / array_cols)
        return max(rows * cols, 1.0 / (array_rows * array_cols))
    return 1.0


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division, used throughout tiling arithmetic."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def pretty_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit."""
    if n >= 1024**3:
        return f"{n / 1024**3:.2f} GiB"
    if n >= 1024**2:
        return f"{n / 1024**2:.2f} MiB"
    if n >= 1024:
        return f"{n / 1024:.2f} KiB"
    return f"{n:.0f} B"


def geomean(values) -> float:
    """Geometric mean of positive values (paper-style summary stat)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
