"""DNN workload substrate: layers, graphs, blocks, and the model zoo."""

from repro.models.blocks import LayerBlock, partition_into_blocks
from repro.models.graph import Network
from repro.models.layers import (
    ConcatLayer,
    ConvLayer,
    DenseLayer,
    Layer,
    LayerKind,
    PoolLayer,
    ResidualAddLayer,
)

__all__ = [
    "ConcatLayer",
    "ConvLayer",
    "DenseLayer",
    "Layer",
    "LayerBlock",
    "LayerKind",
    "Network",
    "PoolLayer",
    "ResidualAddLayer",
    "partition_into_blocks",
]
