"""Roofline-style workload analysis.

MoCA's scheduler classifies tasks by bandwidth appetite and its runtime
by compute-to-memory ratio; this module exposes that analysis for any
network: per-layer operational intensity against the SoC's machine
balance, the memory-bound fraction of runtime, and the per-network
summary Table III's "compute-to-memory trade-offs" refers to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import SoCConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.graph import Network
from repro.models.layers import Layer, LayerKind


def machine_balance(soc: SoCConfig,
                    mem: Optional[MemoryHierarchy] = None) -> float:
    """MACs per DRAM byte at which one tile's roofline bends.

    Layers with operational intensity below this are memory-bound on
    the tile; above it, compute-bound.
    """
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    return soc.tile.effective_macs_per_cycle / mem.dram_bandwidth


@dataclass(frozen=True)
class LayerRoofline:
    """One layer's position on the roofline.

    Attributes:
        name: Layer name.
        kind: COMPUTE or MEM.
        intensity: MACs per byte of shared-memory traffic.
        memory_bound: Whether the layer sits left of the machine
            balance point (its time is bandwidth-limited).
    """

    name: str
    kind: LayerKind
    intensity: float
    memory_bound: bool


@dataclass(frozen=True)
class NetworkRoofline:
    """Whole-network roofline summary.

    Attributes:
        network: Model name.
        balance: The SoC's machine balance (MACs/byte).
        layers: Per-layer positions.
        memory_bound_fraction: Fraction of *predicted runtime* spent in
            memory-bound layers — the quantity that decides how much a
            network suffers from (and causes) contention.
    """

    network: str
    balance: float
    layers: Tuple[LayerRoofline, ...]
    memory_bound_fraction: float

    @property
    def memory_bound_layer_count(self) -> int:
        return sum(1 for l in self.layers if l.memory_bound)


def analyze_network(
    network: Network,
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
    num_tiles: int = 1,
) -> NetworkRoofline:
    """Place every layer of ``network`` on the tile roofline."""
    from repro.core.latency import estimate_layer

    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    balance = machine_balance(soc, mem)

    rows: List[LayerRoofline] = []
    bound_time = 0.0
    total_time = 0.0
    for layer in network.layers:
        est = estimate_layer(layer, soc, mem, num_tiles=num_tiles)
        intensity = (
            layer.macs / est.from_dram_bytes if est.from_dram_bytes else
            float("inf")
        )
        memory_bound = est.memory_ideal >= est.compute_ideal
        rows.append(
            LayerRoofline(
                name=layer.name,
                kind=layer.kind,
                intensity=intensity,
                memory_bound=memory_bound,
            )
        )
        total_time += est.prediction
        if memory_bound:
            bound_time += est.prediction
    return NetworkRoofline(
        network=network.name,
        balance=balance,
        layers=tuple(rows),
        memory_bound_fraction=bound_time / total_time if total_time else 0.0,
    )


def format_roofline(summary: NetworkRoofline, top: int = 10) -> str:
    """Render the analysis: balance point, fraction, worst offenders."""
    lines = [
        f"Roofline of {summary.network}: machine balance "
        f"{summary.balance:.1f} MAC/B",
        f"memory-bound runtime fraction: "
        f"{100 * summary.memory_bound_fraction:.1f}% "
        f"({summary.memory_bound_layer_count}/{len(summary.layers)} layers)",
        f"{'layer':<28s}{'kind':>9s}{'MAC/B':>10s}{'bound':>7s}",
    ]
    ranked = sorted(summary.layers, key=lambda l: l.intensity)[:top]
    for l in ranked:
        intensity = "inf" if l.intensity == float("inf") else f"{l.intensity:.1f}"
        lines.append(
            f"{l.name:<28s}{l.kind.value:>9s}{intensity:>10s}"
            f"{'mem' if l.memory_bound else 'comp':>7s}"
        )
    return "\n".join(lines)
