"""Layer-block grouping.

Section IV-D of the paper: *"instead of the layerwise granularity to
reconfigure resources, we break down DNN networks into layer blocks,
which consist of multiple layers, and reconfigure at the layer-block
granularity, as recent work demonstrates layer-block granularity
delivers supreme performance [Veltair]"*.

A block groups consecutive layers with similar compute-to-memory
character so that the runtime/scheduler reconfigures at block
boundaries rather than at every layer.  The grouping here follows the
paper's criterion: split when the compute-vs-MEM classification flips
or when the arithmetic intensity changes by more than a configurable
factor, with a cap on layers per block so long uniform stretches still
give the runtime periodic reconfiguration points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.models.graph import Network
from repro.models.layers import Layer, LayerKind


@dataclass(frozen=True)
class LayerBlock:
    """A group of consecutive layers scheduled as one unit.

    Attributes:
        index: Block position within the network.
        layers: The grouped layers, in execution order.
        kind: COMPUTE if any layer in the block computes, else MEM.
    """

    index: int
    layers: Tuple[Layer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("layer block cannot be empty")

    @property
    def kind(self) -> LayerKind:
        if any(l.kind is LayerKind.COMPUTE for l in self.layers):
            return LayerKind.COMPUTE
        return LayerKind.MEM

    @property
    def macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(l.weight_bytes for l in self.layers)

    @property
    def bias_bytes(self) -> int:
        return sum(l.bias_bytes for l in self.layers)

    @property
    def input_bytes(self) -> int:
        return self.layers[0].input_bytes

    @property
    def output_bytes(self) -> int:
        return self.layers[-1].output_bytes

    @property
    def total_load_bytes(self) -> int:
        return sum(l.total_load_bytes for l in self.layers)

    @property
    def total_store_bytes(self) -> int:
        return sum(l.total_store_bytes for l in self.layers)

    @property
    def total_mem_bytes(self) -> int:
        return sum(l.total_mem_bytes for l in self.layers)

    @property
    def arithmetic_intensity(self) -> float:
        mem = self.total_mem_bytes
        return self.macs / mem if mem else 0.0

    @property
    def name(self) -> str:
        if len(self.layers) == 1:
            return self.layers[0].name
        return f"{self.layers[0].name}..{self.layers[-1].name}"


def partition_into_blocks(
    network: Network,
    max_layers_per_block: int = 6,
    intensity_split_factor: float = 4.0,
) -> List[LayerBlock]:
    """Group a network's layers into reconfiguration blocks.

    Consecutive layers join the same block while (a) their COMPUTE/MEM
    classification matches the block's, (b) their arithmetic intensity
    stays within ``intensity_split_factor`` of the block's running
    geometric mean, and (c) the block holds fewer than
    ``max_layers_per_block`` layers.

    Args:
        network: The network to partition.
        max_layers_per_block: Upper bound on layers per block.
        intensity_split_factor: Split when a layer's arithmetic
            intensity differs from the block mean by more than this
            multiplicative factor.

    Returns:
        The blocks, covering every layer exactly once, in order.
    """
    if max_layers_per_block <= 0:
        raise ValueError("max_layers_per_block must be positive")
    if intensity_split_factor < 1.0:
        raise ValueError("intensity_split_factor must be >= 1")

    blocks: List[LayerBlock] = []
    current: List[Layer] = []

    def flush() -> None:
        if current:
            blocks.append(LayerBlock(index=len(blocks), layers=tuple(current)))
            current.clear()

    for layer in network.layers:
        if not current:
            current.append(layer)
            continue
        same_kind = layer.kind is current[0].kind
        within_cap = len(current) < max_layers_per_block
        intensity_ok = True
        if layer.kind is LayerKind.COMPUTE and current[0].kind is LayerKind.COMPUTE:
            block_ai = _mean_intensity(current)
            layer_ai = layer.arithmetic_intensity
            if block_ai > 0 and layer_ai > 0:
                ratio = max(block_ai / layer_ai, layer_ai / block_ai)
                intensity_ok = ratio <= intensity_split_factor
        if same_kind and within_cap and intensity_ok:
            current.append(layer)
        else:
            flush()
            current.append(layer)
    flush()
    return blocks


def _mean_intensity(layers: List[Layer]) -> float:
    """Geometric mean arithmetic intensity of COMPUTE layers."""
    import math

    vals = [l.arithmetic_intensity for l in layers if l.arithmetic_intensity > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def blocks_cover_network(blocks: List[LayerBlock], network: Network) -> bool:
    """Whether ``blocks`` partition ``network``'s layers exactly."""
    covered = [layer for block in blocks for layer in block.layers]
    return covered == list(network.layers)
