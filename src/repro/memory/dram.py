"""DRAM bandwidth model.

DRAM is the second — and in the paper's evaluation the dominant —
shared resource.  MoCA's whole premise is that execution latency of
DNN layers is highly correlated with the number of in-flight memory
requests, so a bandwidth model (peak rate plus an efficiency derate
for row-buffer and refresh overheads under multi-requestor interleave)
is the level of fidelity the runtime itself reasons at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SoCConfig


@dataclass(frozen=True)
class DramModel:
    """Bandwidth model with multi-requestor contention efficiency.

    A single well-formed DMA stream achieves close to peak bandwidth
    (long sequential bursts keep row buffers open).  When several
    requestors *oversubscribe* the channel, the controller interleaves
    their bursts: row-buffer locality is destroyed, bank conflicts and
    read/write turnarounds multiply, and the *achieved* total bandwidth
    drops well below the pin rate — this is the super-linear
    degradation behind Figure 1's worst cases, and avoiding it (by
    regulating total demand below the peak) is precisely the leverage
    of MoCA's throttling.

    Attributes:
        peak_bytes_per_cycle: Pin bandwidth in bytes per SoC cycle.
        efficiency: Achievable fraction of pin bandwidth for a single
            stream (row misses, refresh).
        contention_penalty: Maximum fractional bandwidth loss when many
            streams oversubscribe the channel.  The loss ramps as
            ``contention_penalty * (1 - 1/n)`` for ``n`` competing
            streams, i.e. 0 for one stream, approaching the full
            penalty for many.
    """

    peak_bytes_per_cycle: float
    efficiency: float = 1.0
    contention_penalty: float = 0.5

    def __post_init__(self) -> None:
        if self.peak_bytes_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if not 0.0 <= self.contention_penalty < 1.0:
            raise ValueError("contention_penalty must be in [0, 1)")

    @classmethod
    def from_soc(cls, soc: SoCConfig) -> "DramModel":
        """Build the DRAM model from an SoC configuration (Table II)."""
        return cls(peak_bytes_per_cycle=soc.dram_bandwidth_bytes_per_cycle)

    @property
    def usable_bandwidth(self) -> float:
        """Single-stream achievable bandwidth in bytes per cycle."""
        return self.peak_bytes_per_cycle * self.efficiency

    def effective_bandwidth(
        self, num_streams: int, oversubscribed: bool
    ) -> float:
        """Achieved total bandwidth for ``num_streams`` requestors.

        The interleaving penalty applies only when the streams'
        combined demand exceeds what the channel can deliver — a
        regulated system whose total demand fits under the peak keeps
        single-stream efficiency.
        """
        if num_streams < 0:
            raise ValueError("num_streams must be non-negative")
        base = self.usable_bandwidth
        if not oversubscribed or num_streams <= 1:
            return base
        loss = self.contention_penalty * (1.0 - 1.0 / num_streams)
        return base * (1.0 - loss)

    def transfer_cycles(self, num_bytes: float) -> float:
        """Cycles to move ``num_bytes`` at the usable bandwidth."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes / self.usable_bandwidth
