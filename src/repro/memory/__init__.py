"""Shared memory-system substrate: L2, DRAM and the bandwidth arbiter."""

from repro.memory.arbiter import AllocationError, allocate_bandwidth
from repro.memory.dram import DramModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.l2 import L2Model

__all__ = [
    "AllocationError",
    "DramModel",
    "L2Model",
    "MemoryHierarchy",
    "allocate_bandwidth",
]
