"""The full shared-memory hierarchy: L2 + DRAM + arbitration.

Bundles the capacity and bandwidth models Algorithm 1 consults so the
latency estimator and the simulator take a single object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.config import SoCConfig
from repro.memory.arbiter import allocate_bandwidth
from repro.memory.dram import DramModel
from repro.memory.l2 import L2Model


@dataclass(frozen=True)
class MemoryHierarchy:
    """Shared L2 + DRAM with bandwidth arbitration.

    Attributes:
        l2: Shared cache model.
        dram: DRAM bandwidth model.
    """

    l2: L2Model
    dram: DramModel

    @classmethod
    def from_soc(cls, soc: SoCConfig) -> "MemoryHierarchy":
        """Build the hierarchy from an SoC configuration (Table II)."""
        return cls(l2=L2Model.from_soc(soc), dram=DramModel.from_soc(soc))

    @property
    def dram_bandwidth(self) -> float:
        """Usable DRAM bandwidth in bytes per cycle (Alg. 1 DRAM_BW)."""
        return self.dram.usable_bandwidth

    @property
    def l2_bandwidth(self) -> float:
        """Aggregate L2 bandwidth in bytes per cycle (Alg. 1 L2_BW)."""
        return self.l2.peak_bandwidth

    def input_cached(self, input_bytes: int, num_sharers: int = 1) -> bool:
        """Algorithm 1 line 7: can the input activation stay resident?"""
        return self.l2.fits(input_bytes, num_sharers)

    def tile_cached(self, per_tile_bytes: int, num_sharers: int = 1) -> bool:
        """Algorithm 1 line 10: does one data tile survive in the L2?"""
        return self.l2.fits(per_tile_bytes, num_sharers)

    def share_dram(
        self,
        demands: Mapping[str, float],
        caps: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Arbitrate DRAM bandwidth among requestors (see arbiter)."""
        if not demands:
            return {}
        return allocate_bandwidth(demands, self.dram_bandwidth, caps)
