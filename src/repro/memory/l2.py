"""Shared L2 (system-level cache) model.

The L2 is the first shared resource co-located accelerator tiles
compete for.  Algorithm 1 uses it in two ways: capacity (can an input
activation or a data tile stay resident between uses?) and bandwidth
(every load/store transits the L2 at the banked peak rate).  Capacity
decisions also depend on how many applications currently share the
cache — with co-runners, each application effectively owns a fraction
of the capacity, which is how contention turns reuse into DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SoCConfig


@dataclass(frozen=True)
class L2Model:
    """Capacity/bandwidth model of the shared L2.

    Attributes:
        capacity_bytes: Total cache capacity.
        banks: Number of independently addressable banks.
        bytes_per_bank_cycle: Peak bandwidth of one bank.
        residency_fraction: Fraction of the capacity usefully available
            to DNN tensors once code, metadata and conflict misses are
            accounted for.
    """

    capacity_bytes: int
    banks: int
    bytes_per_bank_cycle: int
    residency_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("L2 capacity must be positive")
        if self.banks <= 0 or self.bytes_per_bank_cycle <= 0:
            raise ValueError("L2 bank parameters must be positive")
        if not 0.0 < self.residency_fraction <= 1.0:
            raise ValueError("residency_fraction must be in (0, 1]")

    @classmethod
    def from_soc(cls, soc: SoCConfig) -> "L2Model":
        """Build the L2 model from an SoC configuration (Table II)."""
        return cls(
            capacity_bytes=soc.l2_bytes,
            banks=soc.l2_banks,
            bytes_per_bank_cycle=soc.l2_bytes_per_bank_cycle,
        )

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate peak L2 bandwidth in bytes/cycle."""
        return float(self.banks * self.bytes_per_bank_cycle)

    def effective_capacity(self, num_sharers: int = 1) -> float:
        """Capacity one application can rely on with ``num_sharers``.

        Capacity partitions evenly among sharers — the pessimistic but
        robust assumption MoCA's runtime makes when predicting whether
        reuse survives co-location.
        """
        if num_sharers <= 0:
            raise ValueError("num_sharers must be positive")
        return self.capacity_bytes * self.residency_fraction / num_sharers

    def fits(self, num_bytes: int, num_sharers: int = 1) -> bool:
        """Whether ``num_bytes`` stays resident given ``num_sharers``."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes <= self.effective_capacity(num_sharers)
