"""DRAM bandwidth arbitration across co-running accelerator tiles.

Two allocation regimes matter for the reproduction:

- **Unmanaged** (all baselines): the memory controller interleaves
  requests from all requestors, so under saturation each requestor's
  achieved bandwidth is proportional to its issue rate (its demand).
  This is the behaviour whose worst cases motivate the paper (Fig. 1).
- **Regulated** (MoCA): each tile's achieved bandwidth is additionally
  clamped by the throttle cap its runtime configured
  (``threshold_load / window``); bandwidth freed by the caps is
  redistributed demand-proportionally to uncapped requestors.

:func:`allocate_bandwidth` implements both as capped proportional
water-filling and guarantees conservation (never allocates more than
the total), cap-respect and demand-respect.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

_REL_TOL = 1e-12
#: The freeze-condition tolerance factor, hoisted: ``1 + _REL_TOL``
#: is a loop-invariant float the water-fill inner loops were
#: recomputing per requestor per round.
_REL1 = 1 + _REL_TOL


class AllocationError(ValueError):
    """Raised on malformed allocation inputs."""


def waterfill_grants(wants, weights, total):
    """Weighted water-fill over pre-validated parallel lists.

    The allocation core shared by :func:`allocate_bandwidth` (which
    wraps it in input validation and dict plumbing) and the trusted
    hot paths — the simulator's vectorized block-time solver and
    MoCA's batched regulation — which call it directly on
    structure-of-arrays state.  One implementation, so the fast paths
    cannot drift from the validated reference semantics.

    Args:
        wants: Per-requestor capped want ``min(demand, cap)``, >= 0.
        weights: Per-requestor sharing weight, >= 0 (callers apply the
            denormal ``> 1e-9`` filter where their semantics need it).
        total: Bandwidth to split; the caller has already established
            ``sum(wants) > total * (1 + _REL_TOL)`` (otherwise every
            requestor just keeps its want and no fill is needed).

    Returns:
        ``(grants, freeze_order)`` — the granted bandwidth per index,
        and the order indices froze in.  Float operations replicate
        the historical dict-based loop exactly, including the final
        conservation clamp summing grants in *freeze* order, so the
        result is bit-identical to the pre-refactor implementation.
    """
    n = len(wants)
    grants = [0.0] * n
    frozen = [False] * n
    n_active = n
    freeze_order: list = []
    remaining = total
    # Active requestors are tracked by a boolean mask instead of a
    # rebuilt index list per round: ascending index order (the
    # historical active-list order) is preserved by iterating
    # range(n), and the hot paths call this on every oversubscribed
    # event, so the per-round list/set churn was measurable.
    while n_active:
        weight_sum = 0.0
        for i in range(n):
            if not frozen[i]:
                weight_sum += weights[i]
        if weight_sum <= 0:
            # Degenerate: no weights; fall back to equal split capped
            # at want.
            equal = remaining / n_active
            for i in range(n):
                if not frozen[i]:
                    grants[i] = min(wants[i], equal)
                    freeze_order.append(i)
            break
        scale = remaining / weight_sum
        n_newly = 0
        for i in range(n):
            if not frozen[i] and (
                wants[i] <= weights[i] * scale * _REL1
            ):
                # Freeze at full want; grants/remaining update in the
                # same ascending order the historical loop used.
                grants[i] = wants[i]
                remaining -= wants[i]
                freeze_order.append(i)
                frozen[i] = True
                n_newly += 1
        if not n_newly:
            for i in range(n):
                if not frozen[i]:
                    grants[i] = weights[i] * scale
                    freeze_order.append(i)
            break
        n_active -= n_newly
        if remaining <= 0:
            for i in range(n):
                if not frozen[i]:
                    grants[i] = 0.0
                    freeze_order.append(i)
            break
    # Final conservation clamp against floating-point drift.  The sum
    # runs in freeze order — the insertion order of the historical
    # ``frozen`` dict — because float addition is order-sensitive.
    granted = 0.0
    for i in freeze_order:
        granted += grants[i]
    if granted > total:
        factor = total / granted
        for i in range(n):
            grants[i] = grants[i] * factor
    return grants, freeze_order


def waterfill_grant_last(wants, weights, total):
    """:func:`waterfill_grants` specialised to the caller that only
    consumes the *last* requestor's grant — MoCA's batched regulation,
    where the app under regulation always sits at the end of the
    parallel lists and its co-runners' grants are discarded.

    Bit-identical to ``waterfill_grants(wants, weights, total)[0][-1]``:
    the freeze rounds perform the same float operations in the same
    order, and the conservation clamp accumulates the granted sum at
    each freeze point — the same addends in the same freeze order the
    reference's deferred ``freeze_order`` loop replays — so the final
    scale factor is the same float.  Skipping the freeze-order list,
    the replay pass and the grants array itself (only the last slot is
    ever read back) was measurable at regulation's call rate.
    """
    n = len(wants)
    i_last = n - 1
    frozen = [False] * n
    n_active = n
    granted = 0.0
    remaining = total
    last = 0.0
    while n_active:
        weight_sum = 0.0
        for i in range(n):
            if not frozen[i]:
                weight_sum += weights[i]
        if weight_sum <= 0:
            equal = remaining / n_active
            for i in range(n):
                if not frozen[i]:
                    w = wants[i]
                    g = w if w <= equal else equal
                    granted += g
                    if i == i_last:
                        last = g
            break
        scale = remaining / weight_sum
        n_newly = 0
        for i in range(n):
            if not frozen[i] and (
                wants[i] <= weights[i] * scale * _REL1
            ):
                w = wants[i]
                remaining -= w
                granted += w
                frozen[i] = True
                n_newly += 1
                if i == i_last:
                    last = w
        if not n_newly:
            for i in range(n):
                if not frozen[i]:
                    g = weights[i] * scale
                    granted += g
                    if i == i_last:
                        last = g
            break
        n_active -= n_newly
        if remaining <= 0:
            # Remaining unfrozen requestors get 0.0 (``last`` keeps
            # its initial 0.0 unless the last slot froze above; the
            # granted sum is unchanged).
            break
    if granted > total:
        last = last * (total / granted)
    return last


def allocate_bandwidth(
    demands: Mapping[str, float],
    total: float,
    caps: Optional[Mapping[str, float]] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Split ``total`` bandwidth among requestors.

    Args:
        demands: Requestor id -> desired bandwidth (bytes/cycle). A
            demand is the rate the requestor would consume if alone.
        total: Total bandwidth available.
        caps: Optional requestor id -> regulation cap. Missing ids are
            uncapped. ``float('inf')`` and ``None`` values mean uncapped.
        weights: Optional requestor id -> sharing weight used when the
            bandwidth is oversubscribed.  Defaults to the demands
            themselves, which models unmanaged demand-proportional
            interleaving; MoCA's runtime passes its dynamic priority
            scores instead.

    Returns:
        Requestor id -> granted bandwidth, satisfying:

        - ``0 <= grant[i] <= min(demand[i], cap[i])``;
        - ``sum(grants) <= total`` (within floating tolerance);
        - if ``sum(min(demand, cap)) <= total``, every requestor gets
          its full (capped) demand;
        - otherwise the shortfall is shed by weighted water-filling:
          requestors whose (capped) want fits inside their weighted
          fair share keep it, the rest split the remainder
          proportionally to their weights.

    Raises:
        AllocationError: On invalid demands/caps/weights or total.
    """
    if total <= 0:
        raise AllocationError("total bandwidth must be positive")
    for key, demand in demands.items():
        if demand < 0 or math.isnan(demand):
            raise AllocationError(f"demand for {key!r} must be >= 0")
    effective_caps: Dict[str, float] = {}
    for key in demands:
        cap = None if caps is None else caps.get(key)
        if cap is None:
            effective_caps[key] = float("inf")
        else:
            if cap < 0 or math.isnan(cap):
                raise AllocationError(f"cap for {key!r} must be >= 0")
            effective_caps[key] = cap
    if weights is None:
        share_weights = dict(demands)
    else:
        share_weights = {}
        for key in demands:
            w = weights.get(key, 0.0)
            if w < 0 or math.isnan(w):
                raise AllocationError(f"weight for {key!r} must be >= 0")
            # Denormal weights make the water-fill numerically unstable
            # (scale overflows); treat them as zero.
            share_weights[key] = w if w > 1e-9 else 0.0

    # Each requestor can never usefully receive more than min(demand, cap).
    keys = list(demands)
    wants = [min(demands[k], effective_caps[k]) for k in keys]
    total_wants = 0.0
    for w in wants:
        total_wants += w
    if total_wants <= total * (1 + _REL_TOL):
        return dict(zip(keys, wants))

    # Oversubscribed: weighted water-filling. Requestors whose capped
    # want fits inside their weighted fair share keep it; the rest
    # split the remaining bandwidth proportionally to weight.
    weights = [share_weights[k] for k in keys]
    grants, freeze_order = waterfill_grants(wants, weights, total)
    # The historical implementation returned the water-fill's
    # ``frozen`` dict, whose insertion order is the freeze order;
    # preserve that ordering for exact drop-in behaviour.
    return {keys[i]: grants[i] for i in freeze_order}
