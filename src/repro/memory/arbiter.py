"""DRAM bandwidth arbitration across co-running accelerator tiles.

Two allocation regimes matter for the reproduction:

- **Unmanaged** (all baselines): the memory controller interleaves
  requests from all requestors, so under saturation each requestor's
  achieved bandwidth is proportional to its issue rate (its demand).
  This is the behaviour whose worst cases motivate the paper (Fig. 1).
- **Regulated** (MoCA): each tile's achieved bandwidth is additionally
  clamped by the throttle cap its runtime configured
  (``threshold_load / window``); bandwidth freed by the caps is
  redistributed demand-proportionally to uncapped requestors.

:func:`allocate_bandwidth` implements both as capped proportional
water-filling and guarantees conservation (never allocates more than
the total), cap-respect and demand-respect.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

_REL_TOL = 1e-12


class AllocationError(ValueError):
    """Raised on malformed allocation inputs."""


def allocate_bandwidth(
    demands: Mapping[str, float],
    total: float,
    caps: Optional[Mapping[str, float]] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Split ``total`` bandwidth among requestors.

    Args:
        demands: Requestor id -> desired bandwidth (bytes/cycle). A
            demand is the rate the requestor would consume if alone.
        total: Total bandwidth available.
        caps: Optional requestor id -> regulation cap. Missing ids are
            uncapped. ``float('inf')`` and ``None`` values mean uncapped.
        weights: Optional requestor id -> sharing weight used when the
            bandwidth is oversubscribed.  Defaults to the demands
            themselves, which models unmanaged demand-proportional
            interleaving; MoCA's runtime passes its dynamic priority
            scores instead.

    Returns:
        Requestor id -> granted bandwidth, satisfying:

        - ``0 <= grant[i] <= min(demand[i], cap[i])``;
        - ``sum(grants) <= total`` (within floating tolerance);
        - if ``sum(min(demand, cap)) <= total``, every requestor gets
          its full (capped) demand;
        - otherwise the shortfall is shed by weighted water-filling:
          requestors whose (capped) want fits inside their weighted
          fair share keep it, the rest split the remainder
          proportionally to their weights.

    Raises:
        AllocationError: On invalid demands/caps/weights or total.
    """
    if total <= 0:
        raise AllocationError("total bandwidth must be positive")
    for key, demand in demands.items():
        if demand < 0 or math.isnan(demand):
            raise AllocationError(f"demand for {key!r} must be >= 0")
    effective_caps: Dict[str, float] = {}
    for key in demands:
        cap = None if caps is None else caps.get(key)
        if cap is None:
            effective_caps[key] = float("inf")
        else:
            if cap < 0 or math.isnan(cap):
                raise AllocationError(f"cap for {key!r} must be >= 0")
            effective_caps[key] = cap
    if weights is None:
        share_weights = dict(demands)
    else:
        share_weights = {}
        for key in demands:
            w = weights.get(key, 0.0)
            if w < 0 or math.isnan(w):
                raise AllocationError(f"weight for {key!r} must be >= 0")
            # Denormal weights make the water-fill numerically unstable
            # (scale overflows); treat them as zero.
            share_weights[key] = w if w > 1e-9 else 0.0

    # Each requestor can never usefully receive more than min(demand, cap).
    wants = {k: min(demands[k], effective_caps[k]) for k in demands}
    grants = dict(wants)
    if sum(grants.values()) <= total * (1 + _REL_TOL):
        return grants

    # Oversubscribed: weighted water-filling. Requestors whose capped
    # want fits inside their weighted fair share keep it; the rest
    # split the remaining bandwidth proportionally to weight.
    frozen: Dict[str, float] = {}
    active = dict(wants)
    remaining = total
    while active:
        weight_sum = sum(share_weights[k] for k in active)
        if weight_sum <= 0:
            # Degenerate: no weights; fall back to equal split capped
            # at want.
            equal = remaining / len(active)
            for k, want in active.items():
                frozen[k] = min(want, equal)
            break
        scale = remaining / weight_sum
        newly_frozen = {
            k: want
            for k, want in active.items()
            if want <= share_weights[k] * scale * (1 + _REL_TOL)
        }
        if not newly_frozen:
            for k in active:
                frozen[k] = share_weights[k] * scale
            break
        for k, want in newly_frozen.items():
            frozen[k] = want
            remaining -= want
            del active[k]
        if remaining <= 0:
            for k in active:
                frozen[k] = 0.0
            break
    # Final conservation clamp against floating-point drift.
    granted = sum(frozen.values())
    if granted > total:
        factor = total / granted
        frozen = {k: v * factor for k, v in frozen.items()}
    return frozen
