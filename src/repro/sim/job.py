"""Tasks and jobs: the simulator's unit of work.

A **task** is one dispatched inference query: a network, a dispatch
time, a user priority and an SLA deadline.  A **job** is the mutable
runtime state of a task inside the simulator: which layer block it is
on, how far through it, which resources it holds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Optional

from repro.core.latency import NetworkCost


class JobPhase(enum.Enum):
    """Lifecycle of a task inside the simulator."""

    PENDING = "pending"      # not yet dispatched
    READY = "ready"          # dispatched, waiting in the task queue
    RUNNING = "running"      # executing on tiles
    FINISHED = "finished"


@dataclass(frozen=True)
class Task:
    """One inference query.

    Attributes:
        task_id: Unique id.
        network_name: Model being run.
        cost: Precomputed per-block costs of the model.
        dispatch_cycle: When the query enters the system.
        priority: Static user-given priority, 0 (lowest) to 11.
        qos_target_cycles: SLA target measured from dispatch; the
            absolute deadline is ``dispatch_cycle + qos_target_cycles``.
        isolated_cycles: Latency of the task running alone on the full
            SoC (the metrics' ``C_single``).
    """

    task_id: str
    network_name: str
    cost: NetworkCost
    dispatch_cycle: float
    priority: int
    qos_target_cycles: float
    isolated_cycles: float

    def __post_init__(self) -> None:
        if self.dispatch_cycle < 0:
            raise ValueError("dispatch_cycle must be non-negative")
        if not 0 <= self.priority <= 11:
            raise ValueError("priority must be within 0..11")
        if self.qos_target_cycles <= 0:
            raise ValueError("qos_target_cycles must be positive")
        if self.isolated_cycles <= 0:
            raise ValueError("isolated_cycles must be positive")

    @cached_property
    def deadline(self) -> float:
        """Absolute SLA deadline in cycles (cached: the regulation
        hot path reads it once per decision item)."""
        return self.dispatch_cycle + self.qos_target_cycles


@dataclass(slots=True)
class Job:
    """Mutable runtime state of one task.

    Attributes:
        task: The underlying task.
        phase: Lifecycle phase.
        block_idx: Index of the block currently executing.
        progress: Fraction of the current block completed, in [0, 1].
        tiles: Tiles currently held (0 when not running).
        bw_cap: MoCA throttle cap on the job's DRAM share in
            bytes/cycle; None when unthrottled.
        stall_until: Cycle until which the job is stalled (migration /
            reconfiguration penalties).
        started_at: First cycle the job ran.
        finished_at: Completion cycle.
        preemptions: Times the job was preempted (Prema).
        tile_repartitions: Times the job's tile count changed while
            running (each charged the compute-migration stall).
        bw_reconfigs: Times the job's throttle cap changed.
        stall_cycles: Total cycles spent stalled.
    """

    task: Task
    phase: JobPhase = JobPhase.PENDING
    block_idx: int = 0
    progress: float = 0.0
    tiles: int = 0
    bw_cap: Optional[float] = None
    stall_until: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    preemptions: int = 0
    tile_repartitions: int = 0
    bw_reconfigs: int = 0
    stall_cycles: float = 0.0
    #: Mirror of ``task.task_id``.  A plain slot, not a property: the
    #: engine reads it on every job on every event, and the double
    #: indirection was measurable on the hot path.
    job_id: str = field(init=False, repr=False, compare=False)
    #: The engine's structure-of-arrays runtime table for this job's
    #: network, attached at simulator construction (None for jobs
    #: never handed to an engine).
    _table: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Horizon-kernel per-job solve cache: the ``(block_idx, tiles,
    #: t_full, from_dram, demand)`` tuple of the last table row read,
    #: refreshed when the (block, tiles) key moves.  Engine-private
    #: scratch (slots forbid ad-hoc attributes), never part of results.
    _kval: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Horizon-kernel per-job block time under the last solved
    #: allocation epoch (valid only while the kernel's solved epoch
    #: matches; see ``Simulator._advance_horizon``).
    _kT: float = field(
        default=0.0, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.job_id = self.task.task_id

    @property
    def num_blocks(self) -> int:
        return len(self.task.cost.blocks)

    @property
    def current_block(self):
        """Cost of the block currently executing."""
        return self.task.cost.blocks[self.block_idx]

    @property
    def at_block_boundary(self) -> bool:
        """True right after a block completion (progress reset)."""
        return self.progress == 0.0

    @property
    def remaining_blocks(self) -> int:
        return self.num_blocks - self.block_idx

    def is_stalled(self, now: float) -> bool:
        """Whether the job is serving a stall penalty at ``now``."""
        return now < self.stall_until

    @property
    def latency(self) -> float:
        """Dispatch-to-finish latency (the paper's measured latency)."""
        if self.finished_at is None:
            raise ValueError(f"{self.job_id} has not finished")
        return self.finished_at - self.task.dispatch_cycle

    @property
    def met_sla(self) -> bool:
        """Whether the job finished within its SLA target."""
        return self.latency <= self.task.qos_target_cycles


@dataclass(frozen=True)
class TaskResult:
    """Immutable per-task outcome extracted after simulation.

    Attributes mirror the fields the metrics need.
    """

    task_id: str
    network_name: str
    priority: int
    dispatch_cycle: float
    started_at: float
    finished_at: float
    qos_target_cycles: float
    isolated_cycles: float
    preemptions: int
    tile_repartitions: int
    bw_reconfigs: int
    stall_cycles: float

    @property
    def latency(self) -> float:
        return self.finished_at - self.dispatch_cycle

    @property
    def runtime(self) -> float:
        return self.finished_at - self.started_at

    @property
    def wait_cycles(self) -> float:
        return self.started_at - self.dispatch_cycle

    @property
    def met_sla(self) -> bool:
        return self.latency <= self.qos_target_cycles

    @property
    def slowdown(self) -> float:
        """Multi-tenant latency relative to isolated latency."""
        return self.latency / self.isolated_cycles

    @classmethod
    def from_job(cls, job: Job) -> "TaskResult":
        if job.finished_at is None or job.started_at is None:
            raise ValueError(f"{job.job_id} did not finish")
        return cls(
            task_id=job.task.task_id,
            network_name=job.task.network_name,
            priority=job.task.priority,
            dispatch_cycle=job.task.dispatch_cycle,
            started_at=job.started_at,
            finished_at=job.finished_at,
            qos_target_cycles=job.task.qos_target_cycles,
            isolated_cycles=job.task.isolated_cycles,
            preemptions=job.preemptions,
            tile_repartitions=job.tile_repartitions,
            bw_reconfigs=job.bw_reconfigs,
            stall_cycles=job.stall_cycles,
        )


def results_from_jobs(jobs: List[Job]) -> List[TaskResult]:
    """Convert finished jobs to results, sorted by task id."""
    return sorted(
        (TaskResult.from_job(j) for j in jobs), key=lambda r: r.task_id
    )
