"""Simulation event trace.

An append-only log of scheduler/runtime actions, used by tests to
verify policy behaviour and by examples to narrate a run.  Disabled by
default in large sweeps for speed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class TraceEvent(enum.Enum):
    """Kinds of logged events."""

    DISPATCH = "dispatch"
    START = "start"
    BLOCK_DONE = "block_done"
    FINISH = "finish"
    PREEMPT = "preempt"
    TILE_REPARTITION = "tile_repartition"
    BW_RECONFIG = "bw_reconfig"
    CONTENTION = "contention"


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        cycle: Simulation time of the event.
        event: Event kind.
        job_id: Affected job (empty for system-wide events).
        detail: Free-form detail string.
    """

    cycle: float
    event: TraceEvent
    job_id: str = ""
    detail: str = ""


class Trace:
    """Append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def log(self, cycle: float, event: TraceEvent, job_id: str = "",
            detail: str = "") -> None:
        """Append a record (no-op when disabled)."""
        if not self.enabled:
            return
        self.records.append(
            TraceRecord(cycle=cycle, event=event, job_id=job_id, detail=detail)
        )

    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, event: TraceEvent) -> List[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self.records if r.event is event]

    def for_job(self, job_id: str) -> List[TraceRecord]:
        """All records touching one job, in time order."""
        return [r for r in self.records if r.job_id == job_id]

    def count(self, event: TraceEvent, job_id: Optional[str] = None) -> int:
        """Count records of a kind, optionally for one job."""
        return sum(
            1
            for r in self.records
            if r.event is event and (job_id is None or r.job_id == job_id)
        )

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (up to ``limit``) records."""
        rows = self.records if limit is None else self.records[:limit]
        return "\n".join(
            f"@{r.cycle:>14,.0f}  {r.event.value:<16s} {r.job_id:<12s} {r.detail}"
            for r in rows
        )
