"""Multi-tenant workload generation (Section IV-B).

The paper generates scenarios by randomly dispatching N inference
tasks (N between 200 and 500) to the system, assigning each a static
priority between 0 and 11 following the distribution observed in
Google datacenter traces [11], [37] (the same methodology as Prema and
Planaria).

The trace studies report a heavily skewed distribution: the bulk of
tasks arrive at low/free priorities, a broad middle band carries
production work, and a thin tail is latency-critical.  The exact table
is not published, so :data:`PRIORITY_WEIGHTS` encodes that shape and is
documented as a reproduction choice (DESIGN.md §6).

Arrival times are sampled uniformly over a window sized so the offered
load (total two-tile work divided by the SoC's slot capacity) matches a
configurable load factor — the random-overlap regime of the paper's
"randomly dispatched at different times".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SoCConfig
from repro.core.latency import build_network_cost
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.graph import Network
from repro.sim.job import Task
from repro.sim.qos import QosLevel, QosModel

#: Relative frequency of each static priority level 0..11 (Google-trace
#: shaped: mass at the bottom, thin latency-critical tail).
PRIORITY_WEIGHTS: Sequence[float] = (
    20.0, 14.0, 11.0,          # p-Low  (0-2)
    9.0, 8.0, 7.0, 6.0, 5.0, 4.0,  # p-Mid  (3-8)
    2.5, 1.5, 1.0,             # p-High (9-11)
)

#: Priority-group boundaries used by Figure 6 (p-Low 0-2, p-Mid 3-8,
#: p-High 9-11).
PRIORITY_GROUPS: Dict[str, range] = {
    "p-Low": range(0, 3),
    "p-Mid": range(3, 9),
    "p-High": range(9, 12),
}


def priority_group(priority: int) -> str:
    """Map a 0-11 priority to its Figure 6 group label."""
    for label, rng in PRIORITY_GROUPS.items():
        if priority in rng:
            return label
    raise ValueError(f"priority {priority} outside 0..11")


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the multi-tenant scenario generator.

    Attributes:
        num_tasks: Queries to dispatch (paper: 200-500).
        qos_level: SLA tightness for every task in the scenario.
        load_factor: Offered load relative to SoC slot capacity;
            1.0 keeps the machine just saturated on average.
        reference_tiles: Tile count used to size the arrival window
            (the static slot size).
        seed: RNG seed; scenarios are fully reproducible.
    """

    num_tasks: int = 250
    qos_level: QosLevel = QosLevel.MEDIUM
    load_factor: float = 0.85
    reference_tiles: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if self.load_factor <= 0:
            raise ValueError("load_factor must be positive")
        if self.reference_tiles <= 0:
            raise ValueError("reference_tiles must be positive")


class WorkloadGenerator:
    """Builds reproducible multi-tenant task streams.

    Attributes:
        soc: SoC configuration.
        networks: Candidate models (a Table III workload set).
        qos: The QoS target model.
    """

    def __init__(
        self,
        soc: SoCConfig,
        networks: Sequence[Network],
        mem: Optional[MemoryHierarchy] = None,
        qos: Optional[QosModel] = None,
    ) -> None:
        if not networks:
            raise ValueError("need at least one network")
        self.soc = soc
        self.mem = mem if mem is not None else MemoryHierarchy.from_soc(soc)
        self.networks = list(networks)
        self.qos = qos if qos is not None else QosModel(soc)

    def sample_priority(self, rng: random.Random) -> int:
        """Draw a static priority from the Google-trace-shaped table."""
        return rng.choices(range(12), weights=PRIORITY_WEIGHTS, k=1)[0]

    def arrival_window(self, config: WorkloadConfig) -> float:
        """Length of the dispatch window in cycles for a scenario.

        Sized so that ``num_tasks`` average-sized jobs on
        ``reference_tiles``-tile slots offer ``load_factor`` of the
        SoC's slot-parallel capacity.
        """
        slot_runtimes = [
            self.qos.isolated_latency(
                net, self.mem, num_tiles=config.reference_tiles
            )
            for net in self.networks
        ]
        mean_runtime = sum(slot_runtimes) / len(slot_runtimes)
        slots = max(1, self.soc.num_tiles // config.reference_tiles)
        total_work = config.num_tasks * mean_runtime
        return total_work / (slots * config.load_factor)

    def generate(self, config: WorkloadConfig) -> List[Task]:
        """Generate the scenario's task list, sorted by dispatch time."""
        rng = random.Random(config.seed)
        window = self.arrival_window(config)
        tasks: List[Task] = []
        for i in range(config.num_tasks):
            network = rng.choice(self.networks)
            dispatch = rng.uniform(0.0, window)
            priority = self.sample_priority(rng)
            cost = build_network_cost(network, self.soc, self.mem)
            isolated = self.qos.isolated_latency_from_cost(cost, self.mem)
            target = self.qos.target(network, config.qos_level, self.mem)
            tasks.append(
                Task(
                    task_id=f"t{i:04d}",
                    network_name=network.name,
                    cost=cost,
                    dispatch_cycle=dispatch,
                    priority=priority,
                    qos_target_cycles=target,
                    isolated_cycles=isolated,
                )
            )
        tasks.sort(key=lambda t: (t.dispatch_cycle, t.task_id))
        return tasks
