"""Multi-tenant workload generation (Section IV-B).

The paper generates scenarios by randomly dispatching N inference
tasks (N between 200 and 500) to the system, assigning each a static
priority between 0 and 11 following the distribution observed in
Google datacenter traces [11], [37] (the same methodology as Prema and
Planaria).

The trace studies report a heavily skewed distribution: the bulk of
tasks arrive at low/free priorities, a broad middle band carries
production work, and a thin tail is latency-critical.  The exact table
is not published, so :data:`PRIORITY_WEIGHTS` encodes that shape and is
documented as a reproduction choice (DESIGN.md §6).

Arrival times are sampled uniformly over a window sized so the offered
load (total two-tile work divided by the SoC's slot capacity) matches a
configurable load factor — the random-overlap regime of the paper's
"randomly dispatched at different times".

Beyond the paper's uniform dispatch, the generator supports three more
arrival processes (all deterministic per seed):

- ``"bursty"`` — Poisson-burst arrivals: tasks cluster around
  ``burst_count`` evenly spaced burst centres with exponentially
  distributed offsets (flash-crowd / retry-storm shapes).
- ``"diurnal"`` — a sinusoidal rate over the window
  (``1 + diurnal_depth * sin``), sampled by rejection — the classic
  day/night traffic wave, ``diurnal_waves`` periods per window.
- ``"trace"`` — replay dispatch cycles from a scenario file produced
  by :mod:`repro.sim.tracefile` (cycling with a constant lap offset
  when ``num_tasks`` exceeds the trace length).

A scenario can also override the model mix (weighted sampling over the
generator's networks instead of uniform choice) and the priority
distribution (a custom 12-entry weight table).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.core.latency import build_network_cost
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.graph import Network
from repro.sim.job import Task
from repro.sim.qos import QosLevel, QosModel

#: Relative frequency of each static priority level 0..11 (Google-trace
#: shaped: mass at the bottom, thin latency-critical tail).
PRIORITY_WEIGHTS: Sequence[float] = (
    20.0, 14.0, 11.0,          # p-Low  (0-2)
    9.0, 8.0, 7.0, 6.0, 5.0, 4.0,  # p-Mid  (3-8)
    2.5, 1.5, 1.0,             # p-High (9-11)
)

#: Priority-group boundaries used by Figure 6 (p-Low 0-2, p-Mid 3-8,
#: p-High 9-11).
PRIORITY_GROUPS: Dict[str, range] = {
    "p-Low": range(0, 3),
    "p-Mid": range(3, 9),
    "p-High": range(9, 12),
}

#: Supported arrival processes of :class:`WorkloadConfig`.
ARRIVAL_PROCESSES: Tuple[str, ...] = (
    "uniform", "bursty", "diurnal", "trace"
)


def priority_group(priority: int) -> str:
    """Map a 0-11 priority to its Figure 6 group label."""
    for label, rng in PRIORITY_GROUPS.items():
        if priority in rng:
            return label
    raise ValueError(f"priority {priority} outside 0..11")


def normalize_model_mix(
    mix,
) -> Optional[Tuple[Tuple[str, float], ...]]:
    """Coerce a model mix (mapping or pair sequence) to the canonical
    hashable tuple-of-pairs form, preserving order."""
    if mix is None:
        return None
    if isinstance(mix, Mapping):
        items = mix.items()
    else:
        items = mix
    return tuple((str(name), float(weight)) for name, weight in items)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the multi-tenant scenario generator.

    Attributes:
        num_tasks: Queries to dispatch (paper: 200-500).
        qos_level: SLA tightness for every task in the scenario.
        load_factor: Offered load relative to SoC slot capacity;
            1.0 keeps the machine just saturated on average.
        reference_tiles: Tile count used to size the arrival window
            (the static slot size).
        seed: RNG seed; scenarios are fully reproducible.
        arrival: Arrival process — one of
            :data:`ARRIVAL_PROCESSES` (default ``"uniform"``, the
            paper's regime).
        arrival_window: Explicit dispatch-window length in cycles;
            ``None`` (default) sizes the window from ``load_factor``.
        burst_count: Burst centres for the ``"bursty"`` process.
        burst_spread: Exponential offset scale around a burst centre,
            as a fraction of the window.
        diurnal_waves: Sine periods per window for ``"diurnal"``.
        diurnal_depth: Rate modulation depth in [0, 1] for
            ``"diurnal"`` (0 degenerates to uniform).
        trace_text: Scenario JSON (see :mod:`repro.sim.tracefile`)
            whose dispatch cycles the ``"trace"`` process replays.
        model_mix: Optional ``((model_name, weight), ...)`` weighted
            mix; weights must be positive and sum to ~1.0.  ``None``
            keeps the uniform choice over the generator's networks.
        priority_weights: Optional 12-entry override of
            :data:`PRIORITY_WEIGHTS`.
    """

    num_tasks: int = 250
    qos_level: QosLevel = QosLevel.MEDIUM
    load_factor: float = 0.85
    reference_tiles: int = 2
    seed: int = 0
    arrival: str = "uniform"
    arrival_window: Optional[float] = None
    burst_count: int = 8
    burst_spread: float = 0.04
    diurnal_waves: float = 2.0
    diurnal_depth: float = 0.8
    trace_text: Optional[str] = None
    model_mix: Optional[Tuple[Tuple[str, float], ...]] = None
    priority_weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if self.load_factor <= 0:
            raise ValueError("load_factor must be positive")
        if self.reference_tiles <= 0:
            raise ValueError("reference_tiles must be positive")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"use one of {', '.join(ARRIVAL_PROCESSES)}"
            )
        if self.arrival_window is not None and self.arrival_window <= 0:
            raise ValueError(
                f"arrival_window must be positive "
                f"(got {self.arrival_window})"
            )
        if self.burst_count < 1:
            raise ValueError("burst_count must be >= 1")
        if self.burst_spread <= 0:
            raise ValueError("burst_spread must be positive")
        if self.diurnal_waves <= 0:
            raise ValueError("diurnal_waves must be positive")
        if not 0.0 <= self.diurnal_depth <= 1.0:
            raise ValueError("diurnal_depth must be within [0, 1]")
        if self.arrival == "trace" and not self.trace_text:
            raise ValueError(
                "arrival='trace' needs trace_text (a scenario JSON "
                "from repro.sim.tracefile.dump_tasks)"
            )
        object.__setattr__(
            self, "model_mix", normalize_model_mix(self.model_mix)
        )
        if self.model_mix is not None:
            if not self.model_mix:
                raise ValueError("model_mix must not be empty")
            names = [name for name, _ in self.model_mix]
            if len(set(names)) != len(names):
                raise ValueError(
                    f"model_mix repeats a model: {names}"
                )
            weights = [w for _, w in self.model_mix]
            if any(w <= 0 for w in weights):
                raise ValueError("model_mix weights must be positive")
            total = sum(weights)
            if abs(total - 1.0) > 1e-6:
                raise ValueError(
                    f"model_mix weights must sum to 1.0 "
                    f"(got {total:.6f})"
                )
        if self.priority_weights is not None:
            object.__setattr__(
                self, "priority_weights",
                tuple(float(w) for w in self.priority_weights),
            )
            if len(self.priority_weights) != 12:
                raise ValueError(
                    f"priority_weights needs 12 entries "
                    f"(got {len(self.priority_weights)})"
                )
            if any(w < 0 for w in self.priority_weights):
                raise ValueError("priority_weights must be non-negative")
            if sum(self.priority_weights) <= 0:
                raise ValueError("priority_weights must not all be zero")


class WorkloadGenerator:
    """Builds reproducible multi-tenant task streams.

    Attributes:
        soc: SoC configuration.
        networks: Candidate models (a Table III workload set).
        qos: The QoS target model.
    """

    def __init__(
        self,
        soc: SoCConfig,
        networks: Sequence[Network],
        mem: Optional[MemoryHierarchy] = None,
        qos: Optional[QosModel] = None,
    ) -> None:
        if not networks:
            raise ValueError("need at least one network")
        self.soc = soc
        self.mem = mem if mem is not None else MemoryHierarchy.from_soc(soc)
        self.networks = list(networks)
        self.qos = qos if qos is not None else QosModel(soc)

    def sample_priority(
        self,
        rng: random.Random,
        weights: Optional[Sequence[float]] = None,
    ) -> int:
        """Draw a static priority from the Google-trace-shaped table
        (or a caller-supplied 12-entry weight override)."""
        table = PRIORITY_WEIGHTS if weights is None else weights
        return rng.choices(range(12), weights=table, k=1)[0]

    def arrival_window(self, config: WorkloadConfig) -> float:
        """Length of the dispatch window in cycles for a scenario.

        Sized so that ``num_tasks`` average-sized jobs on
        ``reference_tiles``-tile slots offer ``load_factor`` of the
        SoC's slot-parallel capacity.  An explicit
        ``config.arrival_window`` short-circuits the sizing.
        """
        if config.arrival_window is not None:
            return config.arrival_window
        slot_runtimes = [
            self.qos.isolated_latency(
                net, self.mem, num_tiles=config.reference_tiles
            )
            for net in self.networks
        ]
        mean_runtime = sum(slot_runtimes) / len(slot_runtimes)
        slots = max(1, self.soc.num_tiles // config.reference_tiles)
        total_work = config.num_tasks * mean_runtime
        return total_work / (slots * config.load_factor)

    # -- sampling helpers ------------------------------------------------

    def _model_pool(
        self, config: WorkloadConfig
    ) -> Tuple[List[Network], Optional[List[float]]]:
        """The networks to draw from and their weights (``None`` keeps
        the uniform ``rng.choice`` of the default path)."""
        if config.model_mix is None:
            return self.networks, None
        by_name = {net.name: net for net in self.networks}
        unknown = [n for n, _ in config.model_mix if n not in by_name]
        if unknown:
            raise ValueError(
                f"model_mix names {unknown} not among this generator's "
                f"networks {sorted(by_name)}"
            )
        pool = [by_name[name] for name, _ in config.model_mix]
        weights = [weight for _, weight in config.model_mix]
        return pool, weights

    def _sample_dispatch(
        self,
        rng: random.Random,
        config: WorkloadConfig,
        window: float,
        trace_cycles: Optional[Sequence[float]],
        index: int,
    ) -> float:
        """Draw one dispatch time under the configured arrival process.

        The uniform branch makes exactly the RNG call the original
        generator made, keeping default scenarios bit-identical.
        """
        if config.arrival == "uniform":
            return rng.uniform(0.0, window)
        if config.arrival == "bursty":
            burst = rng.randrange(config.burst_count)
            center = (burst + 0.5) * window / config.burst_count
            offset = rng.expovariate(1.0 / (config.burst_spread * window))
            if rng.random() < 0.5:
                offset = -offset
            return min(max(center + offset, 0.0), window)
        if config.arrival == "diurnal":
            peak = 1.0 + config.diurnal_depth
            while True:
                t = rng.uniform(0.0, window)
                accept = rng.uniform(0.0, peak)
                rate = 1.0 + config.diurnal_depth * math.sin(
                    2.0 * math.pi * config.diurnal_waves * t / window
                )
                if accept <= rate:
                    return t
        # Trace replay: deterministic, no RNG.  Laps past the end of
        # the trace shift by the trace's span (not its absolute end —
        # a trace starting far from cycle 0 must not insert its start
        # offset as idle time) plus one mean inter-arrival gap.
        assert trace_cycles is not None
        lap, pos = divmod(index, len(trace_cycles))
        extent = trace_cycles[-1] - trace_cycles[0]
        if len(trace_cycles) > 1:
            gap = extent / (len(trace_cycles) - 1)
        else:
            gap = 0.0
        span = extent + max(gap, 1.0)
        return trace_cycles[pos] + lap * span

    def generate(self, config: WorkloadConfig) -> List[Task]:
        """Generate the scenario's task list, sorted by dispatch time."""
        rng = random.Random(config.seed)
        pool, mix_weights = self._model_pool(config)
        trace_cycles: Optional[Sequence[float]] = None
        if config.arrival == "trace":
            # Dispatch times come from the trace; skip the load-based
            # window sizing (per-network isolated-latency solves) the
            # trace path never consults.
            from repro.sim.tracefile import load_dispatch_cycles

            window = 0.0
            trace_cycles = load_dispatch_cycles(config.trace_text or "")
            if not trace_cycles:
                raise ValueError(
                    "trace replay needs at least one dispatch cycle"
                )
        else:
            window = self.arrival_window(config)
            if window <= 0:
                raise ValueError("arrival window must be positive")
        tasks: List[Task] = []
        for i in range(config.num_tasks):
            if mix_weights is None:
                network = rng.choice(pool)
            else:
                network = rng.choices(pool, weights=mix_weights, k=1)[0]
            dispatch = self._sample_dispatch(
                rng, config, window, trace_cycles, i
            )
            priority = self.sample_priority(rng, config.priority_weights)
            cost = build_network_cost(network, self.soc, self.mem)
            isolated = self.qos.isolated_latency_from_cost(cost, self.mem)
            target = self.qos.target(network, config.qos_level, self.mem)
            tasks.append(
                Task(
                    task_id=f"t{i:04d}",
                    network_name=network.name,
                    cost=cost,
                    dispatch_cycle=dispatch,
                    priority=priority,
                    qos_target_cycles=target,
                    isolated_cycles=isolated,
                )
            )
        tasks.sort(key=lambda t: (t.dispatch_cycle, t.task_id))
        return tasks
