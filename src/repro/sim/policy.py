"""The policy interface between the simulator and schedulers.

A *policy* bundles everything above the hardware: the admission
scheduler, the resource (tile / bandwidth) manager, and the costs its
reconfigurations incur.  The engine calls :meth:`Policy.on_event` at
every simulation event; the policy inspects the engine state and issues
mutations through the engine's API (``start_job``, ``set_tiles``,
``set_bw_cap``, ``preempt``, ``stall_job``).

Reconfiguration costs (Section V-A):

- changing a running job's **tile allocation** costs a thread-migration
  stall of ~1 M cycles (thread spawning + synchronization);
- changing a job's **memory throttle** costs 5-10 cycles (we charge 8),
  which is why MoCA "triggers memory repartitioning more frequently
  than compute repartitioning".
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job

#: Average thread-migration penalty for compute repartitioning, cycles.
COMPUTE_RECONFIG_CYCLES = 1_000_000

#: DMA issue-rate reconfiguration penalty for memory repartitioning.
MEMORY_RECONFIG_CYCLES = 8


class Policy(abc.ABC):
    """Base class for multi-tenancy policies.

    Attributes:
        name: Human-readable policy name (used in reports).
        compute_reconfig_cycles: Stall charged when a running job's
            tile count changes.
        memory_reconfig_cycles: Stall charged when a job's bandwidth
            cap changes.
    """

    name: str = "base"
    compute_reconfig_cycles: int = COMPUTE_RECONFIG_CYCLES
    memory_reconfig_cycles: int = MEMORY_RECONFIG_CYCLES

    @abc.abstractmethod
    def on_event(self, sim: "Simulator") -> None:
        """React to a simulation event (dispatch/completion/stall/...).

        Must be idempotent when called twice at the same instant with
        unchanged state — the engine may invoke it on coincident events.
        """

    def on_job_finished(self, sim: "Simulator", job: "Job") -> None:
        """Hook invoked right after a job completes."""

    def reset(self) -> None:
        """Clear internal state before a fresh simulation."""
