"""The policy interface between the simulator and schedulers.

A *policy* bundles everything above the hardware: the admission
scheduler, the resource (tile / bandwidth) manager, and the costs its
reconfigurations incur.  The seam is **declarative**: at every
decision point (see :class:`repro.sim.plan.DecisionCadence`) the
engine calls :meth:`Policy.decide`, which inspects engine state
*without mutating it* and returns an
:class:`~repro.sim.plan.AllocationPlan` — admissions, tile targets,
bandwidth caps, preemptions.  The engine-side
:class:`~repro.sim.plan.AllocationController` diffs the plan against
live state, applies it atomically, and charges the reconfiguration
costs centrally.

Legacy imperative policies (overriding :meth:`Policy.on_event` and
issuing ``sim.start_job`` / ``sim.set_tiles`` / ... directly) keep
working: the engine falls back to ``on_event`` when ``decide`` is not
overridden, and the default ``on_event`` bridges the other way for
plan-emitting policies, so ``policy.on_event(sim)`` remains a valid
way to drive either kind in tests.

Reconfiguration costs (Section V-A):

- changing a running job's **tile allocation** costs a thread-migration
  stall of ~1 M cycles (thread spawning + synchronization);
- changing a job's **memory throttle** costs 5-10 cycles (we charge 8),
  which is why MoCA "triggers memory repartitioning more frequently
  than compute repartitioning".
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.sim.plan import AllocationPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job

#: Average thread-migration penalty for compute repartitioning, cycles.
COMPUTE_RECONFIG_CYCLES = 1_000_000

#: DMA issue-rate reconfiguration penalty for memory repartitioning.
MEMORY_RECONFIG_CYCLES = 8


class Policy(abc.ABC):
    """Base class for multi-tenancy policies.

    Subclasses implement :meth:`decide` (preferred, declarative) or
    :meth:`on_event` (legacy, imperative) — at least one of the two.

    Attributes:
        name: Human-readable policy name (used in reports).
        compute_reconfig_cycles: Stall charged when a running job's
            tile count changes.
        memory_reconfig_cycles: Stall charged when a job's bandwidth
            cap changes.
    """

    name: str = "base"
    compute_reconfig_cycles: int = COMPUTE_RECONFIG_CYCLES
    memory_reconfig_cycles: int = MEMORY_RECONFIG_CYCLES

    #: Horizon-kernel protocol (optional, engine-private).  A policy
    #: may implement ``kernel_noop_guard(sim) -> bool`` — return True
    #: only when this decision round *provably* returns
    #: :data:`~repro.sim.plan.EMPTY_PLAN` with zero internal state
    #: change, letting the kernel skip the call entirely — and
    #: ``kernel_decide_apply(sim) -> None`` — a fused decision round
    #: that makes exactly the same decisions as :meth:`decide` but
    #: applies the steady-state caps-only overlay in place through the
    #: controller's trusted journal.  Both default to None: the kernel
    #: then drives the policy through the ordinary decide()/apply
    #: seam.  Under ``REPRO_CHECK=1`` the engine ignores
    #: ``kernel_decide_apply`` so every plan passes the sanitizer's
    #: trusted-plan re-validation.
    kernel_noop_guard = None
    kernel_decide_apply = None

    def decide(self, sim: "Simulator") -> AllocationPlan:
        """Compute this decision point's allocation plan.

        Must be a pure *read* of the engine (policy-internal state may
        advance — scoreboards, caches — but no engine mutation); the
        engine applies the returned plan through its
        :class:`~repro.sim.plan.AllocationController`.  Returning
        :data:`~repro.sim.plan.EMPTY_PLAN` (or ``None``) means "no
        changes".
        """
        raise NotImplementedError(
            f"{type(self).__name__} implements neither decide() nor "
            f"on_event(); policies must provide one of the two"
        )

    @property
    def emits_plans(self) -> bool:
        """Whether this policy implements the declarative seam."""
        return type(self).decide is not Policy.decide

    def on_event(self, sim: "Simulator") -> None:
        """Legacy imperative seam: react to a simulation event.

        Imperative policies override this and mutate the engine
        directly (each mutation then charges its own cost and bumps
        the allocation epoch, as before the declarative refactor).
        The default implementation bridges plan-emitting policies:
        it applies :meth:`decide`'s plan through the simulator's
        controller, so driving either kind of policy via
        ``policy.on_event(sim)`` is equivalent to one engine
        decision point.
        """
        sim.controller.apply(self.decide(sim))

    def on_job_finished(self, sim: "Simulator", job: "Job") -> None:
        """Hook invoked right after a job completes."""

    def reset(self) -> None:
        """Clear internal state before a fresh simulation."""
