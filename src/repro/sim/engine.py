"""The fluid discrete-event multi-tenant SoC simulator.

This is the reproduction's substitute for the paper's FireSim RTL
simulation (see DESIGN.md §4).  Jobs progress through their networks'
layer blocks at rates derived from Algorithm 1's latency law under the
current resource allocation:

- a job holding ``k`` tiles and granted a DRAM share ``s`` executes its
  current block in ``T = max(T_full(k), From_DRAM / s)`` cycles, where
  ``T_full`` is the unconstrained Algorithm 1 prediction — the job is
  limited either by its own compute/memory structure or by draining its
  DRAM traffic at the granted share;
- DRAM shares come from the arbiter: demand-proportional when
  unmanaged, clamped by MoCA's throttle caps when regulated;
- between events all rates are constant, so the engine advances
  analytically from event to event (no per-cycle stepping) and is
  exactly deterministic.

Events: task dispatch, block completion, stall expiry (migration or
reconfiguration penalties) and policy-initiated changes.

Incremental recomputation
-------------------------

``current_block_times()`` (each running job's block latency under the
current allocation, including the bandwidth-arbiter solve) only depends
on *allocation state*: the set of unstalled running jobs, their current
blocks, tile counts and throttle caps.  The engine maintains an
**allocation epoch** counter that every state mutation bumps
(``start_job`` / ``set_tiles`` / ``set_bw_cap`` / ``preempt`` /
``stall_job`` / block retirement / stall expiry); between bumps the
solve is served from cache instead of being recomputed on every event.
Per-block unconstrained predictions are additionally memoised on the
:class:`~repro.core.latency.BlockCost` instances themselves, since
jobs revisit the same blocks under the same allocations thousands of
times per run.  Both caches are exact — the epoch cache is invalidated
on *any* state change, the prediction memo keys on every input of the
pure function — so the simulation stays bit-identical to the
always-recompute engine.

Declarative decisions
---------------------

Policies are consulted at decision points gated by a
:class:`~repro.sim.plan.DecisionCadence` (every event by default;
block boundaries or a fixed cycle interval when regulated) and return
:class:`~repro.sim.plan.AllocationPlan`\\ s that the engine's
:class:`~repro.sim.plan.AllocationController` applies atomically — an
applied plan bumps the allocation epoch exactly once
(:meth:`Simulator.atomic_allocation`), a no-op plan not at all, and
reconfiguration costs are charged centrally by the controller.
Legacy imperative policies (overriding ``Policy.on_event``) are
invoked directly at the same decision points.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.memory.arbiter import allocate_bandwidth
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.job import Job, JobPhase, Task, TaskResult, results_from_jobs
from repro.sim.plan import AllocationController, DecisionCadence, EVERY_EVENT
from repro.sim.policy import Policy
from repro.sim.trace import Trace, TraceEvent

_COMPLETION_EPS = 1e-9
_MIN_DT = 1e-6


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an invalid or stuck state."""


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run.

    Attributes:
        policy_name: The policy that produced the run.
        results: Per-task outcomes, sorted by task id.
        makespan: Cycle at which the last task finished.
        trace: The event trace (may be disabled/empty).
        events: Simulation events processed by the engine loop.
        block_time_recomputes: Full ``current_block_times`` solves
            (prediction + arbiter) the run actually performed.
        block_time_reuses: Solves served from the epoch cache instead.
        cost_cache_hits / cost_cache_misses: Network-cost cache probes
            during this run (attributed per run via
            :class:`repro.core.latency.track_cache_deltas`, so
            interleaved or nested runs cannot double-count — a warm
            worker shows zero misses here).
        predict_memo_hits / predict_memo_misses: ``BlockCost.predict``
            memo probes during this run, same delta convention.
        decisions: Times the policy was consulted for a plan (under
            the default every-event cadence this equals ``events``;
            regulated cadences consult less often).
        plans_applied: Plans that performed at least one mutation.
        plans_noop: Plans that performed none (empty or all no-op) —
            these leave the allocation epoch untouched.
        plan_actions: Total mutations applied through the
            :class:`~repro.sim.plan.AllocationController` (0 for
            legacy imperative policies, which mutate directly).
    """

    policy_name: str
    results: Sequence[TaskResult]
    makespan: float
    trace: Trace
    events: int = 0
    block_time_recomputes: int = 0
    block_time_reuses: int = 0
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    predict_memo_hits: int = 0
    predict_memo_misses: int = 0
    decisions: int = 0
    plans_applied: int = 0
    plans_noop: int = 0
    plan_actions: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_by_task", {r.task_id: r for r in self.results}
        )

    def result_for(self, task_id: str) -> TaskResult:
        """Look up one task's result."""
        try:
            return self._by_task[task_id]
        except KeyError:
            raise KeyError(f"no result for task {task_id!r}") from None


class Simulator:
    """Fluid discrete-event simulator of the Table II SoC.

    Attributes:
        soc: SoC configuration.
        mem: Shared-memory hierarchy.
        policy: The multi-tenancy policy driving decisions.
        now: Current simulation time in cycles.
        jobs: All jobs by id.
        ready: Dispatched jobs waiting in the task queue (FIFO by
            dispatch time).
        running: Jobs currently holding tiles.
        finished: Completed jobs.
        trace: Event log.
    """

    def __init__(
        self,
        soc: SoCConfig,
        tasks: Sequence[Task],
        policy: Policy,
        mem: Optional[MemoryHierarchy] = None,
        trace: bool = False,
        max_events: int = 20_000_000,
        cadence: Optional[DecisionCadence] = None,
    ) -> None:
        if not tasks:
            raise SimulationError("no tasks to simulate")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate task ids")
        self.soc = soc
        self.mem = mem if mem is not None else MemoryHierarchy.from_soc(soc)
        if (
            not policy.emits_plans
            and type(policy).on_event is Policy.on_event
        ):
            # Fail at construction, not at the first decision point
            # mid-simulation (the abc guard this seam replaced).
            raise SimulationError(
                f"policy {policy.name!r} implements neither decide() "
                f"nor on_event()"
            )
        self.policy = policy
        self.now = 0.0
        self.jobs: Dict[str, Job] = {
            t.task_id: Job(task=t) for t in tasks
        }
        # Arrival priority queue: (dispatch_cycle, -seq, job).  The
        # negative sequence number reproduces the historical pop order
        # for coincident dispatch times (descending job id).
        ordered = sorted(
            self.jobs.values(),
            key=lambda j: (j.task.dispatch_cycle, j.job_id),
        )
        self._pending: List[Tuple[float, int, Job]] = [
            (j.task.dispatch_cycle, -i, j) for i, j in enumerate(ordered)
        ]
        heapq.heapify(self._pending)
        self.ready: List[Job] = []
        self.running: List[Job] = []
        self.finished: List[Job] = []
        self.trace = Trace(enabled=trace)
        self._max_events = max_events
        self._block_T: Mapping[str, float] = {}
        # Incremental-recompute state (see module docstring).
        self._alloc_epoch = 0
        self._times_epoch = -1
        self._times_cache: Mapping[str, float] = MappingProxyType({})
        self.events = 0
        self.block_time_recomputes = 0
        self.block_time_reuses = 0
        # Declarative decision machinery (see repro.sim.plan): the
        # controller applies AllocationPlans; the cadence gates when
        # the policy is consulted.
        self.cadence = cadence if cadence is not None else EVERY_EVENT
        self.controller = AllocationController(self)
        # Which seam the policy implements, resolved once (the
        # property does a type lookup; this runs every event).
        self._policy_emits_plans = policy.emits_plans
        self.decisions = 0
        self._boundaries = 0          # blocks retired so far
        self._decided_boundaries = -1  # _boundaries at the last decision
        self._last_decision_at: Optional[float] = None
        # Epoch batching: inside atomic_allocation() any number of
        # mutations coalesce to a single epoch bump.
        self._epoch_batch_depth = 0
        self._epoch_batch_dirty = False

    # ------------------------------------------------------------------
    # Policy-facing API
    # ------------------------------------------------------------------

    @property
    def free_tiles(self) -> int:
        """Tiles not currently held by any running job."""
        return self.soc.num_tiles - sum(j.tiles for j in self.running)

    def start_job(self, job: Job, tiles: int) -> None:
        """Admit a READY job onto ``tiles`` tiles."""
        if job.phase is not JobPhase.READY:
            raise SimulationError(f"{job.job_id} is not ready")
        if tiles <= 0 or tiles > self.free_tiles:
            raise SimulationError(
                f"cannot grant {tiles} tiles ({self.free_tiles} free)"
            )
        self.ready.remove(job)
        job.phase = JobPhase.RUNNING
        job.tiles = tiles
        if job.started_at is None:
            job.started_at = self.now
        self.running.append(job)
        self._bump_epoch()
        self.trace.log(self.now, TraceEvent.START, job.job_id,
                       f"tiles={tiles}")

    def set_tiles(self, job: Job, tiles: int, charge: bool = True) -> bool:
        """Repartition a running job's tiles.

        ``charge=True`` (the legacy imperative seam) charges the
        compute-migration stall here; the
        :class:`~repro.sim.plan.AllocationController` passes
        ``charge=False`` and accounts the cost centrally (with
        same-instant dedupe).

        Returns:
            Whether the tile count actually changed — this is the
            single source of no-op detection, shared by the
            imperative seam and the controller's diffing.
        """
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        if tiles <= 0:
            raise SimulationError("tiles must be positive")
        if tiles == job.tiles:
            return False
        extra = tiles - job.tiles
        if extra > self.free_tiles:
            raise SimulationError(
                f"cannot grow {job.job_id} by {extra} tiles "
                f"({self.free_tiles} free)"
            )
        job.tiles = tiles
        job.tile_repartitions += 1
        self._bump_epoch()
        if charge:
            self.stall_job(job, self.policy.compute_reconfig_cycles)
        self.trace.log(self.now, TraceEvent.TILE_REPARTITION, job.job_id,
                       f"tiles={tiles}")
        return True

    def set_bw_cap(
        self, job: Job, cap: Optional[float], charge: bool = True
    ) -> bool:
        """Reconfigure a job's memory throttle.

        ``charge=True`` (the legacy imperative seam) charges the 5-10
        cycle DMA issue-rate update here; the
        :class:`~repro.sim.plan.AllocationController` passes
        ``charge=False`` and accounts the cost centrally.

        Returns:
            Whether the cap actually changed (same-value and
            within-tolerance re-applications are no-ops).
        """
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        if cap is not None and cap <= 0:
            raise SimulationError("bandwidth cap must be positive")
        old = job.bw_cap
        if old == cap or (
            old is not None and cap is not None
            and abs(old - cap) < 1e-9
        ):
            return False
        job.bw_cap = cap
        job.bw_reconfigs += 1
        self._bump_epoch()
        if charge:
            self.stall_job(job, self.policy.memory_reconfig_cycles)
        self.trace.log(
            self.now, TraceEvent.BW_RECONFIG, job.job_id,
            f"cap={'none' if cap is None else f'{cap:.2f}B/cyc'}",
        )
        return True

    def preempt(self, job: Job) -> None:
        """Return a running job to the ready queue (block progress is
        retained — checkpointing happens at layer boundaries)."""
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        self.running.remove(job)
        job.phase = JobPhase.READY
        job.tiles = 0
        job.bw_cap = None
        job.preemptions += 1
        self.ready.append(job)
        self.ready.sort(key=lambda j: (j.task.dispatch_cycle, j.job_id))
        self._bump_epoch()
        self.trace.log(self.now, TraceEvent.PREEMPT, job.job_id)

    def stall_job(self, job: Job, cycles: float) -> None:
        """Stall a job for ``cycles`` (extends any current stall)."""
        if cycles < 0:
            raise SimulationError("stall cycles must be non-negative")
        if cycles == 0:
            return
        base = max(job.stall_until, self.now)
        new_until = self.now + cycles
        if new_until > base:
            job.stall_cycles += new_until - base
            job.stall_until = new_until
            self._bump_epoch()

    # ------------------------------------------------------------------
    # Allocation-epoch bookkeeping
    # ------------------------------------------------------------------

    def _bump_epoch(self) -> None:
        """Invalidate the block-time cache (deferred inside a batch)."""
        if self._epoch_batch_depth:
            self._epoch_batch_dirty = True
        else:
            self._alloc_epoch += 1

    def _begin_allocation_batch(self) -> None:
        """Enter a deferred-epoch batch (see :meth:`atomic_allocation`).

        Paired with :meth:`_end_allocation_batch`; the controller
        calls the pair directly because a contextmanager generator per
        applied plan is measurable overhead on the engine's hottest
        path.  This pair is the single source of the batching
        semantics — :meth:`atomic_allocation` is sugar over it.
        """
        self._epoch_batch_depth += 1

    def _end_allocation_batch(self) -> None:
        """Leave a deferred-epoch batch; the outermost exit performs
        the single coalesced epoch bump if anything mutated."""
        self._epoch_batch_depth -= 1
        if self._epoch_batch_depth == 0 and self._epoch_batch_dirty:
            self._epoch_batch_dirty = False
            self._alloc_epoch += 1

    @contextmanager
    def atomic_allocation(self) -> Iterator[None]:
        """Coalesce every mutation inside the block into **one**
        allocation-epoch bump (none at all if nothing mutated).

        This is how the :class:`~repro.sim.plan.AllocationController`
        applies a whole plan at the cost of a single cache
        invalidation; the cache stays exact because the bump (when
        any mutation occurred) still lands before the next
        :meth:`current_block_times` call.  Re-entrant: nested blocks
        defer to the outermost one.
        """
        self._begin_allocation_batch()
        try:
            yield
        finally:
            self._end_allocation_batch()

    # ------------------------------------------------------------------
    # Engine core
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Run to completion and return per-task results."""
        # Cache telemetry is attributed through a per-run frame (not a
        # diff of the process-global counters), so interleaved
        # construct-then-run sequences, nested simulations and
        # mid-run reset_cache_stats() calls can neither double-count
        # nor drive the deltas negative.
        from repro.core.latency import track_cache_deltas

        with track_cache_deltas() as cache_delta:
            while len(self.finished) < len(self.jobs):
                self.events += 1
                if self.events > self._max_events:
                    raise SimulationError(
                        f"exceeded {self._max_events} events; "
                        f"{len(self.finished)}/{len(self.jobs)} tasks done "
                        f"at cycle {self.now:,.0f}"
                    )
                self._dispatch_arrivals()
                if self._should_decide():
                    self._consult_policy()
                self._validate()
                dt = self._next_event_dt()
                if dt is None:
                    if self._pending:
                        # Idle gap: jump to the next arrival.
                        self.now = self._pending[0][0]
                        continue
                    raise SimulationError(
                        f"deadlock at cycle {self.now:,.0f}: "
                        f"{len(self.ready)} ready, "
                        f"{len(self.running)} running, "
                        f"policy {self.policy.name!r} made no progress"
                    )
                self._advance(max(dt, _MIN_DT))
                self._process_completions()
        makespan = max((j.finished_at or 0.0) for j in self.finished)
        return SimResult(
            policy_name=self.policy.name,
            results=results_from_jobs(self.finished),
            makespan=makespan,
            trace=self.trace,
            events=self.events,
            block_time_recomputes=self.block_time_recomputes,
            block_time_reuses=self.block_time_reuses,
            decisions=self.decisions,
            plans_applied=self.controller.plans_applied,
            plans_noop=self.controller.plans_noop,
            plan_actions=self.controller.actions_applied,
            **cache_delta,
        )

    def _should_decide(self) -> bool:
        """Whether the cadence grants the policy this event.

        Every cadence decides while nothing is running — a ready
        queue with the whole SoC idle must never wait on a regulation
        boundary that can no longer arrive.
        """
        mode = self.cadence.mode
        if mode == "every-event":
            return True
        if not self.running:
            return True
        if mode == "block-boundary":
            return self._boundaries != self._decided_boundaries
        # "interval"
        return (
            self._last_decision_at is None
            or self.now - self._last_decision_at >= self.cadence.interval
        )

    def _consult_policy(self) -> None:
        """One decision point: collect the policy's plan and apply it
        (or invoke a legacy imperative policy directly)."""
        self.decisions += 1
        self._decided_boundaries = self._boundaries
        self._last_decision_at = self.now
        if self._policy_emits_plans:
            self.controller.apply(self.policy.decide(self))
        else:
            self.policy.on_event(self)

    def _dispatch_arrivals(self) -> None:
        """Move pending tasks whose dispatch time has come to READY."""
        appended = False
        while self._pending and (
            self._pending[0][0] <= self.now + _COMPLETION_EPS
        ):
            _, _, job = heapq.heappop(self._pending)
            job.phase = JobPhase.READY
            self.ready.append(job)
            appended = True
            self.trace.log(
                job.task.dispatch_cycle, TraceEvent.DISPATCH, job.job_id,
                f"net={job.task.network_name} prio={job.task.priority}",
            )
        if appended:
            self.ready.sort(key=lambda j: (j.task.dispatch_cycle, j.job_id))

    def current_block_times(self) -> Mapping[str, float]:
        """Per running job: cycles its current block needs under the
        current allocation (the fluid rate law).

        Served from cache while the allocation epoch is unchanged; the
        returned mapping is a read-only view (mutating it would
        corrupt the cache, so it is a :class:`types.MappingProxyType`).
        """
        if self._times_epoch == self._alloc_epoch:
            self.block_time_reuses += 1
            return self._times_cache
        self.block_time_recomputes += 1
        dram_bw = self.mem.dram_bandwidth
        l2_bw = self.mem.l2_bandwidth
        overlap_f = self.soc.overlap_f
        active = [
            j for j in self.running if not j.is_stalled(self.now)
        ]
        demands: Dict[str, float] = {}
        t_full: Dict[str, float] = {}
        for job in active:
            cost = job.current_block
            # predict() is memoised on the BlockCost itself, so this
            # is a dict lookup for revisited (tiles, bandwidth) points.
            full = cost.predict(job.tiles, dram_bw, l2_bw, overlap_f)
            t_full[job.job_id] = full
            demands[job.job_id] = (
                cost.from_dram_bytes / full if full > 0 else 0.0
            )
        caps = {
            j.job_id: j.bw_cap
            for j in active
            if j.bw_cap is not None
        }
        # Achieved total bandwidth degrades when the co-runners'
        # regulated demand oversubscribes the channel (row-buffer
        # thrash under interleaving); throttled systems that keep the
        # total under the peak retain single-stream efficiency.
        shares: Dict[str, float] = {}
        if demands:
            wants = {
                jid: min(d, caps.get(jid, float("inf")))
                for jid, d in demands.items()
            }
            total_wants = sum(wants.values())
            streams = sum(1 for w in wants.values() if w > 0)
            effective = self.mem.dram.effective_bandwidth(
                streams, oversubscribed=total_wants > dram_bw
            )
            shares = allocate_bandwidth(demands, effective, caps)
        times: Dict[str, float] = {}
        for job in active:
            jid = job.job_id
            from_dram = job.current_block.from_dram_bytes
            share = shares.get(jid, 0.0)
            if from_dram <= 0:
                times[jid] = t_full[jid]
            elif share <= 0:
                times[jid] = float("inf")
            else:
                times[jid] = max(t_full[jid], from_dram / share)
        self._times_cache = MappingProxyType(times)
        self._times_epoch = self._alloc_epoch
        return self._times_cache

    def _next_event_dt(self) -> Optional[float]:
        """Time to the next event, or None if nothing can happen."""
        self._block_T = self.current_block_times()
        candidates: List[float] = []
        if self._pending:
            candidates.append(self._pending[0][0] - self.now)
        for job in self.running:
            if job.is_stalled(self.now):
                candidates.append(job.stall_until - self.now)
            else:
                T = self._block_T[job.job_id]
                if T != float("inf"):
                    candidates.append((1.0 - job.progress) * T)
        candidates = [c for c in candidates if c >= 0]
        if not candidates:
            return None
        return min(candidates)

    def _advance(self, dt: float) -> None:
        """Advance time; accrue progress on unstalled running jobs."""
        for job in self.running:
            if job.is_stalled(self.now):
                continue
            T = self._block_T.get(job.job_id, float("inf"))
            if T == float("inf") or T <= 0:
                continue
            job.progress = min(1.0, job.progress + dt / T)
        old_now = self.now
        self.now += dt
        for job in self.running:
            # A stall expiring re-activates the job: the arbiter's
            # active set changed even though no allocation call ran.
            if old_now < job.stall_until <= self.now:
                self._bump_epoch()
                break

    def _process_completions(self) -> None:
        """Retire completed blocks and finish jobs on their last block."""
        for job in list(self.running):
            if job.progress < 1.0 - _COMPLETION_EPS:
                continue
            job.block_idx += 1
            job.progress = 0.0
            self._bump_epoch()
            self._boundaries += 1
            self.trace.log(self.now, TraceEvent.BLOCK_DONE, job.job_id,
                           f"block={job.block_idx - 1}")
            if job.block_idx >= job.num_blocks:
                job.phase = JobPhase.FINISHED
                job.finished_at = self.now
                job.tiles = 0
                job.bw_cap = None
                self.running.remove(job)
                self.finished.append(job)
                self.trace.log(self.now, TraceEvent.FINISH, job.job_id)
                self.policy.on_job_finished(self, job)

    def _validate(self) -> None:
        """Invariant checks after every policy invocation."""
        held = sum(j.tiles for j in self.running)
        if held > self.soc.num_tiles:
            raise SimulationError(
                f"policy over-allocated tiles: {held} > {self.soc.num_tiles}"
            )
        for job in self.running:
            if job.tiles <= 0:
                raise SimulationError(
                    f"running job {job.job_id} holds no tiles"
                )


def run_simulation(
    soc: SoCConfig,
    tasks: Sequence[Task],
    policy: Policy,
    mem: Optional[MemoryHierarchy] = None,
    trace: bool = False,
    cadence: Optional[DecisionCadence] = None,
) -> SimResult:
    """Convenience wrapper: reset the policy, build and run a simulator."""
    policy.reset()
    sim = Simulator(soc, tasks, policy, mem=mem, trace=trace,
                    cadence=cadence)
    return sim.run()
