"""The fluid discrete-event multi-tenant SoC simulator.

This is the reproduction's substitute for the paper's FireSim RTL
simulation (see DESIGN.md §4).  Jobs progress through their networks'
layer blocks at rates derived from Algorithm 1's latency law under the
current resource allocation:

- a job holding ``k`` tiles and granted a DRAM share ``s`` executes its
  current block in ``T = max(T_full(k), From_DRAM / s)`` cycles, where
  ``T_full`` is the unconstrained Algorithm 1 prediction — the job is
  limited either by its own compute/memory structure or by draining its
  DRAM traffic at the granted share;
- DRAM shares come from the arbiter: demand-proportional when
  unmanaged, clamped by MoCA's throttle caps when regulated;
- between events all rates are constant, so the engine advances
  analytically from event to event (no per-cycle stepping) and is
  exactly deterministic.

Events: task dispatch, block completion, stall expiry (migration or
reconfiguration penalties) and policy-initiated changes.

Incremental recomputation
-------------------------

``current_block_times()`` (each running job's block latency under the
current allocation, including the bandwidth-arbiter solve) only depends
on *allocation state*: the set of unstalled running jobs, their current
blocks, tile counts and throttle caps.  The engine maintains an
**allocation epoch** counter that every state mutation bumps
(``start_job`` / ``set_tiles`` / ``set_bw_cap`` / ``preempt`` /
``stall_job`` / block retirement / stall expiry); between bumps the
solve is served from cache instead of being recomputed on every event.
Per-block unconstrained predictions are additionally memoised on the
:class:`~repro.core.latency.BlockCost` instances themselves, since
jobs revisit the same blocks under the same allocations thousands of
times per run.  Both caches are exact — the epoch cache is invalidated
on *any* state change, the prediction memo keys on every input of the
pure function — so the simulation stays bit-identical to the
always-recompute engine.

Declarative decisions
---------------------

Policies are consulted at decision points gated by a
:class:`~repro.sim.plan.DecisionCadence` (every event by default;
block boundaries or a fixed cycle interval when regulated) and return
:class:`~repro.sim.plan.AllocationPlan`\\ s that the engine's
:class:`~repro.sim.plan.AllocationController` applies atomically — an
applied plan bumps the allocation epoch exactly once
(:meth:`Simulator.atomic_allocation`), a no-op plan not at all, and
reconfiguration costs are charged centrally by the controller.
Legacy imperative policies (overriding ``Policy.on_event``) are
invoked directly at the same decision points.
"""

from __future__ import annotations

import heapq
from bisect import insort
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import repro.sanitizer as sanitizer
from repro.config import SoCConfig
from repro.memory.arbiter import _REL_TOL, allocate_bandwidth, waterfill_grants
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.job import Job, JobPhase, Task, TaskResult, results_from_jobs
from repro.sim.plan import (
    EMPTY_PLAN,
    AllocationController,
    DecisionCadence,
    EVERY_EVENT,
)
from repro.sim.policy import Policy
from repro.sim.trace import Trace, TraceEvent

_COMPLETION_EPS = 1e-9
_MIN_DT = 1e-6

# Ready-queue ordering: FIFO by dispatch time, job id as tie-break.
# Keys are unique (job ids are), so maintaining the queue with
# bisect.insort is exactly equivalent to append + stable sort.
_READY_KEY = lambda j: (j.task.dispatch_cycle, j.job_id)  # noqa: E731


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an invalid or stuck state."""


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run.

    Attributes:
        policy_name: The policy that produced the run.
        results: Per-task outcomes, sorted by task id.
        makespan: Cycle at which the last task finished.
        trace: The event trace (may be disabled/empty).
        events: Simulation events processed by the engine loop.
        block_time_recomputes: Full ``current_block_times`` solves
            (prediction + arbiter) the run actually performed.
        block_time_reuses: Solves served from the epoch cache instead.
        cost_cache_hits / cost_cache_misses: Network-cost cache probes
            during this run (attributed per run via
            :class:`repro.core.latency.track_cache_deltas`, so
            interleaved or nested runs cannot double-count — a warm
            worker shows zero misses here).
        predict_memo_hits / predict_memo_misses: ``BlockCost.predict``
            memo probes during this run, same delta convention.
        decisions: Times the policy was consulted for a plan (under
            the default every-event cadence this equals ``events``;
            regulated cadences consult less often).
        plans_applied: Plans that performed at least one mutation.
        plans_noop: Plans that performed none (empty or all no-op) —
            these leave the allocation epoch untouched.
        plan_actions: Total mutations applied through the
            :class:`~repro.sim.plan.AllocationController` (0 for
            legacy imperative policies, which mutate directly).
    """

    policy_name: str
    results: Sequence[TaskResult]
    makespan: float
    trace: Trace
    events: int = 0
    block_time_recomputes: int = 0
    block_time_reuses: int = 0
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    predict_memo_hits: int = 0
    predict_memo_misses: int = 0
    decisions: int = 0
    plans_applied: int = 0
    plans_noop: int = 0
    plan_actions: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_by_task", {r.task_id: r for r in self.results}
        )

    def result_for(self, task_id: str) -> TaskResult:
        """Look up one task's result."""
        try:
            return self._by_task[task_id]
        except KeyError:
            raise KeyError(f"no result for task {task_id!r}") from None


class Simulator:
    """Fluid discrete-event simulator of the Table II SoC.

    Attributes:
        soc: SoC configuration.
        mem: Shared-memory hierarchy.
        policy: The multi-tenancy policy driving decisions.
        now: Current simulation time in cycles.
        jobs: All jobs by id.
        ready: Dispatched jobs waiting in the task queue (FIFO by
            dispatch time).
        running: Jobs currently holding tiles.
        finished: Completed jobs.
        trace: Event log.
    """

    def __init__(
        self,
        soc: SoCConfig,
        tasks: Sequence[Task],
        policy: Policy,
        mem: Optional[MemoryHierarchy] = None,
        trace: bool = False,
        max_events: int = 20_000_000,
        cadence: Optional[DecisionCadence] = None,
        solver: str = "kernel",
    ) -> None:
        if not tasks:
            raise SimulationError("no tasks to simulate")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate task ids")
        if solver not in ("kernel", "vector", "scalar"):
            raise SimulationError(
                f"unknown solver {solver!r} "
                f"(expected 'kernel', 'vector' or 'scalar')"
            )
        self.soc = soc
        self.mem = mem if mem is not None else MemoryHierarchy.from_soc(soc)
        if (
            not policy.emits_plans
            and type(policy).on_event is Policy.on_event
        ):
            # Fail at construction, not at the first decision point
            # mid-simulation (the abc guard this seam replaced).
            raise SimulationError(
                f"policy {policy.name!r} implements neither decide() "
                f"nor on_event()"
            )
        self.policy = policy
        self.now = 0.0
        self.jobs: Dict[str, Job] = {
            t.task_id: Job(task=t) for t in tasks
        }
        # Arrival priority queue: (dispatch_cycle, -seq, job).  The
        # negative sequence number reproduces the historical pop order
        # for coincident dispatch times (descending job id).
        ordered = sorted(
            self.jobs.values(),
            key=lambda j: (j.task.dispatch_cycle, j.job_id),
        )
        self._pending: List[Tuple[float, int, Job]] = [
            (j.task.dispatch_cycle, -i, j) for i, j in enumerate(ordered)
        ]
        heapq.heapify(self._pending)
        self.ready: List[Job] = []
        self.running: List[Job] = []
        self.finished: List[Job] = []
        self._tiles_held = 0
        self.trace = Trace(enabled=trace)
        self._max_events = max_events
        self._block_T: Mapping[str, float] = {}
        # Structure-of-arrays runtime tables (one per task's network,
        # memoised on the NetworkCost so shared networks build once):
        # every (block, tiles) point the run can ever evaluate,
        # precomputed in one numpy batch.  The vectorized solver and
        # MoCA's batched regulation read these instead of probing the
        # predict memo per call; the tables are bit-identical to
        # BlockCost.predict, so either solver yields the same floats.
        self.solver = solver
        dram_bw = self.mem.dram_bandwidth
        l2_bw = self.mem.l2_bandwidth
        self._job_tables = {
            t.task_id: t.cost.runtime_table(
                dram_bw, l2_bw, soc.overlap_f, soc.num_tiles
            )
            for t in tasks
        }
        for job in self.jobs.values():
            # Direct reference for the vectorized solver: one
            # attribute read instead of a dict probe per job per
            # solve.
            job._table = self._job_tables[job.job_id]
        # The kernel's external probe/oracle solve is the vectorized
        # one: current_block_times() and the sanitizer spot-check stay
        # correct (and epoch-cached) whichever loop is driving.
        self._solve = (
            self._solve_scalar if solver == "scalar" else self._solve_vector
        )
        # Constants the per-event solve would otherwise re-derive
        # through property chains.
        self._dram_bw = dram_bw
        self._contention_penalty = self.mem.dram.contention_penalty
        # Incremental-recompute state (see module docstring).
        self._alloc_epoch = 0
        self._times_epoch = -1
        self._times_raw: Dict[str, float] = {}
        self._validated_state = (-1, -1)
        self._solve_checks = 0
        self.events = 0
        self.block_time_recomputes = 0
        self.block_time_reuses = 0
        # Declarative decision machinery (see repro.sim.plan): the
        # controller applies AllocationPlans; the cadence gates when
        # the policy is consulted.
        self.cadence = cadence if cadence is not None else EVERY_EVENT
        # The default cadence consults the policy unconditionally;
        # resolved to a flag so the hot loop skips _should_decide.
        self._cadence_every = self.cadence.mode == "every-event"
        self.controller = AllocationController(self)
        # Which seam the policy implements, resolved once (the
        # property does a type lookup; this runs every event).
        self._policy_emits_plans = policy.emits_plans
        self.decisions = 0
        self._boundaries = 0          # blocks retired so far
        self._decided_boundaries = -1  # _boundaries at the last decision
        self._last_decision_at: Optional[float] = None
        # Epoch batching: inside atomic_allocation() any number of
        # mutations coalesce to a single epoch bump.
        self._epoch_batch_depth = 0
        self._epoch_batch_dirty = False

    # ------------------------------------------------------------------
    # Policy-facing API
    # ------------------------------------------------------------------

    @property
    def free_tiles(self) -> int:
        """Tiles not currently held by any running job.

        Maintained as a running counter (policies probe this several
        times per event; summing the running list was measurable).
        :meth:`_validate` cross-checks the counter against the ground
        truth every event.
        """
        return self.soc.num_tiles - self._tiles_held

    def start_job(self, job: Job, tiles: int) -> None:
        """Admit a READY job onto ``tiles`` tiles."""
        if job.phase is not JobPhase.READY:
            raise SimulationError(f"{job.job_id} is not ready")
        if tiles <= 0 or tiles > self.free_tiles:
            raise SimulationError(
                f"cannot grant {tiles} tiles ({self.free_tiles} free)"
            )
        self.ready.remove(job)
        job.phase = JobPhase.RUNNING
        job.tiles = tiles
        self._tiles_held += tiles
        if job.started_at is None:
            job.started_at = self.now
        self.running.append(job)
        self._bump_epoch()
        self.trace.log(self.now, TraceEvent.START, job.job_id,
                       f"tiles={tiles}")

    def set_tiles(self, job: Job, tiles: int, charge: bool = True) -> bool:
        """Repartition a running job's tiles.

        ``charge=True`` (the legacy imperative seam) charges the
        compute-migration stall here; the
        :class:`~repro.sim.plan.AllocationController` passes
        ``charge=False`` and accounts the cost centrally (with
        same-instant dedupe).

        Returns:
            Whether the tile count actually changed — this is the
            single source of no-op detection, shared by the
            imperative seam and the controller's diffing.
        """
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        if tiles <= 0:
            raise SimulationError("tiles must be positive")
        if tiles == job.tiles:
            return False
        extra = tiles - job.tiles
        if extra > self.free_tiles:
            raise SimulationError(
                f"cannot grow {job.job_id} by {extra} tiles "
                f"({self.free_tiles} free)"
            )
        self._tiles_held += tiles - job.tiles
        job.tiles = tiles
        job.tile_repartitions += 1
        self._bump_epoch()
        if charge:
            self.stall_job(job, self.policy.compute_reconfig_cycles)
        self.trace.log(self.now, TraceEvent.TILE_REPARTITION, job.job_id,
                       f"tiles={tiles}")
        return True

    def set_bw_cap(
        self, job: Job, cap: Optional[float], charge: bool = True
    ) -> bool:
        """Reconfigure a job's memory throttle.

        ``charge=True`` (the legacy imperative seam) charges the 5-10
        cycle DMA issue-rate update here; the
        :class:`~repro.sim.plan.AllocationController` passes
        ``charge=False`` and accounts the cost centrally.

        Returns:
            Whether the cap actually changed (same-value and
            within-tolerance re-applications are no-ops).
        """
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        if cap is not None and cap <= 0:
            raise SimulationError("bandwidth cap must be positive")
        old = job.bw_cap
        if old == cap or (
            old is not None and cap is not None
            and abs(old - cap) < 1e-9
        ):
            return False
        job.bw_cap = cap
        job.bw_reconfigs += 1
        self._bump_epoch()
        if charge:
            self.stall_job(job, self.policy.memory_reconfig_cycles)
        if self.trace.enabled:
            self.trace.log(
                self.now, TraceEvent.BW_RECONFIG, job.job_id,
                f"cap={'none' if cap is None else f'{cap:.2f}B/cyc'}",
            )
        return True

    def preempt(self, job: Job) -> None:
        """Return a running job to the ready queue (block progress is
        retained — checkpointing happens at layer boundaries)."""
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        self.running.remove(job)
        job.phase = JobPhase.READY
        self._tiles_held -= job.tiles
        job.tiles = 0
        job.bw_cap = None
        job.preemptions += 1
        insort(self.ready, job, key=_READY_KEY)
        self._bump_epoch()
        self.trace.log(self.now, TraceEvent.PREEMPT, job.job_id)

    def stall_job(self, job: Job, cycles: float) -> None:
        """Stall a job for ``cycles`` (extends any current stall)."""
        if cycles < 0:
            raise SimulationError("stall cycles must be non-negative")
        if cycles == 0:
            return
        base = max(job.stall_until, self.now)
        new_until = self.now + cycles
        if new_until > base:
            job.stall_cycles += new_until - base
            job.stall_until = new_until
            self._bump_epoch()

    # ------------------------------------------------------------------
    # Allocation-epoch bookkeeping
    # ------------------------------------------------------------------

    def _bump_epoch(self) -> None:
        """Invalidate the block-time cache (deferred inside a batch)."""
        if self._epoch_batch_depth:
            self._epoch_batch_dirty = True
        else:
            self._alloc_epoch += 1

    def _begin_allocation_batch(self) -> None:
        """Enter a deferred-epoch batch (see :meth:`atomic_allocation`).

        Paired with :meth:`_end_allocation_batch`; the controller
        calls the pair directly because a contextmanager generator per
        applied plan is measurable overhead on the engine's hottest
        path.  This pair is the single source of the batching
        semantics — :meth:`atomic_allocation` is sugar over it.
        """
        self._epoch_batch_depth += 1

    def _end_allocation_batch(self) -> None:
        """Leave a deferred-epoch batch; the outermost exit performs
        the single coalesced epoch bump if anything mutated."""
        self._epoch_batch_depth -= 1
        if self._epoch_batch_depth == 0 and self._epoch_batch_dirty:
            self._epoch_batch_dirty = False
            self._alloc_epoch += 1

    @contextmanager
    def atomic_allocation(self) -> Iterator[None]:
        """Coalesce every mutation inside the block into **one**
        allocation-epoch bump (none at all if nothing mutated).

        This is how the :class:`~repro.sim.plan.AllocationController`
        applies a whole plan at the cost of a single cache
        invalidation; the cache stays exact because the bump (when
        any mutation occurred) still lands before the next
        :meth:`current_block_times` call.  Re-entrant: nested blocks
        defer to the outermost one.
        """
        self._begin_allocation_batch()
        try:
            yield
        finally:
            self._end_allocation_batch()

    # ------------------------------------------------------------------
    # Engine core
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Run to completion and return per-task results."""
        # Cache telemetry is attributed through a per-run frame (not a
        # diff of the process-global counters), so interleaved
        # construct-then-run sequences, nested simulations and
        # mid-run reset_cache_stats() calls can neither double-count
        # nor drive the deltas negative.
        from repro.core.latency import track_cache_deltas

        with track_cache_deltas() as cache_delta:
            if self.solver == "kernel":
                self._advance_horizon()
            else:
                self._run_incremental()
        makespan = max((j.finished_at or 0.0) for j in self.finished)
        return SimResult(
            policy_name=self.policy.name,
            results=results_from_jobs(self.finished),
            makespan=makespan,
            trace=self.trace,
            events=self.events,
            block_time_recomputes=self.block_time_recomputes,
            block_time_reuses=self.block_time_reuses,
            decisions=self.decisions,
            plans_applied=self.controller.plans_applied,
            plans_noop=self.controller.plans_noop,
            plan_actions=self.controller.actions_applied,
            **cache_delta,
        )

    def _run_incremental(self) -> None:
        """The single-step reference loop: one solve, one advance, one
        retirement pass per event, each through the documented
        primitives.  Kept verbatim as the oracle the horizon kernel is
        pinned against (property tests + the ``REPRO_CHECK=1`` spot
        check)."""
        while len(self.finished) < len(self.jobs):
            self.events += 1
            if self.events > self._max_events:
                raise SimulationError(
                    f"exceeded {self._max_events} events; "
                    f"{len(self.finished)}/{len(self.jobs)} tasks done "
                    f"at cycle {self.now:,.0f}"
                )
            pending = self._pending
            if pending and (
                pending[0][0] <= self.now + _COMPLETION_EPS
            ):
                self._dispatch_arrivals()
            if self._cadence_every or self._should_decide():
                self._consult_policy()
            if (
                self._tiles_held, len(self.running)
            ) != self._validated_state:
                self._validate()
            if not self._step():
                if self._pending:
                    # Idle gap: jump to the next arrival.
                    self.now = self._pending[0][0]
                    continue
                raise SimulationError(
                    f"deadlock at cycle {self.now:,.0f}: "
                    f"{len(self.ready)} ready, "
                    f"{len(self.running)} running, "
                    f"policy {self.policy.name!r} made no progress"
                )

    def _advance_horizon(self) -> None:
        """The epoch-horizon kernel loop (``solver="kernel"``, the
        default).

        Between allocation-epoch bumps every live job's block
        schedule is fixed, so the loop keeps the whole solve state in
        per-job slots (``Job._kval`` table rows, ``Job._kT`` block
        times) and locals, and advances horizon by horizon: each
        iteration finds the next *epoch-relevant boundary* — the
        earliest of next arrival, stall expiry, and block completion
        under the current allocation — advances straight to it, and
        retires every block that lands there in one fused sweep.
        Decision points are gated exactly like the reference loop,
        with two extra fusions:

        - a policy implementing ``kernel_noop_guard`` lets provably
          empty decision rounds skip the ``decide()`` call outright
          (the bookkeeping the round would have performed — decision
          count, cadence markers — still happens);
        - a policy implementing ``kernel_decide_apply`` runs its
          caps-only steady-state rounds fused, applying cap changes in
          place through the controller's trusted journal instead of
          round-tripping a plan object.

        Every float operation replicates the reference loop's
        sequence exactly — the solve is :meth:`_solve_vector`
        specialised to slot state, the dt scan, progress accrual and
        retirement order are verbatim — so results and makespans are
        bit-identical to the incremental loop (property-pinned in
        tests/test_kernel.py; goldens unchanged).  Under
        ``REPRO_CHECK=1`` the fused apply is disabled (every plan
        passes the sanitizer's trusted re-validation) and the fused
        solve is spot-checked against the incremental oracle on the
        first epoch and every 64th.
        """
        policy = self.policy
        emits = self._policy_emits_plans
        san_on = sanitizer.enabled
        guard = policy.kernel_noop_guard
        fused = None if san_on else policy.kernel_decide_apply
        cadence_every = self._cadence_every
        controller = self.controller
        apply_plan = controller.apply
        decide = policy.decide if emits else None
        on_event = None if emits else policy.on_event
        jobs_total = len(self.jobs)
        finished = self.finished
        running = self.running
        pending = self._pending
        max_events = self._max_events
        trace = self.trace
        eps = _COMPLETION_EPS
        done_thr = 1.0 - eps
        min_dt = _MIN_DT
        inf = float("inf")
        dram_bw = self._dram_bw
        penalty = self._contention_penalty
        rel1 = 1 + _REL_TOL
        events = self.events
        recomputes = self.block_time_recomputes
        reuses = self.block_time_reuses
        decisions = self.decisions
        noops = 0
        checks = self._solve_checks
        solved_epoch = -1
        # The running list partitioned by stalledness at the last
        # recompute.  Valid until the next epoch bump: every mutation
        # that moves a job between the partitions (stall expiry, new
        # stall, retire, admission, preemption) bumps the allocation
        # epoch, which forces a recompute that rebuilds both lists.
        # ``act`` preserves running order, so the completion sweep
        # retires blocks in the reference order.
        act = []
        stl = []
        dispatch = self._dispatch_arrivals
        next_arrival = pending[0][0] if pending else inf
        try:
            while len(finished) < jobs_total:
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; "
                        f"{len(finished)}/{jobs_total} tasks done "
                        f"at cycle {self.now:,.0f}"
                    )
                now = self.now
                if next_arrival <= now + eps:
                    dispatch()
                    next_arrival = pending[0][0] if pending else inf
                if cadence_every or self._should_decide():
                    decisions += 1
                    if not cadence_every:
                        self._decided_boundaries = self._boundaries
                        self._last_decision_at = now
                    if emits:
                        if guard is not None and guard(self):
                            # Provably-empty round: same bookkeeping,
                            # no decide() call.
                            noops += 1
                        elif fused is not None:
                            fused(self)
                        else:
                            plan = decide(self)
                            if plan is EMPTY_PLAN:
                                noops += 1
                            else:
                                apply_plan(plan)
                    else:
                        on_event(self)
                vstate = self._validated_state
                if (
                    vstate[0] != self._tiles_held
                    or vstate[1] != len(running)
                ):
                    self._validate()
                # ---- fused solve + next-boundary scan --------------
                # _solve_vector + _step's dt scan specialised to slot
                # state: same passes, same float sequence.
                best = inf
                if next_arrival != inf:
                    c = next_arrival - now
                    if c >= 0:
                        best = c
                epoch = self._alloc_epoch
                if epoch != solved_epoch:
                    recomputes += 1
                    solved_epoch = epoch
                    total_wants = 0.0
                    streams = 0
                    # One pass over the running list: stall candidates
                    # fold into ``best`` here (``best`` is a pure min,
                    # so candidate order is free), active jobs collect
                    # into parallel job/want lists so the branch passes
                    # below never re-read caps or re-check stalls.
                    act = []
                    stl = []
                    wl = []
                    for job in running:
                        su = job.stall_until
                        if now < su:
                            stl.append(job)
                            c = su - now
                            if c < best:
                                best = c
                            continue
                        bi = job.block_idx
                        tiles = job.tiles
                        v = job._kval
                        if v is None or v[0] != bi or v[1] != tiles:
                            table = job._table
                            col = tiles - 1
                            v = (
                                bi, tiles,
                                table.t_full_rows[bi][col],
                                table.from_dram[bi],
                                table.demand_rows[bi][col],
                            )
                            job._kval = v
                        d = v[4]
                        cap = job.bw_cap
                        if cap is not None and cap < d:
                            w = cap
                        else:
                            w = d
                        total_wants += w
                        if w > 0:
                            streams += 1
                        act.append(job)
                        wl.append(w)
                    if act:
                        effective = dram_bw
                        if total_wants > effective and streams > 1:
                            effective *= (
                                1.0 - penalty * (1.0 - 1.0 / streams)
                            )
                        if total_wants <= effective * rel1:
                            # Undersubscribed: independent times; the
                            # capped want is each job's share.
                            for i, job in enumerate(act):
                                v = job._kval
                                fd = v[3]
                                if fd <= 0:
                                    T = v[2]
                                else:
                                    share = wl[i]
                                    if share <= 0:
                                        T = inf
                                    else:
                                        fdd = fd / share
                                        tf = v[2]
                                        T = tf if tf > fdd else fdd
                                job._kT = T
                                if T != inf:
                                    c = (1.0 - job.progress) * T
                                    if 0 <= c < best:
                                        best = c
                        else:
                            # Oversubscribed: shared water-fill core.
                            shares, _ = waterfill_grants(
                                wl,
                                [j._kval[4] for j in act],
                                effective,
                            )
                            for i, job in enumerate(act):
                                v = job._kval
                                fd = v[3]
                                share = shares[i]
                                if fd <= 0:
                                    T = v[2]
                                elif share <= 0:
                                    T = inf
                                else:
                                    fdd = fd / share
                                    tf = v[2]
                                    T = tf if tf > fdd else fdd
                                job._kT = T
                                if T != inf:
                                    c = (1.0 - job.progress) * T
                                    if 0 <= c < best:
                                        best = c
                    if san_on:
                        checks += 1
                        if checks == 1 or checks % 64 == 0:
                            # The full agreement chain at the sample
                            # point: vector vs scalar (the incremental
                            # path's own spot-check), then the fused
                            # kernel solve vs the vector oracle.
                            oracle = self._solve()
                            sanitizer.check_solver_agreement(
                                oracle, self._solve_scalar(), now
                            )
                            kernel_times = {
                                j.job_id: j._kT
                                for j in running
                                if now >= j.stall_until
                            }
                            sanitizer.check_kernel_agreement(
                                kernel_times, oracle, now
                            )
                else:
                    reuses += 1
                    for job in stl:
                        c = job.stall_until - now
                        if c < best:
                            best = c
                    for job in act:
                        T = job._kT
                        if T != inf:
                            c = (1.0 - job.progress) * T
                            if 0 <= c < best:
                                best = c
                if best == inf:
                    if pending:
                        # Idle gap: jump to the next arrival.
                        self.now = pending[0][0]
                        continue
                    raise SimulationError(
                        f"deadlock at cycle {self.now:,.0f}: "
                        f"{len(self.ready)} ready, "
                        f"{len(running)} running, "
                        f"policy {policy.name!r} made no progress"
                    )
                # ---- fused advance + batched retire sweep ----------
                dt = best if best >= min_dt else min_dt
                new_now = now + dt
                stall_expired = False
                completed = None
                for job in stl:
                    # A stall expiring re-activates the job: the
                    # arbiter's active set changed even though no
                    # allocation call ran.
                    if job.stall_until <= new_now:
                        stall_expired = True
                for job in act:
                    T = job._kT
                    if T == inf or T <= 0:
                        continue
                    p = job.progress + dt / T
                    if p > 1.0:
                        p = 1.0
                    job.progress = p
                    if p >= done_thr:
                        if completed is None:
                            completed = [job]
                        else:
                            completed.append(job)
                self.now = new_now
                if stall_expired:
                    self._alloc_epoch += 1
                if completed:
                    # Every block that landed on this horizon retires
                    # in one sweep, in running order (the reference
                    # _retire_completed order).
                    trace_on = trace.enabled
                    for job in completed:
                        job.block_idx += 1
                        job.progress = 0.0
                        self._alloc_epoch += 1
                        self._boundaries += 1
                        if trace_on:
                            trace.log(
                                new_now, TraceEvent.BLOCK_DONE,
                                job.job_id,
                                f"block={job.block_idx - 1}",
                            )
                        if job.block_idx >= len(job.task.cost.blocks):
                            job.phase = JobPhase.FINISHED
                            job.finished_at = new_now
                            self._tiles_held -= job.tiles
                            job.tiles = 0
                            job.bw_cap = None
                            running.remove(job)
                            finished.append(job)
                            trace.log(
                                new_now, TraceEvent.FINISH, job.job_id
                            )
                            policy.on_job_finished(self, job)
        finally:
            self.events = events
            self.block_time_recomputes = recomputes
            self.block_time_reuses = reuses
            self.decisions = decisions
            if san_on:
                self._solve_checks = checks
            controller.plans_noop += noops

    def _should_decide(self) -> bool:
        """Whether the cadence grants the policy this event.

        Every cadence decides while nothing is running — a ready
        queue with the whole SoC idle must never wait on a regulation
        boundary that can no longer arrive.
        """
        mode = self.cadence.mode
        if mode == "every-event":
            return True
        if not self.running:
            return True
        if mode == "block-boundary":
            return self._boundaries != self._decided_boundaries
        # "interval"
        return (
            self._last_decision_at is None
            or self.now - self._last_decision_at >= self.cadence.interval
        )

    def _consult_policy(self) -> None:
        """One decision point: collect the policy's plan and apply it
        (or invoke a legacy imperative policy directly)."""
        self.decisions += 1
        self._decided_boundaries = self._boundaries
        self._last_decision_at = self.now
        if self._policy_emits_plans:
            plan = self.policy.decide(self)
            if plan is EMPTY_PLAN:
                # The dominant outcome on the hot path; counting it
                # here skips the controller dispatch entirely.
                self.controller.plans_noop += 1
            else:
                self.controller.apply(plan)
        else:
            self.policy.on_event(self)

    def _dispatch_arrivals(self) -> None:
        """Move pending tasks whose dispatch time has come to READY.

        Each arrival is inserted at its sorted position; re-sorting
        the whole ready queue per dispatch batch was O(n log n) per
        event under load (see tests/test_engine.py ordering
        regression).
        """
        while self._pending and (
            self._pending[0][0] <= self.now + _COMPLETION_EPS
        ):
            _, _, job = heapq.heappop(self._pending)
            job.phase = JobPhase.READY
            insort(self.ready, job, key=_READY_KEY)
            if self.trace.enabled:
                self.trace.log(
                    job.task.dispatch_cycle, TraceEvent.DISPATCH, job.job_id,
                    f"net={job.task.network_name} prio={job.task.priority}",
                )

    def current_block_times(self) -> Mapping[str, float]:
        """Per running job: cycles its current block needs under the
        current allocation (the fluid rate law).

        Served from cache while the allocation epoch is unchanged; the
        returned mapping is a read-only view (mutating it would
        corrupt the cache, so it is a :class:`types.MappingProxyType`).

        The solve itself runs through the solver selected at
        construction: ``"vector"`` (default) reads the precomputed
        structure-of-arrays runtime tables and inlines the arbiter
        core; ``"scalar"`` is the original per-job loop, kept as the
        reference oracle.  Both produce bit-identical mappings
        (property-tested in tests/test_vectorized.py).
        """
        return MappingProxyType(self._times_now())

    def _times_now(self) -> Dict[str, float]:
        """Cache probe returning the *raw* block-time dict.

        Internal hot-path counterpart of :meth:`current_block_times`
        (same cache, same telemetry counters) that skips the
        read-only proxy wrapper — the engine trusts itself not to
        mutate the mapping.
        """
        if self._times_epoch == self._alloc_epoch:
            self.block_time_reuses += 1
        else:
            self.block_time_recomputes += 1
            self._times_raw = self._solve()
            self._times_epoch = self._alloc_epoch
            if sanitizer.enabled and self.solver != "scalar":
                # Spot-check the vectorized solve against the scalar
                # oracle: the first recompute plus every 64th (the
                # bit-identical contract, sampled so sanitized runs
                # stay usable on full sweeps).
                self._solve_checks += 1
                if self._solve_checks == 1 or (
                    self._solve_checks % 64 == 0
                ):
                    sanitizer.check_solver_agreement(
                        self._times_raw, self._solve_scalar(), self.now
                    )
        return self._times_raw

    def _solve_scalar(self) -> Dict[str, float]:
        """Reference block-time solve: per-job ``predict`` calls plus
        the validated dict-based arbiter."""
        dram_bw = self.mem.dram_bandwidth
        l2_bw = self.mem.l2_bandwidth
        overlap_f = self.soc.overlap_f
        active = [
            j for j in self.running if not j.is_stalled(self.now)
        ]
        demands: Dict[str, float] = {}
        t_full: Dict[str, float] = {}
        for job in active:
            cost = job.current_block
            # predict() is memoised on the BlockCost itself, so this
            # is a dict lookup for revisited (tiles, bandwidth) points.
            full = cost.predict(job.tiles, dram_bw, l2_bw, overlap_f)
            t_full[job.job_id] = full
            demands[job.job_id] = (
                cost.from_dram_bytes / full if full > 0 else 0.0
            )
        caps = {
            j.job_id: j.bw_cap
            for j in active
            if j.bw_cap is not None
        }
        # Achieved total bandwidth degrades when the co-runners'
        # regulated demand oversubscribes the channel (row-buffer
        # thrash under interleaving); throttled systems that keep the
        # total under the peak retain single-stream efficiency.
        shares: Dict[str, float] = {}
        if demands:
            wants = {
                jid: min(d, caps.get(jid, float("inf")))
                for jid, d in demands.items()
            }
            total_wants = sum(wants.values())
            streams = sum(1 for w in wants.values() if w > 0)
            effective = self.mem.dram.effective_bandwidth(
                streams, oversubscribed=total_wants > dram_bw
            )
            shares = allocate_bandwidth(demands, effective, caps)
        times: Dict[str, float] = {}
        for job in active:
            jid = job.job_id
            from_dram = job.current_block.from_dram_bytes
            share = shares.get(jid, 0.0)
            if from_dram <= 0:
                times[jid] = t_full[jid]
            elif share <= 0:
                times[jid] = float("inf")
            else:
                times[jid] = max(t_full[jid], from_dram / share)
        return times

    def _solve_vector(self) -> Dict[str, float]:
        """Hot-path block-time solve over structure-of-arrays state.

        One pass over the running jobs gathers parallel lists
        (t_full, demand, from_dram, capped want) straight from the
        precomputed runtime tables — no ``predict`` calls, no memo
        probes, no intermediate dicts — then feeds the shared
        :func:`~repro.memory.arbiter.waterfill_grants` core directly.
        Every float operation replicates the scalar path's order
        exactly (sequential want-sum, raw-demand weights, freeze-order
        conservation clamp), so the result is bit-identical to
        :meth:`_solve_scalar`.
        """
        now = self.now
        running = self.running
        total_wants = 0.0
        streams = 0
        n = 0
        # Pass 1: total capped demand and stream count (the
        # oversubscription decision needs the whole picture first).
        for job in running:
            if now < job.stall_until:
                continue
            table = job._table
            d = table.demand_rows[job.block_idx][job.tiles - 1]
            cap = job.bw_cap
            w = d if cap is None else min(d, cap)
            total_wants += w
            if w > 0:
                streams += 1
            n += 1
        times: Dict[str, float] = {}
        if not n:
            return times
        # DramModel.effective_bandwidth inlined on cached constants
        # (same float expression, same result).
        effective = self._dram_bw
        if total_wants > effective and streams > 1:
            effective *= (
                1.0 - self._contention_penalty * (1.0 - 1.0 / streams)
            )
        if total_wants <= effective * (1 + _REL_TOL):
            # Undersubscribed (the common case once regulation has
            # converged): every job keeps its capped want — emit the
            # times directly, no parallel lists, no waterfill.
            for job in running:
                if now < job.stall_until:
                    continue
                table = job._table
                bi = job.block_idx
                col = job.tiles - 1
                fd = table.from_dram[bi]
                tf = table.t_full_rows[bi][col]
                if fd <= 0:
                    times[job.job_id] = tf
                else:
                    d = table.demand_rows[bi][col]
                    cap = job.bw_cap
                    share = d if cap is None else min(d, cap)
                    if share <= 0:
                        times[job.job_id] = float("inf")
                    else:
                        times[job.job_id] = max(tf, fd / share)
            return times
        # Oversubscribed: gather parallel lists and run the shared
        # water-fill core.
        jids: List[str] = []
        t_full: List[float] = []
        demands: List[float] = []
        from_dram: List[float] = []
        wants: List[float] = []
        for job in running:
            if now < job.stall_until:
                continue
            table = job._table
            bi = job.block_idx
            col = job.tiles - 1
            d = table.demand_rows[bi][col]
            cap = job.bw_cap
            jids.append(job.job_id)
            t_full.append(table.t_full_rows[bi][col])
            demands.append(d)
            from_dram.append(table.from_dram[bi])
            wants.append(d if cap is None else min(d, cap))
        shares, _ = waterfill_grants(wants, demands, effective)
        for i, jid in enumerate(jids):
            fd = from_dram[i]
            share = shares[i]
            if fd <= 0:
                times[jid] = t_full[i]
            elif share <= 0:
                times[jid] = float("inf")
            else:
                times[jid] = max(t_full[i], fd / share)
        return times

    def _next_event_dt(self) -> Optional[float]:
        """Time to the next event, or None if nothing can happen."""
        self._block_T = times = self._times_now()
        now = self.now
        inf = float("inf")
        best = inf
        have = False
        if self._pending:
            c = self._pending[0][0] - now
            if c >= 0:
                best = c
                have = True
        for job in self.running:
            if now < job.stall_until:
                c = job.stall_until - now
            else:
                T = times[job.job_id]
                if T == inf:
                    continue
                c = (1.0 - job.progress) * T
            if 0 <= c < best:
                best = c
                have = True
        if not have:
            return None
        return best

    def _step(self) -> bool:
        """One fused time step: next-event dt, time advance, progress
        accrual and completion retirement in a single pass over the
        running set — the exact composition of
        :meth:`_next_event_dt`, :meth:`_advance` (with the
        ``_MIN_DT`` clamp) and :meth:`_process_completions`, which
        stay as the documented reference primitives.

        Returns:
            False when no event can occur (the caller resolves idle
            gaps or declares deadlock).
        """
        times = self._times_now()
        now = self.now
        inf = float("inf")
        best = inf
        have = False
        pending = self._pending
        if pending:
            c = pending[0][0] - now
            if c >= 0:
                best = c
                have = True
        running = self.running
        for job in running:
            if now < job.stall_until:
                c = job.stall_until - now
            else:
                T = times[job.job_id]
                if T == inf:
                    continue
                c = (1.0 - job.progress) * T
            if 0 <= c < best:
                best = c
                have = True
        if not have:
            return False
        self._block_T = times
        dt = best if best >= _MIN_DT else _MIN_DT
        new_now = now + dt
        stall_expired = False
        completed = False
        done = 1.0 - _COMPLETION_EPS
        for job in running:
            su = job.stall_until
            if now < su:
                # A stall expiring re-activates the job: the
                # arbiter's active set changed even though no
                # allocation call ran.
                if su <= new_now:
                    stall_expired = True
                continue
            T = times[job.job_id]
            if T == inf or T <= 0:
                continue
            p = job.progress + dt / T
            if p > 1.0:
                p = 1.0
            job.progress = p
            if p >= done:
                completed = True
        self.now = new_now
        if stall_expired:
            self._bump_epoch()
        if completed:
            self._retire_completed()
        return True

    def _advance(self, dt: float) -> None:
        """Advance time; accrue progress on unstalled running jobs."""
        inf = float("inf")
        old_now = self.now
        block_T = self._block_T
        for job in self.running:
            if old_now < job.stall_until:
                continue
            T = block_T.get(job.job_id, inf)
            if T == inf or T <= 0:
                continue
            job.progress = min(1.0, job.progress + dt / T)
        self.now += dt
        for job in self.running:
            # A stall expiring re-activates the job: the arbiter's
            # active set changed even though no allocation call ran.
            if old_now < job.stall_until <= self.now:
                self._bump_epoch()
                break

    def _process_completions(self) -> None:
        """Retire completed blocks and finish jobs on their last block."""
        done = 1.0 - _COMPLETION_EPS
        for job in self.running:
            if job.progress >= done:
                self._retire_completed()
                return

    def _retire_completed(self) -> None:
        """Retire every running job whose block progress crossed the
        completion threshold (the caller established at least one
        did)."""
        done = 1.0 - _COMPLETION_EPS
        for job in list(self.running):
            if job.progress < done:
                continue
            job.block_idx += 1
            job.progress = 0.0
            self._bump_epoch()
            self._boundaries += 1
            if self.trace.enabled:
                self.trace.log(self.now, TraceEvent.BLOCK_DONE, job.job_id,
                               f"block={job.block_idx - 1}")
            if job.block_idx >= job.num_blocks:
                job.phase = JobPhase.FINISHED
                job.finished_at = self.now
                self._tiles_held -= job.tiles
                job.tiles = 0
                job.bw_cap = None
                self.running.remove(job)
                self.finished.append(job)
                self.trace.log(self.now, TraceEvent.FINISH, job.job_id)
                self.policy.on_job_finished(self, job)

    def _validate(self) -> None:
        """Invariant checks after every policy invocation.

        The full per-job sweep runs only when tile state could have
        moved since the last check: job tile counts change solely
        through engine primitives, and every one of those shifts the
        held-tiles counter or the running-set size.  Quiet events
        (caps-only or empty plans — the common case) reduce to one
        tuple compare.
        """
        state = (self._tiles_held, len(self.running))
        if state == self._validated_state:
            return
        self._validated_state = state
        held = sum(j.tiles for j in self.running)
        if held > self.soc.num_tiles:
            raise SimulationError(
                f"policy over-allocated tiles: {held} > {self.soc.num_tiles}"
            )
        if held != self._tiles_held:
            raise SimulationError(
                f"tile accounting drifted: counter {self._tiles_held}, "
                f"running jobs hold {held}"
            )
        for job in self.running:
            if job.tiles <= 0:
                raise SimulationError(
                    f"running job {job.job_id} holds no tiles"
                )


def run_simulation(
    soc: SoCConfig,
    tasks: Sequence[Task],
    policy: Policy,
    mem: Optional[MemoryHierarchy] = None,
    trace: bool = False,
    cadence: Optional[DecisionCadence] = None,
    solver: str = "kernel",
) -> SimResult:
    """Convenience wrapper: reset the policy, build and run a simulator."""
    policy.reset()
    sim = Simulator(soc, tasks, policy, mem=mem, trace=trace,
                    cadence=cadence, solver=solver)
    return sim.run()
