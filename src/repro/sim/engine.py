"""The fluid discrete-event multi-tenant SoC simulator.

This is the reproduction's substitute for the paper's FireSim RTL
simulation (see DESIGN.md §4).  Jobs progress through their networks'
layer blocks at rates derived from Algorithm 1's latency law under the
current resource allocation:

- a job holding ``k`` tiles and granted a DRAM share ``s`` executes its
  current block in ``T = max(T_full(k), From_DRAM / s)`` cycles, where
  ``T_full`` is the unconstrained Algorithm 1 prediction — the job is
  limited either by its own compute/memory structure or by draining its
  DRAM traffic at the granted share;
- DRAM shares come from the arbiter: demand-proportional when
  unmanaged, clamped by MoCA's throttle caps when regulated;
- between events all rates are constant, so the engine advances
  analytically from event to event (no per-cycle stepping) and is
  exactly deterministic.

Events: task dispatch, block completion, stall expiry (migration or
reconfiguration penalties) and policy-initiated changes.

Incremental recomputation
-------------------------

``current_block_times()`` (each running job's block latency under the
current allocation, including the bandwidth-arbiter solve) only depends
on *allocation state*: the set of unstalled running jobs, their current
blocks, tile counts and throttle caps.  The engine maintains an
**allocation epoch** counter that every state mutation bumps
(``start_job`` / ``set_tiles`` / ``set_bw_cap`` / ``preempt`` /
``stall_job`` / block retirement / stall expiry); between bumps the
solve is served from cache instead of being recomputed on every event.
Per-block unconstrained predictions are additionally memoised on the
:class:`~repro.core.latency.BlockCost` instances themselves, since
jobs revisit the same blocks under the same allocations thousands of
times per run.  Both caches are exact — the epoch cache is invalidated
on *any* state change, the prediction memo keys on every input of the
pure function — so the simulation stays bit-identical to the
always-recompute engine.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.memory.arbiter import allocate_bandwidth
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.job import Job, JobPhase, Task, TaskResult, results_from_jobs
from repro.sim.policy import Policy
from repro.sim.trace import Trace, TraceEvent

_COMPLETION_EPS = 1e-9
_MIN_DT = 1e-6


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an invalid or stuck state."""


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run.

    Attributes:
        policy_name: The policy that produced the run.
        results: Per-task outcomes, sorted by task id.
        makespan: Cycle at which the last task finished.
        trace: The event trace (may be disabled/empty).
        events: Simulation events processed by the engine loop.
        block_time_recomputes: Full ``current_block_times`` solves
            (prediction + arbiter) the run actually performed.
        block_time_reuses: Solves served from the epoch cache instead.
        cost_cache_hits / cost_cache_misses: Network-cost cache probes
            during this run (attributed per run via
            :class:`repro.core.latency.track_cache_deltas`, so
            interleaved or nested runs cannot double-count — a warm
            worker shows zero misses here).
        predict_memo_hits / predict_memo_misses: ``BlockCost.predict``
            memo probes during this run, same delta convention.
    """

    policy_name: str
    results: Sequence[TaskResult]
    makespan: float
    trace: Trace
    events: int = 0
    block_time_recomputes: int = 0
    block_time_reuses: int = 0
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    predict_memo_hits: int = 0
    predict_memo_misses: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_by_task", {r.task_id: r for r in self.results}
        )

    def result_for(self, task_id: str) -> TaskResult:
        """Look up one task's result."""
        try:
            return self._by_task[task_id]
        except KeyError:
            raise KeyError(f"no result for task {task_id!r}") from None


class Simulator:
    """Fluid discrete-event simulator of the Table II SoC.

    Attributes:
        soc: SoC configuration.
        mem: Shared-memory hierarchy.
        policy: The multi-tenancy policy driving decisions.
        now: Current simulation time in cycles.
        jobs: All jobs by id.
        ready: Dispatched jobs waiting in the task queue (FIFO by
            dispatch time).
        running: Jobs currently holding tiles.
        finished: Completed jobs.
        trace: Event log.
    """

    def __init__(
        self,
        soc: SoCConfig,
        tasks: Sequence[Task],
        policy: Policy,
        mem: Optional[MemoryHierarchy] = None,
        trace: bool = False,
        max_events: int = 20_000_000,
    ) -> None:
        if not tasks:
            raise SimulationError("no tasks to simulate")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate task ids")
        self.soc = soc
        self.mem = mem if mem is not None else MemoryHierarchy.from_soc(soc)
        self.policy = policy
        self.now = 0.0
        self.jobs: Dict[str, Job] = {
            t.task_id: Job(task=t) for t in tasks
        }
        # Arrival priority queue: (dispatch_cycle, -seq, job).  The
        # negative sequence number reproduces the historical pop order
        # for coincident dispatch times (descending job id).
        ordered = sorted(
            self.jobs.values(),
            key=lambda j: (j.task.dispatch_cycle, j.job_id),
        )
        self._pending: List[Tuple[float, int, Job]] = [
            (j.task.dispatch_cycle, -i, j) for i, j in enumerate(ordered)
        ]
        heapq.heapify(self._pending)
        self.ready: List[Job] = []
        self.running: List[Job] = []
        self.finished: List[Job] = []
        self.trace = Trace(enabled=trace)
        self._max_events = max_events
        self._block_T: Mapping[str, float] = {}
        # Incremental-recompute state (see module docstring).
        self._alloc_epoch = 0
        self._times_epoch = -1
        self._times_cache: Mapping[str, float] = MappingProxyType({})
        self.events = 0
        self.block_time_recomputes = 0
        self.block_time_reuses = 0

    # ------------------------------------------------------------------
    # Policy-facing API
    # ------------------------------------------------------------------

    @property
    def free_tiles(self) -> int:
        """Tiles not currently held by any running job."""
        return self.soc.num_tiles - sum(j.tiles for j in self.running)

    def start_job(self, job: Job, tiles: int) -> None:
        """Admit a READY job onto ``tiles`` tiles."""
        if job.phase is not JobPhase.READY:
            raise SimulationError(f"{job.job_id} is not ready")
        if tiles <= 0 or tiles > self.free_tiles:
            raise SimulationError(
                f"cannot grant {tiles} tiles ({self.free_tiles} free)"
            )
        self.ready.remove(job)
        job.phase = JobPhase.RUNNING
        job.tiles = tiles
        if job.started_at is None:
            job.started_at = self.now
        self.running.append(job)
        self._alloc_epoch += 1
        self.trace.log(self.now, TraceEvent.START, job.job_id,
                       f"tiles={tiles}")

    def set_tiles(self, job: Job, tiles: int) -> None:
        """Repartition a running job's tiles (charges migration stall)."""
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        if tiles <= 0:
            raise SimulationError("tiles must be positive")
        if tiles == job.tiles:
            return
        extra = tiles - job.tiles
        if extra > self.free_tiles:
            raise SimulationError(
                f"cannot grow {job.job_id} by {extra} tiles "
                f"({self.free_tiles} free)"
            )
        job.tiles = tiles
        job.tile_repartitions += 1
        self._alloc_epoch += 1
        self.stall_job(job, self.policy.compute_reconfig_cycles)
        self.trace.log(self.now, TraceEvent.TILE_REPARTITION, job.job_id,
                       f"tiles={tiles}")

    def set_bw_cap(self, job: Job, cap: Optional[float]) -> None:
        """Reconfigure a job's memory throttle (charges 5-10 cycles)."""
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        if cap is not None and cap <= 0:
            raise SimulationError("bandwidth cap must be positive")
        old = job.bw_cap
        if old == cap or (
            old is not None and cap is not None
            and abs(old - cap) < 1e-9
        ):
            return
        job.bw_cap = cap
        job.bw_reconfigs += 1
        self._alloc_epoch += 1
        self.stall_job(job, self.policy.memory_reconfig_cycles)
        self.trace.log(
            self.now, TraceEvent.BW_RECONFIG, job.job_id,
            f"cap={'none' if cap is None else f'{cap:.2f}B/cyc'}",
        )

    def preempt(self, job: Job) -> None:
        """Return a running job to the ready queue (block progress is
        retained — checkpointing happens at layer boundaries)."""
        if job.phase is not JobPhase.RUNNING:
            raise SimulationError(f"{job.job_id} is not running")
        self.running.remove(job)
        job.phase = JobPhase.READY
        job.tiles = 0
        job.bw_cap = None
        job.preemptions += 1
        self.ready.append(job)
        self.ready.sort(key=lambda j: (j.task.dispatch_cycle, j.job_id))
        self._alloc_epoch += 1
        self.trace.log(self.now, TraceEvent.PREEMPT, job.job_id)

    def stall_job(self, job: Job, cycles: float) -> None:
        """Stall a job for ``cycles`` (extends any current stall)."""
        if cycles < 0:
            raise SimulationError("stall cycles must be non-negative")
        if cycles == 0:
            return
        base = max(job.stall_until, self.now)
        new_until = self.now + cycles
        if new_until > base:
            job.stall_cycles += new_until - base
            job.stall_until = new_until
            self._alloc_epoch += 1

    # ------------------------------------------------------------------
    # Engine core
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Run to completion and return per-task results."""
        # Cache telemetry is attributed through a per-run frame (not a
        # diff of the process-global counters), so interleaved
        # construct-then-run sequences, nested simulations and
        # mid-run reset_cache_stats() calls can neither double-count
        # nor drive the deltas negative.
        from repro.core.latency import track_cache_deltas

        with track_cache_deltas() as cache_delta:
            while len(self.finished) < len(self.jobs):
                self.events += 1
                if self.events > self._max_events:
                    raise SimulationError(
                        f"exceeded {self._max_events} events; "
                        f"{len(self.finished)}/{len(self.jobs)} tasks done "
                        f"at cycle {self.now:,.0f}"
                    )
                self._dispatch_arrivals()
                self.policy.on_event(self)
                self._validate()
                dt = self._next_event_dt()
                if dt is None:
                    if self._pending:
                        # Idle gap: jump to the next arrival.
                        self.now = self._pending[0][0]
                        continue
                    raise SimulationError(
                        f"deadlock at cycle {self.now:,.0f}: "
                        f"{len(self.ready)} ready, "
                        f"{len(self.running)} running, "
                        f"policy {self.policy.name!r} made no progress"
                    )
                self._advance(max(dt, _MIN_DT))
                self._process_completions()
        makespan = max((j.finished_at or 0.0) for j in self.finished)
        return SimResult(
            policy_name=self.policy.name,
            results=results_from_jobs(self.finished),
            makespan=makespan,
            trace=self.trace,
            events=self.events,
            block_time_recomputes=self.block_time_recomputes,
            block_time_reuses=self.block_time_reuses,
            **cache_delta,
        )

    def _dispatch_arrivals(self) -> None:
        """Move pending tasks whose dispatch time has come to READY."""
        appended = False
        while self._pending and (
            self._pending[0][0] <= self.now + _COMPLETION_EPS
        ):
            _, _, job = heapq.heappop(self._pending)
            job.phase = JobPhase.READY
            self.ready.append(job)
            appended = True
            self.trace.log(
                job.task.dispatch_cycle, TraceEvent.DISPATCH, job.job_id,
                f"net={job.task.network_name} prio={job.task.priority}",
            )
        if appended:
            self.ready.sort(key=lambda j: (j.task.dispatch_cycle, j.job_id))

    def current_block_times(self) -> Mapping[str, float]:
        """Per running job: cycles its current block needs under the
        current allocation (the fluid rate law).

        Served from cache while the allocation epoch is unchanged; the
        returned mapping is a read-only view (mutating it would
        corrupt the cache, so it is a :class:`types.MappingProxyType`).
        """
        if self._times_epoch == self._alloc_epoch:
            self.block_time_reuses += 1
            return self._times_cache
        self.block_time_recomputes += 1
        dram_bw = self.mem.dram_bandwidth
        l2_bw = self.mem.l2_bandwidth
        overlap_f = self.soc.overlap_f
        active = [
            j for j in self.running if not j.is_stalled(self.now)
        ]
        demands: Dict[str, float] = {}
        t_full: Dict[str, float] = {}
        for job in active:
            cost = job.current_block
            # predict() is memoised on the BlockCost itself, so this
            # is a dict lookup for revisited (tiles, bandwidth) points.
            full = cost.predict(job.tiles, dram_bw, l2_bw, overlap_f)
            t_full[job.job_id] = full
            demands[job.job_id] = (
                cost.from_dram_bytes / full if full > 0 else 0.0
            )
        caps = {
            j.job_id: j.bw_cap
            for j in active
            if j.bw_cap is not None
        }
        # Achieved total bandwidth degrades when the co-runners'
        # regulated demand oversubscribes the channel (row-buffer
        # thrash under interleaving); throttled systems that keep the
        # total under the peak retain single-stream efficiency.
        shares: Dict[str, float] = {}
        if demands:
            wants = {
                jid: min(d, caps.get(jid, float("inf")))
                for jid, d in demands.items()
            }
            total_wants = sum(wants.values())
            streams = sum(1 for w in wants.values() if w > 0)
            effective = self.mem.dram.effective_bandwidth(
                streams, oversubscribed=total_wants > dram_bw
            )
            shares = allocate_bandwidth(demands, effective, caps)
        times: Dict[str, float] = {}
        for job in active:
            jid = job.job_id
            from_dram = job.current_block.from_dram_bytes
            share = shares.get(jid, 0.0)
            if from_dram <= 0:
                times[jid] = t_full[jid]
            elif share <= 0:
                times[jid] = float("inf")
            else:
                times[jid] = max(t_full[jid], from_dram / share)
        self._times_cache = MappingProxyType(times)
        self._times_epoch = self._alloc_epoch
        return self._times_cache

    def _next_event_dt(self) -> Optional[float]:
        """Time to the next event, or None if nothing can happen."""
        self._block_T = self.current_block_times()
        candidates: List[float] = []
        if self._pending:
            candidates.append(self._pending[0][0] - self.now)
        for job in self.running:
            if job.is_stalled(self.now):
                candidates.append(job.stall_until - self.now)
            else:
                T = self._block_T[job.job_id]
                if T != float("inf"):
                    candidates.append((1.0 - job.progress) * T)
        candidates = [c for c in candidates if c >= 0]
        if not candidates:
            return None
        return min(candidates)

    def _advance(self, dt: float) -> None:
        """Advance time; accrue progress on unstalled running jobs."""
        for job in self.running:
            if job.is_stalled(self.now):
                continue
            T = self._block_T.get(job.job_id, float("inf"))
            if T == float("inf") or T <= 0:
                continue
            job.progress = min(1.0, job.progress + dt / T)
        old_now = self.now
        self.now += dt
        for job in self.running:
            # A stall expiring re-activates the job: the arbiter's
            # active set changed even though no allocation call ran.
            if old_now < job.stall_until <= self.now:
                self._alloc_epoch += 1
                break

    def _process_completions(self) -> None:
        """Retire completed blocks and finish jobs on their last block."""
        for job in list(self.running):
            if job.progress < 1.0 - _COMPLETION_EPS:
                continue
            job.block_idx += 1
            job.progress = 0.0
            self._alloc_epoch += 1
            self.trace.log(self.now, TraceEvent.BLOCK_DONE, job.job_id,
                           f"block={job.block_idx - 1}")
            if job.block_idx >= job.num_blocks:
                job.phase = JobPhase.FINISHED
                job.finished_at = self.now
                job.tiles = 0
                job.bw_cap = None
                self.running.remove(job)
                self.finished.append(job)
                self.trace.log(self.now, TraceEvent.FINISH, job.job_id)
                self.policy.on_job_finished(self, job)

    def _validate(self) -> None:
        """Invariant checks after every policy invocation."""
        held = sum(j.tiles for j in self.running)
        if held > self.soc.num_tiles:
            raise SimulationError(
                f"policy over-allocated tiles: {held} > {self.soc.num_tiles}"
            )
        for job in self.running:
            if job.tiles <= 0:
                raise SimulationError(
                    f"running job {job.job_id} holds no tiles"
                )


def run_simulation(
    soc: SoCConfig,
    tasks: Sequence[Task],
    policy: Policy,
    mem: Optional[MemoryHierarchy] = None,
    trace: bool = False,
) -> SimResult:
    """Convenience wrapper: reset the policy, build and run a simulator."""
    policy.reset()
    sim = Simulator(soc, tasks, policy, mem=mem, trace=trace)
    return sim.run()
