"""Declarative allocation plans and the controller that applies them.

MoCA's core claim is that a lightweight runtime can repartition
compute and memory at *regulated* decision points.  The original
policy seam was imperative — every policy mutated engine state
directly (``start_job`` / ``set_tiles`` / ``set_bw_cap`` / ``preempt``)
at every event, so every event invalidated the engine's
allocation-epoch cache and reconfiguration costs were charged ad hoc
inside each mutation.  This module inverts that seam:

- :class:`AllocationPlan` is a frozen, diffable value object — *what*
  the policy wants (admissions, per-job tile counts, bandwidth caps,
  preemptions, extra stalls).  It generalises
  :class:`repro.core.runtime.RuntimeDecision` from a single
  application's throttle configuration to a whole-SoC decision.
- :class:`AllocationController` is the engine-side applicator: it
  diffs a plan against live simulator state, applies the differences
  atomically in a canonical order, charges compute/memory
  reconfiguration costs *centrally* (deduplicating same-instant
  re-applications of an already-paid transition), and bumps the
  allocation epoch **once per applied plan** instead of once per
  mutation.
- :class:`DecisionCadence` makes the decision *schedule* explicit and
  configurable: every event (the default, bit-identical to the
  imperative seam), block boundaries only, or a fixed cycle interval.

Policies implement :meth:`repro.sim.policy.Policy.decide` and never
touch engine state; the engine consults the cadence, collects the
plan, and hands it to the controller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

import repro.sanitizer as sanitizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job

#: Recognised decision-cadence modes (see :class:`DecisionCadence`).
CADENCE_MODES = ("every-event", "block-boundary", "interval")


@dataclass(frozen=True)
class DecisionCadence:
    """When the engine consults its policy for a new plan.

    Attributes:
        mode: One of :data:`CADENCE_MODES`:

            - ``"every-event"`` — consult at every simulation event
              (dispatch, block completion, stall expiry).  The
              default; proven bit-identical to the historical
              imperative seam by the golden suite.
            - ``"block-boundary"`` — consult only when a layer block
              retired (or a job finished) since the last decision,
              the paper's "regulated interval": reconfiguration
              happens at checkpoints, and events that cannot change
              the decision inputs reuse the allocation-epoch cache.
            - ``"interval"`` — consult at most once per ``interval``
              cycles (evaluated at event granularity; the engine
              never fabricates events just to make a decision).

        interval: Regulation period in cycles; required (positive)
            for ``"interval"`` mode, meaningless otherwise.

    Whatever the mode, the engine always consults the policy while
    **nothing is running** — a cadence that could sit on a non-empty
    ready queue forever would deadlock admission, not regulate it.
    """

    mode: str = "every-event"
    interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in CADENCE_MODES:
            raise ValueError(
                f"unknown cadence mode {self.mode!r}; "
                f"choose from {', '.join(CADENCE_MODES)}"
            )
        if self.mode == "interval":
            # not (x > 0) also rejects NaN; isfinite rejects inf —
            # either would silently disable decisions while jobs run.
            if (
                self.interval is None
                or not (self.interval > 0)
                or not math.isfinite(self.interval)
            ):
                raise ValueError(
                    "interval cadence needs a positive, finite "
                    "interval (cycles)"
                )
        elif self.interval is not None:
            raise ValueError(
                f"cadence mode {self.mode!r} takes no interval"
            )

    @classmethod
    def parse(cls, text: str) -> "DecisionCadence":
        """Build a cadence from its CLI spelling.

        ``"every-event"`` / ``"block-boundary"`` name the modes
        directly; ``"interval:CYCLES"`` (e.g. ``interval:5e6``)
        carries the period inline.
        """
        text = text.strip()
        if text.startswith("interval:"):
            raw = text[len("interval:"):]
            try:
                return cls(mode="interval", interval=float(raw))
            except ValueError as exc:
                raise ValueError(
                    f"bad interval cadence {text!r}: {exc}"
                ) from None
        if text == "interval":
            raise ValueError(
                "interval cadence needs a period: use interval:CYCLES "
                "(e.g. interval:5e6)"
            )
        return cls(mode=text)

    @property
    def key(self) -> str:
        """Canonical string form (round-trips through :meth:`parse`).

        The interval is rendered with ``repr`` — exact for any float,
        where ``%g`` would corrupt intervals beyond 6 significant
        digits on the way back through :meth:`parse`.
        """
        if self.mode == "interval":
            return f"interval:{self.interval!r}"
        return self.mode


#: The default cadence: decide at every simulation event.
EVERY_EVENT = DecisionCadence()


def _pairs(
    value: Iterable, what: str
) -> Tuple[Tuple, ...]:
    """Normalise a plan field to a tuple of (job_id, value) pairs."""
    out = []
    for item in value:
        pair = item if type(item) is tuple else tuple(item)
        if len(pair) != 2 or not isinstance(pair[0], str):
            raise ValueError(
                f"{what} entries must be (job_id, value) pairs, "
                f"got {item!r}"
            )
        out.append(pair)
    return tuple(out)


def _check_unique(ids: List[str], what: str) -> None:
    if len(set(ids)) != len(ids):
        dup = sorted({i for i in ids if ids.count(i) > 1})
        raise ValueError(f"duplicate job(s) in plan {what}: {dup}")


@dataclass(frozen=True)
class AllocationPlan:
    """One policy decision: the allocation changes to apply, as data.

    Every field is a *partial overlay* — a job absent from a field
    means "no opinion, leave it alone".  All fields are tuples of
    primitives, so plans are hashable, picklable and diffable
    (two plans compare equal iff they request the same changes).
    This generalises :class:`repro.core.runtime.RuntimeDecision` —
    one application's throttle configuration — to the whole SoC:
    admissions, compute repartitions, memory throttles and
    preemptions in a single atomic unit.

    Attributes:
        preemptions: Job ids to return to the ready queue.
        admissions: ``((job_id, tiles), ...)`` READY jobs to start,
            applied in order (order matters: it fixes the engine's
            running-list order and therefore arbiter iteration).
        tiles: ``((job_id, tiles), ...)`` target tile counts for
            running jobs.  Entries equal to the live count are
            no-ops and charge nothing.
        bw_caps: ``((job_id, cap), ...)`` target memory-throttle
            caps (bytes/cycle; ``None`` lifts the throttle).
            Entries equal to the live cap are no-ops.
        stalls: ``((job_id, cycles), ...)`` extra stalls to charge
            (e.g. PREMA's checkpoint/restore overhead on a
            preemptive switch); extension semantics, like
            :meth:`~repro.sim.engine.Simulator.stall_job`.

    A job may be both preempted and re-admitted in one plan (it is
    returned to the ready queue, then started again — the paper's
    checkpoint-and-restart at a different allocation).  A job may be
    admitted and re-tiled in one plan (the retile applies after the
    admission and charges the migration stall, exactly like the
    imperative ``start_job`` + ``set_tiles`` sequence).  A job may
    not appear twice within one field.
    """

    preemptions: Tuple[str, ...] = ()
    admissions: Tuple[Tuple[str, int], ...] = ()
    tiles: Tuple[Tuple[str, int], ...] = ()
    bw_caps: Tuple[Tuple[str, Optional[float]], ...] = ()
    stalls: Tuple[Tuple[str, float], ...] = ()

    # Not a dataclass field (unannotated): equality/repr/pickling of
    # plans is unaffected.  Instances built through :meth:`trusted`
    # shadow it with True.
    _trusted = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "preemptions", tuple(self.preemptions)
        )
        for name in ("admissions", "tiles", "bw_caps", "stalls"):
            object.__setattr__(
                self, name, _pairs(getattr(self, name), name)
            )
        for jid in self.preemptions:
            if not isinstance(jid, str):
                raise ValueError(
                    f"preemptions entries must be job ids, got {jid!r}"
                )
        _check_unique(list(self.preemptions), "preemptions")
        for name in ("admissions", "tiles", "bw_caps", "stalls"):
            _check_unique(
                [jid for jid, _ in getattr(self, name)], name
            )
        preempted = set(self.preemptions)
        retiled = {jid for jid, _ in self.tiles}
        conflict = sorted(preempted & retiled)
        if conflict:
            raise ValueError(
                f"plan both preempts and re-tiles {conflict}; a "
                f"preempted job holds no tiles — re-admit it instead"
            )

    @classmethod
    def trusted(
        cls,
        preemptions: Tuple[str, ...] = (),
        admissions: Tuple[Tuple[str, int], ...] = (),
        tiles: Tuple[Tuple[str, int], ...] = (),
        bw_caps: Tuple[Tuple[str, Optional[float]], ...] = (),
        stalls: Tuple[Tuple[str, float], ...] = (),
    ) -> "AllocationPlan":
        """Build a plan skipping field validation (the hot path).

        Policies construct a plan at every decision point, and the
        public constructor's normalisation — per-pair tuple coercion,
        uniqueness checks, the preempt/retile conflict scan — was
        ~10% of the engine's event loop.  Policies that build their
        plans from live simulator state already satisfy those
        invariants by construction, so the internal seam pays the
        validation cost only at the API boundary (plans arriving from
        outside code go through ``AllocationPlan(...)`` unchanged).

        Callers MUST pass tuples of tuples in the already-normalised
        shape; the only coercion performed is the outer ``tuple()``
        (free for tuple inputs).  The
        :class:`AllocationController` resolves trusted plans with
        direct job-table indexing (an unknown id still fails cleanly)
        and skips the finished-job re-check, which trusted callers
        guarantee by only planning over live ``sim.ready`` /
        ``sim.running`` jobs.
        """
        plan = object.__new__(cls)
        st = object.__setattr__
        st(plan, "preemptions", tuple(preemptions))
        st(plan, "admissions", tuple(admissions))
        st(plan, "tiles", tuple(tiles))
        st(plan, "bw_caps", tuple(bw_caps))
        st(plan, "stalls", tuple(stalls))
        st(plan, "_trusted", True)
        return plan

    @property
    def is_empty(self) -> bool:
        """Whether the plan requests nothing at all."""
        return not (
            self.preemptions or self.admissions or self.tiles
            or self.bw_caps or self.stalls
        )

    def job_ids(self) -> Tuple[str, ...]:
        """Every job the plan references, deduplicated, sorted."""
        ids = set(self.preemptions)
        for field in (self.admissions, self.tiles, self.bw_caps,
                      self.stalls):
            ids.update(jid for jid, _ in field)
        return tuple(sorted(ids))


#: The no-op plan (shared instance; plans are immutable).
EMPTY_PLAN = AllocationPlan()


class AllocationController:
    """Applies :class:`AllocationPlan`\\ s to a simulator atomically.

    The controller is the *only* component that turns plans into
    engine mutations.  For each plan it:

    1. resolves every referenced job id against the live job table —
       unknown or finished jobs raise a clean
       :class:`~repro.sim.engine.SimulationError`;
    2. diffs each entry against live state — entries restating the
       current allocation are no-ops and charge nothing;
    3. applies the differences in a canonical order (preemptions →
       tile shrinks → admissions → remaining retiles → bandwidth
       caps → extra stalls), so shrinks and preemptions free tiles
       before admissions and grows consume them;
    4. charges reconfiguration costs centrally — the compute
       migration stall per applied tile change on a running job, the
       DMA issue-rate update per applied cap change — instead of
       inside each engine primitive.  A transition already paid for
       at the *same simulation instant* (same job, same field, same
       target value) is re-applied free: coincident-event
       re-decisions can no longer double-charge
       ``COMPUTE_RECONFIG_CYCLES``;
    5. bumps the allocation epoch **once** for the whole plan (via
       :meth:`~repro.sim.engine.Simulator.atomic_allocation`) —
       an applied plan invalidates the block-time cache exactly once,
       an empty or all-no-op plan not at all.

    Attributes:
        sim: The simulator this controller mutates.
        plans_applied: Plans that performed at least one mutation.
        plans_noop: Plans that performed none (empty or all no-op).
        actions_applied: Total mutations performed across all plans.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.plans_applied = 0
        self.plans_noop = 0
        self.actions_applied = 0
        # The policy's reconfiguration costs, captured once (they are
        # class-level constants; the per-application attribute chain
        # through sim.policy was measurable on the cap hot path).
        self._compute_stall = sim.policy.compute_reconfig_cycles
        self._memory_stall = sim.policy.memory_reconfig_cycles
        #: (job_id, field) -> {values charged} at the *current*
        #: instant — the same-instant double-charge dedupe journal.
        #: A *set* of values per key, so an A->B->A toggle across
        #: coincident plans re-applies the return to A free as well.
        #: The journal only ever answers same-instant questions, so it
        #: is scoped to one instant (``_paid_instant``) and cleared
        #: wholesale when simulation time advances — cheaper than the
        #: per-key instant tags it replaced.
        self._paid: Dict[Tuple[str, str], set] = {}
        self._paid_instant: Optional[float] = None
        #: Charges made by trusted caps-only plans at the current
        #: instant, as raw ``(job_id, cap)`` pairs.  The journal is
        #: only ever *queried* by a second plan application at the
        #: same instant — rare — so the hot path records into this
        #: flat list (one C-level append of an existing tuple) and
        #: :meth:`_fold_pending` materialises it into ``_paid`` lazily
        #: when a query actually happens.
        self._pending_caps: List[Tuple[str, Optional[float]]] = []

    # ------------------------------------------------------------------

    def _sanitize_trusted(self, plan: AllocationPlan) -> None:
        """Re-run, under ``REPRO_CHECK=1``, exactly the validation a
        trusted plan was allowed to skip: rebuild it through the
        public constructor (field normalisation, uniqueness, the
        preempt/retile conflict scan) and resolve it through the
        validated :meth:`_resolve` (unknown *and* finished jobs).
        A failure is a broken proof obligation at the PR 7 trust
        boundary — a bug in the calling policy, not user input."""
        try:
            AllocationPlan(
                preemptions=plan.preemptions,
                admissions=plan.admissions,
                tiles=plan.tiles,
                bw_caps=plan.bw_caps,
                stalls=plan.stalls,
            )
            self._resolve(plan)
        except Exception as exc:
            from repro.sim.engine import SimulationError

            if not isinstance(exc, (ValueError, SimulationError)):
                raise
            raise sanitizer.SanitizerError(
                f"trusted plan failed the validation it skipped: "
                f"{exc}"
            ) from exc

    def _resolve(self, plan: AllocationPlan) -> Dict[str, "Job"]:
        """Map the plan's job ids to live jobs, or fail cleanly."""
        from repro.sim.engine import SimulationError
        from repro.sim.job import JobPhase

        sim_jobs = self.sim.jobs
        jobs: Dict[str, "Job"] = {}
        for jid in plan.preemptions:
            jobs[jid] = sim_jobs.get(jid)
        for pairs in (plan.admissions, plan.tiles, plan.bw_caps,
                      plan.stalls):
            for jid, _ in pairs:
                jobs[jid] = sim_jobs.get(jid)
        for jid, job in jobs.items():
            if job is None:
                raise SimulationError(
                    f"plan references unknown job {jid!r}"
                )
            if job.phase is JobPhase.FINISHED:
                raise SimulationError(
                    f"plan references finished job {jid!r}"
                )
        return jobs

    def _resolve_trusted(self, plan: AllocationPlan) -> Dict[str, "Job"]:
        """Resolve a trusted plan by direct job-table indexing.

        Trusted plans were built from live simulator state, so ids
        resolve and phases are valid by construction; an unknown id
        (a policy bug) still surfaces as a clean SimulationError
        rather than a KeyError, but the per-id ``.get`` probe and
        finished-phase re-check of :meth:`_resolve` are skipped.
        """
        sim_jobs = self.sim.jobs
        jobs: Dict[str, "Job"] = {}
        try:
            for jid in plan.preemptions:
                jobs[jid] = sim_jobs[jid]
            for pairs in (plan.admissions, plan.tiles, plan.bw_caps,
                          plan.stalls):
                for jid, _ in pairs:
                    jobs[jid] = sim_jobs[jid]
        except KeyError as exc:
            from repro.sim.engine import SimulationError

            raise SimulationError(
                f"trusted plan references unknown job {exc.args[0]!r}"
            ) from None
        return jobs

    def apply(self, plan: Optional[AllocationPlan]) -> int:
        """Diff ``plan`` against live state and apply it atomically.

        Args:
            plan: The policy's decision (``None`` is treated as the
                empty plan).

        Returns:
            The number of mutations actually performed (0 for a
            no-op plan).

        Raises:
            SimulationError: On plans referencing unknown/finished
                jobs or requesting invalid transitions (the engine
                primitives' own validation, surfaced unchanged).
        """
        if plan is None or plan is EMPTY_PLAN:
            self.plans_noop += 1
            return 0
        if plan._trusted and sanitizer.enabled:
            self._sanitize_trusted(plan)
        sim = self.sim
        if (
            plan._trusted
            and not plan.admissions and not plan.tiles
            and not plan.preemptions and not plan.stalls
        ):
            if not plan.bw_caps:
                self.plans_noop += 1
                return 0
            # Trusted caps-only plan — the regulation steady state,
            # and the overwhelmingly common shape on the hot path.
            # Skip the resolve dict and the retile classification
            # entirely: index the live job table inside the loop,
            # inline :meth:`_recap` (the per-cap call frame was the
            # last measurable seam tax vs the imperative primitives),
            # and let each mutation bump the epoch raw (a cap change
            # plus its stall is at most two counter increments —
            # cheaper than a deferred-batch enter/exit pair per plan).
            sim_jobs = sim.jobs
            set_cap = sim.set_bw_cap
            stall = sim.stall_job
            mem_stall = self._memory_stall
            applied = 0
            now = sim.now
            paid = self._paid
            pending = self._pending_caps
            if now != self._paid_instant:
                self._paid_instant = now
                if paid:
                    paid.clear()
                if pending:
                    pending.clear()
            try:
                if paid or pending:
                    # A same-instant predecessor already charged
                    # something: full journal semantics.
                    already_paid = self._already_paid
                    for jid, cap in plan.bw_caps:
                        job = sim_jobs[jid]
                        if set_cap(job, cap, charge=False):
                            if not already_paid((jid, "bw_cap"), cap):
                                stall(job, mem_stall)
                            applied += 1
                else:
                    # First charging plan at this instant (the
                    # steady state): nothing can be already paid —
                    # charge unconditionally and record each charge
                    # as a raw pair for lazy folding.
                    append = pending.append
                    for item in plan.bw_caps:
                        job = sim_jobs[item[0]]
                        if set_cap(job, item[1], charge=False):
                            stall(job, mem_stall)
                            append(item)
                            applied += 1
            except KeyError as exc:
                from repro.sim.engine import SimulationError

                raise SimulationError(
                    f"trusted plan references unknown job "
                    f"{exc.args[0]!r}"
                ) from None
            if applied:
                self.plans_applied += 1
            else:
                self.plans_noop += 1
            self.actions_applied += applied
            return applied
        if plan._trusted:
            jobs = self._resolve_trusted(plan)
        else:
            jobs = self._resolve(plan)
        if (
            not plan.admissions and not plan.tiles
            and not plan.preemptions and not plan.stalls
        ):
            # Caps-only but untrusted: same shape, validated resolve.
            applied = 0
            sim._begin_allocation_batch()
            try:
                for jid, cap in plan.bw_caps:
                    applied += self._recap(jobs[jid], cap)
            finally:
                sim._end_allocation_batch()
            if applied:
                self.plans_applied += 1
            else:
                self.plans_noop += 1
            self.actions_applied += applied
            return applied
        admitted = {jid for jid, _ in plan.admissions}
        # Classify retiles against pre-plan state: entries on jobs
        # being admitted in this same plan necessarily apply *after*
        # their admission; shrinks on already-running jobs apply
        # first so the freed tiles fund admissions and grows.
        shrinks = [
            (jid, tiles) for jid, tiles in plan.tiles
            if jid not in admitted and tiles < jobs[jid].tiles
        ]
        late_retiles = [
            (jid, tiles) for jid, tiles in plan.tiles
            if jid in admitted or tiles >= jobs[jid].tiles
        ]
        applied = 0
        # The direct batch pair, not atomic_allocation(): one
        # contextmanager generator per applied plan is measurable
        # overhead on the engine's hottest path.
        sim._begin_allocation_batch()
        try:
            for jid in plan.preemptions:
                sim.preempt(jobs[jid])
                applied += 1
            for jid, tiles in shrinks:
                applied += self._retile(jobs[jid], tiles)
            for jid, tiles in plan.admissions:
                sim.start_job(jobs[jid], tiles)
                applied += 1
            for jid, tiles in late_retiles:
                applied += self._retile(jobs[jid], tiles)
            for jid, cap in plan.bw_caps:
                applied += self._recap(jobs[jid], cap)
            for jid, cycles in plan.stalls:
                if cycles > 0:
                    sim.stall_job(jobs[jid], cycles)
                    applied += 1
        finally:
            sim._end_allocation_batch()
        if applied:
            self.plans_applied += 1
        else:
            self.plans_noop += 1
        self.actions_applied += applied
        return applied

    # ------------------------------------------------------------------

    def _fold_pending(self) -> None:
        """Materialise the fast path's pending cap charges into the
        ``_paid`` journal (called lazily, before any actual query)."""
        paid = self._paid
        for jid, cap in self._pending_caps:
            key = (jid, "bw_cap")
            values = paid.get(key)
            if values is None:
                paid[key] = {cap}
            else:
                values.add(cap)
        self._pending_caps.clear()

    def _already_paid(self, key: Tuple[str, str], value) -> bool:
        """Record a charged transition in the per-instant journal;
        True when this exact (job, field, value) was already paid
        for at the current instant."""
        now = self.sim.now
        paid = self._paid
        if now != self._paid_instant:
            self._paid_instant = now
            if paid:
                paid.clear()
            if self._pending_caps:
                self._pending_caps.clear()
            paid[key] = {value}
            return False
        if self._pending_caps:
            self._fold_pending()
        values = paid.get(key)
        if values is None:
            paid[key] = {value}
            return False
        if value in values:
            return True
        values.add(value)
        return False

    def _retile(self, job: "Job", tiles: int) -> int:
        """Apply one tile-count target; charge the migration stall
        centrally unless the identical transition was already paid
        at this instant.  The engine primitive is the single source
        of no-op detection (it returns whether it mutated)."""
        sim = self.sim
        if not sim.set_tiles(job, tiles, charge=False):
            return 0
        if not self._already_paid((job.job_id, "tiles"), tiles):
            sim.stall_job(job, self._compute_stall)
        return 1

    def _recap(self, job: "Job", cap: Optional[float]) -> int:
        """Apply one bandwidth-cap target; charge the DMA issue-rate
        update centrally, with the same same-instant dedupe."""
        sim = self.sim
        if not sim.set_bw_cap(job, cap, charge=False):
            return 0
        if not self._already_paid((job.job_id, "bw_cap"), cap):
            sim.stall_job(job, self._memory_stall)
        return 1
