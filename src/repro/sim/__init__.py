"""Fluid discrete-event multi-tenant simulator and workload generation."""

from repro.sim.engine import SimResult, SimulationError, Simulator, run_simulation
from repro.sim.job import Job, JobPhase, Task, TaskResult
from repro.sim.policy import (
    COMPUTE_RECONFIG_CYCLES,
    MEMORY_RECONFIG_CYCLES,
    Policy,
)
from repro.sim.qos import QosLevel, QosModel
from repro.sim.trace import Trace, TraceEvent
from repro.sim.workload import (
    PRIORITY_GROUPS,
    PRIORITY_WEIGHTS,
    WorkloadConfig,
    WorkloadGenerator,
    priority_group,
)

__all__ = [
    "COMPUTE_RECONFIG_CYCLES",
    "MEMORY_RECONFIG_CYCLES",
    "Job",
    "JobPhase",
    "PRIORITY_GROUPS",
    "PRIORITY_WEIGHTS",
    "Policy",
    "QosLevel",
    "QosModel",
    "SimResult",
    "SimulationError",
    "Simulator",
    "Task",
    "TaskResult",
    "Trace",
    "TraceEvent",
    "WorkloadConfig",
    "WorkloadGenerator",
    "priority_group",
    "run_simulation",
]
