"""Scenario serialization: save and reload generated task streams.

The artifact appendix lets users change ``SEED`` / ``total_workloads``
and rerun; this module makes scenarios durable artifacts instead —
a task stream can be written to JSON, shipped, and reloaded bit-exact,
so two systems are guaranteed to face the *same* queries (the paper's
"for fair comparison ... on the same hardware configuration" applied to
workloads).
"""

from __future__ import annotations

import json
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.core.latency import build_network_cost
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model
from repro.sim.job import Task

FORMAT_VERSION = 1


def dump_tasks(tasks: Sequence[Task]) -> str:
    """Serialize a task stream to JSON text.

    Only workload-defining fields are stored; per-block costs are
    re-derived from the model zoo at load time (they are functions of
    the SoC configuration, not part of the scenario).
    """
    payload = {
        "version": FORMAT_VERSION,
        "tasks": [
            {
                "task_id": t.task_id,
                "network": t.network_name,
                "dispatch_cycle": t.dispatch_cycle,
                "priority": t.priority,
                "qos_target_cycles": t.qos_target_cycles,
            }
            for t in tasks
        ],
    }
    return json.dumps(payload, indent=2)


def _parse_payload(text: str) -> dict:
    """Parse and version-check scenario JSON.

    Raises:
        ValueError: On version mismatch or malformed payloads.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a scenario file: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("not a scenario file: expected a JSON object")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported scenario version {payload.get('version')!r}"
        )
    if not isinstance(payload.get("tasks"), list):
        raise ValueError("not a scenario file: missing 'tasks' list")
    return payload


@lru_cache(maxsize=8)
def load_dispatch_cycles(text: str) -> Tuple[float, ...]:
    """Dispatch cycles of a saved scenario, sorted ascending.

    The workload generator's ``"trace"`` arrival process replays these
    (:class:`repro.sim.workload.WorkloadConfig` ``trace_text``) —
    only the arrival pattern is reused; models, priorities and QoS
    targets come from the consuming scenario.  Cached per trace text:
    spec validation and every (policy, seed) cell re-read the same
    immutable string.
    """
    payload = _parse_payload(text)
    try:
        return tuple(sorted(
            float(entry["dispatch_cycle"]) for entry in payload["tasks"]
        ))
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"not a scenario file: bad task entry ({exc})"
        ) from exc


def load_tasks(
    text: str,
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
) -> List[Task]:
    """Rebuild a task stream from :func:`dump_tasks` output.

    Args:
        text: JSON produced by :func:`dump_tasks`.
        soc: SoC configuration to derive block costs and isolated
            latencies against.
        mem: Memory hierarchy; built from ``soc`` when omitted.

    Raises:
        ValueError: On version mismatch or malformed payloads.
    """
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    payload = _parse_payload(text)
    tasks: List[Task] = []
    for entry in payload["tasks"]:
        network = build_model(entry["network"])
        cost = build_network_cost(network, soc, mem)
        isolated = cost.total_prediction(
            soc.num_tiles, mem.dram_bandwidth, mem.l2_bandwidth,
            soc.overlap_f,
        )
        tasks.append(
            Task(
                task_id=entry["task_id"],
                network_name=entry["network"],
                cost=cost,
                dispatch_cycle=float(entry["dispatch_cycle"]),
                priority=int(entry["priority"]),
                qos_target_cycles=float(entry["qos_target_cycles"]),
                isolated_cycles=isolated,
            )
        )
    tasks.sort(key=lambda t: (t.dispatch_cycle, t.task_id))
    return tasks
