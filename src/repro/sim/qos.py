"""QoS / SLA target construction (Section IV-B).

The paper sets a baseline QoS per model "based on [Bianco et al.]
since each of our accelerator tiles is close to an edge device", then
scales it: **QoS-H** (hard) is 0.8x the baseline target, **QoS-M**
(medium) the baseline, **QoS-L** (light) 1.2x.

We construct the baseline the same way: a model's target is its
isolated latency on an edge-class slice of the SoC (the two-tile slot
the static-partition baseline grants) times a deployment slack factor
that accommodates queueing, then scaled per level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SoCConfig
from repro.core.latency import NetworkCost, build_network_cost
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.graph import Network


class QosLevel(enum.Enum):
    """The three evaluated QoS tightness levels."""

    HARD = "QoS-H"
    MEDIUM = "QoS-M"
    LIGHT = "QoS-L"

    @property
    def multiplier(self) -> float:
        """Latency-target scaling relative to the baseline QoS."""
        return _QOS_MULTIPLIERS[self]


_QOS_MULTIPLIERS: Dict[QosLevel, float] = {
    QosLevel.HARD: 0.8,
    QosLevel.MEDIUM: 1.0,
    QosLevel.LIGHT: 1.2,
}


@dataclass(frozen=True)
class QosModel:
    """Turns isolated latencies into per-task SLA targets.

    Attributes:
        soc: SoC configuration.
        reference_tiles: Tile count of the edge-class reference slice.
        slack_factor: Deployment slack on top of the reference
            latency (covers queueing and mild interference).
    """

    soc: SoCConfig
    reference_tiles: int = 2
    slack_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.reference_tiles <= 0:
            raise ValueError("reference_tiles must be positive")
        if self.slack_factor <= 0:
            raise ValueError("slack_factor must be positive")

    def isolated_latency(
        self,
        network: Network,
        mem: Optional[MemoryHierarchy] = None,
        num_tiles: Optional[int] = None,
    ) -> float:
        """Latency of ``network`` running alone on ``num_tiles`` tiles
        (defaults to the whole SoC — the metrics' ``C_single``)."""
        if mem is None:
            mem = MemoryHierarchy.from_soc(self.soc)
        tiles = self.soc.num_tiles if num_tiles is None else num_tiles
        cost = build_network_cost(network, self.soc, mem)
        return cost.total_prediction(
            tiles, mem.dram_bandwidth, mem.l2_bandwidth, self.soc.overlap_f
        )

    def isolated_latency_from_cost(
        self,
        cost: NetworkCost,
        mem: MemoryHierarchy,
        num_tiles: Optional[int] = None,
    ) -> float:
        """Same as :meth:`isolated_latency` from a prebuilt cost."""
        tiles = self.soc.num_tiles if num_tiles is None else num_tiles
        return cost.total_prediction(
            tiles, mem.dram_bandwidth, mem.l2_bandwidth, self.soc.overlap_f
        )

    def baseline_target(
        self, network: Network, mem: Optional[MemoryHierarchy] = None
    ) -> float:
        """The model's baseline (QoS-M) SLA target in cycles."""
        return self.slack_factor * self.isolated_latency(
            network, mem, num_tiles=self.reference_tiles
        )

    def target(
        self,
        network: Network,
        level: QosLevel,
        mem: Optional[MemoryHierarchy] = None,
    ) -> float:
        """SLA target for a network at a QoS level, in cycles."""
        return self.baseline_target(network, mem) * level.multiplier
