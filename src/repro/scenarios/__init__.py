"""Scenario registry and declarative workload specifications.

The experiment layer's scenario *supply*: frozen, picklable
:class:`ScenarioSpec` work units plus a named registry the executor
can shard.  Importing this package registers the built-in entries —
the paper's nine ``ref-*`` reference scenarios and the stochastic
bursty / diurnal / mixed-traffic ones (:mod:`repro.scenarios.builtin`).

Typical use::

    from repro.experiments.runner import run_matrix
    matrix = run_matrix(["bursty-mixed", "diurnal-light"], workers=2)

or from the shell::

    python -m repro.cli sweep --scenarios bursty-mixed,diurnal-light --workers 2
"""

from repro.scenarios.builtin import REFERENCE_SCENARIOS, reference_matrix_specs
from repro.scenarios.registry import (
    ScenarioLike,
    format_scenario_table,
    get_scenario,
    register_scenario,
    resolve_scenario,
    resolve_scenarios,
    sample_model_mix,
    scenario_names,
    temporary_scenario,
    unregister_scenario,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "REFERENCE_SCENARIOS",
    "ScenarioLike",
    "ScenarioSpec",
    "format_scenario_table",
    "get_scenario",
    "reference_matrix_specs",
    "register_scenario",
    "resolve_scenario",
    "resolve_scenarios",
    "sample_model_mix",
    "scenario_names",
    "temporary_scenario",
    "unregister_scenario",
]
