"""Built-in scenario registry entries.

Two families:

- ``ref-*`` — the paper's nine reference scenarios (Table III workload
  sets A/B/C crossed with QoS-H/M/L, uniform arrivals).  These carry
  exactly the defaults the hardcoded fig5-8 matrix used, so running
  them through the registry reproduces the pre-registry metrics
  bit-for-bit (the golden regression test pins this).
- Stochastic scenarios exercising the generator's new arrival
  processes and mix samplers — bursty flash crowds, diurnal waves, and
  weighted / randomly sampled model mixes.

Registered on ``import repro.scenarios``; see ROADMAP.md ("Scenario
registry") for how to add one.
"""

from __future__ import annotations

from typing import Tuple

from repro.scenarios.registry import register_scenario, sample_model_mix
from repro.scenarios.spec import ScenarioSpec
from repro.sim.qos import QosLevel

_QOS_SLUGS = (
    (QosLevel.HARD, "qos-h"),
    (QosLevel.MEDIUM, "qos-m"),
    (QosLevel.LIGHT, "qos-l"),
)

#: The nine reference scenario names, in the fig5-8 presentation order
#: (set A, B, C; QoS H, M, L within each set).
REFERENCE_SCENARIOS: Tuple[str, ...] = tuple(
    f"ref-{set_name.lower()}-{slug}"
    for set_name in ("A", "B", "C")
    for _, slug in _QOS_SLUGS
)


def reference_matrix_specs():
    """Fresh, unnamed copies of the nine reference scenarios.

    The immutable source behind both the ``ref-*`` registry entries
    and :func:`repro.experiments.runner.standard_matrix` — fig5-8 and
    the golden regression stay correct even if someone mutates the
    registry's ``ref-*`` entries.
    """
    return [
        ScenarioSpec(workload_set=set_name, qos_level=level)
        for set_name in ("A", "B", "C")
        for level, _ in _QOS_SLUGS
    ]

#: Production-shaped priority override: most mass in the p-Mid band
#: with a real latency-critical tail (vs the default free-tier skew).
_PROD_PRIORITIES: Tuple[float, ...] = (
    4.0, 4.0, 5.0,
    10.0, 12.0, 12.0, 10.0, 8.0, 6.0,
    5.0, 3.0, 2.0,
)


def _register_builtins() -> None:
    for name, spec in zip(REFERENCE_SCENARIOS, reference_matrix_specs()):
        register_scenario(name, spec)

    # Flash-crowd arrivals over the mixed set: six bursts, tight spread.
    register_scenario(
        "bursty-mixed",
        ScenarioSpec(
            workload_set="C",
            qos_level=QosLevel.MEDIUM,
            arrival="bursty",
            burst_count=6,
            burst_spread=0.03,
            load_factor=0.8,
        ),
    )
    # Retry-storm shape: few violent bursts of heavy models under
    # tight SLAs.
    register_scenario(
        "bursty-rush",
        ScenarioSpec(
            workload_set="B",
            qos_level=QosLevel.HARD,
            arrival="bursty",
            burst_count=3,
            burst_spread=0.02,
        ),
    )
    # Day/night wave over the light set.
    register_scenario(
        "diurnal-light",
        ScenarioSpec(
            workload_set="A",
            qos_level=QosLevel.MEDIUM,
            arrival="diurnal",
            diurnal_waves=2.0,
            diurnal_depth=0.9,
        ),
    )
    # Production traffic: gentle multi-peak wave, mid-heavy priorities.
    register_scenario(
        "diurnal-prod",
        ScenarioSpec(
            workload_set="C",
            qos_level=QosLevel.LIGHT,
            arrival="diurnal",
            diurnal_waves=3.0,
            diurnal_depth=0.6,
            priority_weights=_PROD_PRIORITIES,
        ),
    )
    # Hand-weighted mix: keyword-spotting dominated edge traffic with a
    # heavy-model tail.
    register_scenario(
        "skewed-mix",
        ScenarioSpec(
            workload_set="C",
            qos_level=QosLevel.MEDIUM,
            model_mix=(
                ("kws", 0.5), ("squeezenet", 0.3), ("resnet50", 0.2)
            ),
        ),
    )
    # Seeded random mix: the sampler is deterministic, so this entry is
    # the same scenario on every import.
    register_scenario(
        "random-mix",
        ScenarioSpec(
            workload_set="C",
            qos_level=QosLevel.MEDIUM,
            model_mix=sample_model_mix(seed=2023, set_name="C", size=3),
        ),
    )


_register_builtins()
