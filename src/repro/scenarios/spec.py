"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes one evaluation scenario — which
models, how many queries, the arrival process, priority distribution
and QoS tightness — as a frozen dataclass of primitives, so specs are
hashable, picklable (the parallel executor ships them to worker
processes verbatim) and trivially serialisable.

The spec is purely declarative: :func:`repro.experiments.runner.run_cell`
turns it into a :class:`~repro.sim.workload.WorkloadConfig` per seed
and runs the simulation.  Named specs live in the scenario registry
(:mod:`repro.scenarios.registry`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.models.graph import Network
from repro.sim.plan import DecisionCadence
from repro.sim.qos import QosLevel
from repro.sim.workload import WorkloadConfig, normalize_model_mix


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation scenario (a cell of the evaluation matrix).

    Attributes:
        workload_set: Table III set name ('A', 'B' or 'C') supplying
            the candidate model pool (ignored when ``model_mix`` names
            an explicit pool).
        qos_level: SLA tightness.
        num_tasks: Queries per run (paper: 200-500).
        seeds: RNG seeds to aggregate over.
        load_factor: Offered load relative to slot capacity.
        slack_factor: QoS baseline slack (see :class:`QosModel`).
        name: Registry name; set by
            :func:`repro.scenarios.register_scenario` and used as the
            matrix label when present.
        arrival: Arrival process (see
            :data:`repro.sim.workload.ARRIVAL_PROCESSES`).
        arrival_window: Explicit dispatch window in cycles (``None``
            sizes it from ``load_factor``).
        burst_count / burst_spread: ``"bursty"`` process knobs.
        diurnal_waves / diurnal_depth: ``"diurnal"`` process knobs.
        trace_text: Scenario JSON replayed by the ``"trace"`` process.
        model_mix: Weighted ``((model, weight), ...)`` pool override.
        priority_weights: 12-entry priority table override.
        decision_cadence: When the engine consults its policy for an
            allocation plan (see
            :class:`repro.sim.plan.DecisionCadence`): ``"every-event"``
            (default — the historical behaviour, bit-identical to the
            imperative seam), ``"block-boundary"`` or ``"interval"``.
            A sweep axis: the same scenario can be evaluated under
            different regulation regimes.
        decision_interval: Regulation period in cycles; required
            (positive) when ``decision_cadence == "interval"``.
    """

    workload_set: str = "C"
    qos_level: QosLevel = QosLevel.MEDIUM
    num_tasks: int = 250
    seeds: Tuple[int, ...] = (1, 2, 3)
    load_factor: float = 0.7
    slack_factor: float = 2.0
    name: Optional[str] = None
    arrival: str = "uniform"
    arrival_window: Optional[float] = None
    burst_count: int = 8
    burst_spread: float = 0.04
    diurnal_waves: float = 2.0
    diurnal_depth: float = 0.8
    trace_text: Optional[str] = None
    model_mix: Optional[Tuple[Tuple[str, float], ...]] = None
    priority_weights: Optional[Tuple[float, ...]] = None
    decision_cadence: str = "every-event"
    decision_interval: Optional[float] = None

    def __post_init__(self) -> None:
        # Fail fast on bad cadence knobs (unknown mode, missing or
        # spurious interval) — DecisionCadence owns the validation.
        self.cadence()
        if not self.seeds:
            raise ValueError("need at least one seed")
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(
            self, "model_mix", normalize_model_mix(self.model_mix)
        )
        if self.priority_weights is not None:
            object.__setattr__(
                self, "priority_weights",
                tuple(float(w) for w in self.priority_weights),
            )
        # Fail fast on bad workload knobs: building the per-seed config
        # runs WorkloadConfig's full validation.
        self.workload_config(self.seeds[0])
        if self.model_mix is not None:
            from repro.models.zoo import MODEL_BUILDERS

            unknown = [
                name for name, _ in self.model_mix
                if name not in MODEL_BUILDERS
            ]
            if unknown:
                raise ValueError(
                    f"model_mix names {unknown} not in the model zoo "
                    f"{sorted(MODEL_BUILDERS)}"
                )
        if self.trace_text is not None:
            from repro.sim.tracefile import load_dispatch_cycles

            if not load_dispatch_cycles(self.trace_text):
                raise ValueError(
                    "trace_text holds no dispatch cycles to replay"
                )

    @property
    def label(self) -> str:
        """Matrix label: the registry name when registered, else the
        classic ``Workload-<set>/<QoS>`` cell label."""
        if self.name:
            return self.name
        return f"Workload-{self.workload_set}/{self.qos_level.value}"

    def cadence(self) -> DecisionCadence:
        """The scenario's decision cadence as an engine value object."""
        if self.decision_interval is not None:
            return DecisionCadence(
                mode=self.decision_cadence,
                interval=float(self.decision_interval),
            )
        return DecisionCadence(mode=self.decision_cadence)

    def workload_config(self, seed: int) -> WorkloadConfig:
        """The generator configuration of this scenario for one seed.

        Forwards every field the two dataclasses share by name, so a
        knob added to both can never be silently dropped here.
        """
        shared = {f.name for f in dataclasses.fields(WorkloadConfig)} & {
            f.name for f in dataclasses.fields(ScenarioSpec)
        }
        return WorkloadConfig(
            seed=seed,
            **{
                name: getattr(self, name) for name in sorted(shared)
            },
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form of the spec (see :meth:`from_dict`).

        Every field is a primitive, a list of primitives, or the QoS
        level's string value — the serialisation seam the sweep-export
        files and the cell manifest use.  The decision-cadence fields
        are omitted at their defaults, so specs predating the cadence
        axis serialise byte-identically (the sweep-export goldens pin
        exactly those bytes) and old exports round-trip through
        :meth:`from_dict` unchanged.
        """
        out = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "decision_cadence" and value == "every-event":
                continue
            if f.name == "decision_interval" and value is None:
                continue
            if isinstance(value, QosLevel):
                value = value.value
            elif isinstance(value, tuple):
                value = [
                    list(item) if isinstance(item, tuple) else item
                    for item in value
                ]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Round-trips exactly: ``ScenarioSpec.from_dict(s.to_dict()) ==
        s`` (list/tuple coercion is handled here and by the
        constructor's own normalisation).
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: {unknown}")
        kwargs = dict(payload)
        if "qos_level" in kwargs:
            kwargs["qos_level"] = QosLevel(kwargs["qos_level"])
        for name in ("seeds", "priority_weights"):
            if kwargs.get(name) is not None:
                kwargs[name] = tuple(kwargs[name])
        if kwargs.get("model_mix") is not None:
            kwargs["model_mix"] = tuple(
                (name, weight) for name, weight in kwargs["model_mix"]
            )
        return cls(**kwargs)

    def networks(self) -> List[Network]:
        """The scenario's candidate model pool.

        An explicit ``model_mix`` defines the pool (any zoo model);
        otherwise the Table III ``workload_set`` does.
        """
        from repro.models.zoo import build_model, workload_set

        if self.model_mix is not None:
            return [build_model(name) for name, _ in self.model_mix]
        return workload_set(self.workload_set)
