"""The named scenario registry.

Scenarios are registered under short kebab-case names so experiment
entry points can address them declaratively — ``run_matrix(["ref-a-qos-h",
"bursty-mixed"])``, ``python -m repro.cli sweep --scenarios
bursty-mixed,diurnal-light`` — and the parallel executor can shard
their (scenario, policy, seed) cells without callers hand-building
specs.  Built-in entries are registered on package import
(:mod:`repro.scenarios.builtin`); projects add their own with
:func:`register_scenario`.
"""

from __future__ import annotations

import random
import re
from contextlib import contextmanager
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.models.zoo import WORKLOAD_SETS
from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

#: What callers may pass wherever a scenario is expected.
ScenarioLike = Union[str, ScenarioSpec]


def register_scenario(
    name: str, spec: ScenarioSpec, overwrite: bool = False
) -> ScenarioSpec:
    """Register ``spec`` under ``name`` (stamped onto the spec).

    Args:
        name: Kebab-case registry name.
        spec: The scenario; its ``name`` field is replaced by ``name``.
        overwrite: Allow replacing an existing entry.

    Returns:
        The registered (renamed) spec.

    Raises:
        ValueError: On malformed names or un-flagged collisions.
    """
    if not _NAME_RE.match(name):
        raise ValueError(
            f"bad scenario name {name!r}: use lowercase kebab-case "
            f"(letters, digits, '.', '_', '-')"
        )
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"scenario {name!r} already registered; "
            f"pass overwrite=True to replace it"
        )
    named = replace(spec, name=name)
    _REGISTRY[name] = named
    return named


def unregister_scenario(name: str) -> None:
    """Remove a registry entry (primarily for tests)."""
    _REGISTRY.pop(name, None)


@contextmanager
def temporary_scenario(
    name: str, spec: ScenarioSpec, overwrite: bool = False
) -> Iterator[ScenarioSpec]:
    """Register ``spec`` for the duration of a ``with`` block.

    The registry is module-global state, so an ad-hoc
    :func:`register_scenario` in a test or example leaks into
    everything that runs later.  This scopes the mutation: on exit
    the entry is removed, and if ``overwrite=True`` replaced an
    existing entry, the previous spec is restored — the registry is
    returned to exactly its prior state even when the body raises.

    Yields:
        The registered (renamed) spec.
    """
    previous = _REGISTRY.get(name)
    named = register_scenario(name, spec, overwrite=overwrite)
    try:
        yield named
    finally:
        if previous is not None:
            _REGISTRY[name] = previous
        else:
            _REGISTRY.pop(name, None)


def scenario_names() -> List[str]:
    """All registered names, in registration order."""
    return list(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario.

    Raises:
        KeyError: Unknown name (the message lists what exists).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(scenario_names()) or '(none)'}"
        ) from None


def resolve_scenario(item: ScenarioLike) -> ScenarioSpec:
    """Coerce a registry name or a spec to a :class:`ScenarioSpec`."""
    if isinstance(item, ScenarioSpec):
        return item
    if isinstance(item, str):
        return get_scenario(item)
    raise TypeError(
        f"expected a scenario name or ScenarioSpec, got {type(item).__name__}"
    )


def resolve_scenarios(
    items: Union[ScenarioLike, Iterable[ScenarioLike]],
) -> List[ScenarioSpec]:
    """Resolve a mixed sequence of names and specs.

    A bare string or spec is treated as a one-element sequence (so
    ``run_matrix("bursty-mixed")`` does not iterate the name's
    characters).
    """
    if isinstance(items, (str, ScenarioSpec)):
        items = [items]
    return [resolve_scenario(item) for item in items]


def sample_model_mix(
    seed: int,
    set_name: str = "C",
    size: int = 3,
) -> Tuple[Tuple[str, float], ...]:
    """Seeded random model mix over a Table III set.

    Draws ``size`` distinct models from the set and assigns them
    normalized random weights bounded away from zero — the stochastic
    counterpart of the hand-written mixes, fully determined by
    ``seed``.

    Returns:
        ``((model_name, weight), ...)`` with weights summing to 1.0.
    """
    key = set_name.upper()
    if key not in WORKLOAD_SETS:
        raise KeyError(f"unknown workload set {set_name!r}; use A, B or C")
    pool = list(WORKLOAD_SETS[key])
    if not 1 <= size <= len(pool):
        raise ValueError(
            f"size must be within 1..{len(pool)} for set {key}"
        )
    rng = random.Random(seed)
    names = rng.sample(pool, k=size)
    raw = [rng.uniform(0.25, 1.0) for _ in names]
    total = sum(raw)
    return tuple(
        (name, weight / total) for name, weight in zip(names, raw)
    )


def format_scenario_table(names: Sequence[str] = ()) -> str:
    """The registry (or a subset) as an aligned text table."""
    rows = [
        f"{'name':<16s}{'set':>4s}{'qos':>7s}{'arrival':>9s}"
        f"{'tasks':>7s}{'seeds':>7s}{'load':>6s}  mix"
    ]
    for name in names or scenario_names():
        spec = get_scenario(name)
        mix = (
            ",".join(f"{m}:{w:.2f}" for m, w in spec.model_mix)
            if spec.model_mix else "-"
        )
        rows.append(
            f"{name:<16s}{spec.workload_set:>4s}"
            f"{spec.qos_level.value.replace('QoS-', ''):>7s}"
            f"{spec.arrival:>9s}{spec.num_tasks:>7d}"
            f"{len(spec.seeds):>7d}{spec.load_factor:>6.2f}  {mix}"
        )
    return "\n".join(rows)
