"""SoC configuration for the MoCA reproduction.

This module encodes Table II of the paper (the SoC configuration used in
the evaluation) plus the unit conventions the rest of the library relies
on.  All simulator time is measured in **cycles** of the 1 GHz SoC clock,
all data volumes in **bytes**, and all bandwidths in **bytes per cycle**.

Table II of the paper:

====================================  =========
Parameter                             Value
====================================  =========
Systolic array dimension (per tile)   16x16
Scratchpad size (per tile)            128 KiB
Accumulator size (per tile)           64 KiB
# of accelerator tiles                8
Shared L2 size                        2 MB
Shared L2 banks                       8
DRAM bandwidth                        16 GB/s
Frequency                             1 GHz
====================================  =========
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Bytes used to store a single activation / weight element.  Gemmini's
#: default datatype is int8.
ELEM_BYTES = 1

#: Bytes used to store a partial sum in the accumulator (int32).
ACC_BYTES = 4


class ConfigError(ValueError):
    """Raised when an SoC configuration is internally inconsistent."""


@dataclass(frozen=True)
class TileConfig:
    """Configuration of a single Gemmini-style accelerator tile.

    Attributes:
        array_rows: Rows of the weight-stationary systolic array.
        array_cols: Columns of the weight-stationary systolic array.
        scratchpad_bytes: Private scratchpad capacity (weights + input
            activations + output activations).
        accumulator_bytes: Private accumulator SRAM capacity.
        compute_efficiency: Fraction of peak MACs/cycle that dense layers
            sustain once pipeline fill/drain and tiling edge effects are
            accounted for.  Gemmini sustains high utilization on large
            GEMMs; edge tiles lower it.
    """

    array_rows: int = 16
    array_cols: int = 16
    scratchpad_bytes: int = 128 * KIB
    accumulator_bytes: int = 64 * KIB
    compute_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ConfigError("systolic array dimensions must be positive")
        if self.scratchpad_bytes <= 0 or self.accumulator_bytes <= 0:
            raise ConfigError("tile SRAM capacities must be positive")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ConfigError("compute_efficiency must be in (0, 1]")

    @property
    def peak_macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle (one per PE)."""
        return self.array_rows * self.array_cols

    @property
    def effective_macs_per_cycle(self) -> float:
        """Sustained MACs per cycle after the efficiency derate."""
        return self.peak_macs_per_cycle * self.compute_efficiency


@dataclass(frozen=True)
class SoCConfig:
    """Full SoC configuration (Table II).

    Attributes:
        tile: Per-tile configuration.
        num_tiles: Number of homogeneous accelerator tiles on the SoC.
        l2_bytes: Shared L2 (system-level cache) capacity.
        l2_banks: Number of L2 banks; each bank supplies
            ``l2_bytes_per_bank_cycle`` bytes per cycle of peak bandwidth.
        l2_bytes_per_bank_cycle: Peak per-bank L2 bandwidth.
        dram_bandwidth_bytes_per_cycle: Peak DRAM bandwidth.  16 GB/s at
            1 GHz is 16 bytes per cycle (the paper's GB are decimal in
            DRAM-vendor convention; at this granularity the distinction
            is immaterial and we use 16 B/cycle).
        frequency_hz: SoC clock frequency, used only to convert cycles to
            wall-clock time for reporting.
        overlap_f: Algorithm 1's compute/memory overlap factor.  0 means
            compute and memory fully overlap (latency = max of the two);
            1 means fully serialized (latency = sum).  The paper tunes
            this per SoC; :mod:`repro.core.tuning` provides the utility.
        multi_tile_alpha: Parallel-scaling exponent when k tiles
            cooperate on one layer: speedup = k**alpha.  Splitting a
            layer across tiles replicates input fetches and loses
            synchronization slack, so scaling is sublinear — the reason
            time-multiplexing the whole array (Prema) underutilizes it.
    """

    tile: TileConfig = dataclasses.field(default_factory=TileConfig)
    num_tiles: int = 8
    l2_bytes: int = 2 * MIB
    l2_banks: int = 8
    l2_bytes_per_bank_cycle: int = 16
    dram_bandwidth_bytes_per_cycle: float = 16.0
    frequency_hz: float = 1e9
    overlap_f: float = 0.15
    multi_tile_alpha: float = 0.7

    def __post_init__(self) -> None:
        if self.num_tiles <= 0:
            raise ConfigError("num_tiles must be positive")
        if self.l2_bytes <= 0 or self.l2_banks <= 0:
            raise ConfigError("L2 capacity and banks must be positive")
        if self.l2_bytes_per_bank_cycle <= 0:
            raise ConfigError("L2 bank bandwidth must be positive")
        if self.dram_bandwidth_bytes_per_cycle <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if not 0.0 <= self.overlap_f <= 1.0:
            raise ConfigError("overlap_f must be in [0, 1]")
        if not 0.0 < self.multi_tile_alpha <= 1.0:
            raise ConfigError("multi_tile_alpha must be in (0, 1]")

    @property
    def l2_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate peak L2 bandwidth across all banks."""
        return float(self.l2_banks * self.l2_bytes_per_bank_cycle)

    @property
    def total_peak_macs_per_cycle(self) -> int:
        """Peak MACs per cycle across every tile on the SoC."""
        return self.num_tiles * self.tile.peak_macs_per_cycle

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the SoC clock."""
        return cycles / self.frequency_hz

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds at the SoC clock."""
        return self.cycles_to_seconds(cycles) * 1e3

    def with_overlap(self, overlap_f: float) -> "SoCConfig":
        """Return a copy of this configuration with a new ``overlap_f``."""
        return dataclasses.replace(self, overlap_f=overlap_f)

    def with_tiles(self, num_tiles: int) -> "SoCConfig":
        """Return a copy of this configuration with a new tile count."""
        return dataclasses.replace(self, num_tiles=num_tiles)


#: The paper's evaluation SoC (Table II), used as the default everywhere.
DEFAULT_SOC = SoCConfig()
