"""The MoCA runtime's scoreboard.

Section IV-A: *"MoCA uses a lightweight software look-up table for the
scoreboard that is used to manage the bandwidth usage of each
application"*.  Each entry tracks an application's current DRAM
bandwidth rate (``BW_rate``, bytes/cycle) and its dynamic priority
score; Algorithm 2 reads co-runners' entries when deciding how to
shed overflow bandwidth and writes its own entry back
(``UpdateScoreboard``) after each layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(slots=True)
class ScoreboardEntry:
    """One application's published state.

    Attributes:
        bw_rate: Currently allocated DRAM bandwidth rate, bytes/cycle.
        demand: Unthrottled DRAM bandwidth demand, bytes/cycle.
        score: Dynamic priority score (Alg. 2 line 6).
    """

    bw_rate: float = 0.0
    demand: float = 0.0
    score: float = 0.0


class Scoreboard:
    """Lookup table of per-application bandwidth usage and scores."""

    def __init__(self) -> None:
        self._entries: Dict[str, ScoreboardEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._entries

    def update(
        self, app_id: str, bw_rate: float, score: float,
        demand: Optional[float] = None,
    ) -> None:
        """Publish an application's bandwidth state and dynamic score."""
        if bw_rate < 0:
            raise ValueError("bw_rate must be non-negative")
        if demand is None:
            demand = bw_rate
        if demand < 0:
            raise ValueError("demand must be non-negative")
        self._entries[app_id] = ScoreboardEntry(
            bw_rate=bw_rate, demand=demand, score=score
        )

    def remove(self, app_id: str) -> None:
        """Drop an application (it finished or was preempted)."""
        self._entries.pop(app_id, None)

    def entry(self, app_id: str) -> ScoreboardEntry:
        """Fetch one application's entry."""
        if app_id not in self._entries:
            raise KeyError(f"no scoreboard entry for {app_id!r}")
        return self._entries[app_id]

    def mem_bw(self, app_id: str) -> float:
        """``MEM_BW(App_j)`` — an app's published bandwidth rate."""
        return self.entry(app_id).bw_rate

    def score(self, app_id: str) -> float:
        """``score(App_j)`` — an app's published dynamic score."""
        return self.entry(app_id).score

    def apps(self) -> List[str]:
        """All registered application ids."""
        return list(self._entries)

    def other_apps(self, app_id: str) -> List[str]:
        """Co-runners of ``app_id`` (Alg. 2's other_Running_Apps)."""
        return [a for a in self._entries if a != app_id]

    def other_totals(self, app_id: str) -> Tuple[float, float]:
        """Aggregate co-runner state for Algorithm 2 lines 9-12.

        Returns:
            ``(other_bw_rate, weight_sum)`` where ``other_bw_rate`` is
            the summed bandwidth of co-runners and ``weight_sum`` their
            score-weighted bandwidth sum.
        """
        other_bw = 0.0
        weight_sum = 0.0
        for app in self.other_apps(app_id):
            entry = self._entries[app]
            other_bw += entry.bw_rate
            weight_sum += entry.score * entry.bw_rate
        return other_bw, weight_sum

    def entries(self) -> Dict[str, ScoreboardEntry]:
        """The live entry mapping, in publication order.

        For read-only iteration on hot paths (the runtime's batched
        Algorithm 2 sweep) where the per-call dict copies of
        :meth:`demands`/:meth:`scores` are measurable; callers must
        not mutate it — publish through :meth:`update`.
        """
        return self._entries

    def demands(self) -> Dict[str, float]:
        """All published demands, keyed by app id."""
        return {a: e.demand for a, e in self._entries.items()}

    def scores(self) -> Dict[str, float]:
        """All published dynamic scores, keyed by app id."""
        return {a: e.score for a, e in self._entries.items()}

    def total_bw(self) -> float:
        """Total published bandwidth across all applications."""
        return sum(e.bw_rate for e in self._entries.values())

    def clear(self) -> None:
        """Drop every entry (simulation reset)."""
        self._entries.clear()
