"""Algorithm 1: latency and memory-traffic estimation.

The MoCA runtime predicts a layer's latency from first principles:

- **COMPUTE layers** (convolutions, fully-connected): the ideal compute
  time is ``Total_MAC / num_PEs``; the ideal memory time accounts for
  data movement across the *full* memory system — everything transits
  the shared L2 (``Total_MEM / L2_BW``) and the subset that misses
  (weights, outputs, biases, plus inputs and data tiles that cannot
  stay resident) pays DRAM bandwidth (``From_DRAM / DRAM_BW``).  The
  two overlap according to the SoC's ``overlap_f`` ability:
  ``Prediction = max(C, M) + min(C, M) * overlap_f`` — ``overlap_f = 0``
  models perfectly decoupled access/execute, ``1`` full serialization.
- **MEM layers** (residual adds, unfused poolings): no compute term;
  latency is the sum of DRAM and L2 transit time for their traffic.

The paper validates this estimator within 10 % of FireSim RTL
measurements; our benchmark ``bench_latency_validation`` replays that
check against the fluid simulator.

Besides the per-layer API, this module precomputes *block costs* — the
static shape numbers of a layer block — so the simulator and runtime
can re-evaluate predictions under changing resource allocations
(tiles, bandwidth share) in O(1).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.accelerator.tile import max_useful_tiles
from repro.accelerator.tiling import plan_tiling
from repro.config import SoCConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.blocks import LayerBlock, partition_into_blocks
from repro.models.graph import Network
from repro.models.layers import (
    Layer,
    LayerKind,
    PoolLayer,
    ConcatLayer,
    ResidualAddLayer,
    effective_pe_utilization,
)


class EstimationError(ValueError):
    """Raised on invalid estimation inputs."""


@dataclass(frozen=True)
class LayerEstimate:
    """Algorithm 1's outputs for one layer.

    Attributes:
        name: Layer name.
        kind: COMPUTE or MEM.
        compute_ideal: Ideal compute-only cycles (0 for MEM layers).
        memory_ideal: Ideal memory-only cycles.
        from_dram_bytes: Traffic that reaches DRAM.
        total_mem_bytes: Traffic that reaches the shared L2.
        prediction: Estimated latency in cycles.
        bw_demand: DRAM bandwidth demand in bytes/cycle
            (``From_DRAM / Prediction``, Algorithm 2 line 4).
    """

    name: str
    kind: LayerKind
    compute_ideal: float
    memory_ideal: float
    from_dram_bytes: float
    total_mem_bytes: float
    prediction: float
    bw_demand: float


def _dram_input_bytes(
    layer: Layer, mem: MemoryHierarchy, num_sharers: int
) -> float:
    """DRAM-side input traffic of a MEM layer (Alg. 1 line 21).

    The residual add's skip operand (``InputB``) was produced many
    layers earlier and always refetches from DRAM.  Pooling / concat
    inputs were just produced; they refetch only if they cannot stay
    L2-resident.
    """
    if isinstance(layer, ResidualAddLayer):
        return float(layer.skip_operand_bytes)
    if isinstance(layer, (PoolLayer, ConcatLayer)):
        if mem.input_cached(layer.input_bytes, num_sharers):
            return 0.0
        return float(layer.input_bytes)
    # Unknown MEM layer: be conservative, refetch everything.
    return float(layer.input_bytes)


def estimate_layer(
    layer: Layer,
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
    num_tiles: int = 1,
    num_sharers: int = 1,
    dram_bw: Optional[float] = None,
) -> LayerEstimate:
    """Run Algorithm 1 on a single layer.

    Args:
        layer: The layer to estimate.
        soc: SoC configuration (PE counts, overlap_f).
        mem: Memory hierarchy; built from ``soc`` when omitted.
        num_tiles: Accelerator tiles assigned to this layer.
        num_sharers: Applications sharing the L2 (capacity pressure).
        dram_bw: DRAM bandwidth available to this layer in bytes/cycle;
            defaults to the hierarchy's full usable bandwidth.

    Returns:
        The populated :class:`LayerEstimate`.
    """
    if num_tiles <= 0:
        raise EstimationError("num_tiles must be positive")
    if num_sharers <= 0:
        raise EstimationError("num_sharers must be positive")
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    bw = mem.dram_bandwidth if dram_bw is None else dram_bw
    if bw <= 0:
        raise EstimationError("dram_bw must be positive")
    l2_bw = mem.l2_bandwidth

    if layer.kind is LayerKind.COMPUTE:
        # Compute-only time at 100 % of the assigned PEs (derated by
        # array utilization for thin layers and by the sublinear
        # multi-tile speedup).
        tiles = min(num_tiles, max_useful_tiles(layer, soc))
        util = effective_pe_utilization(
            layer, soc.tile.array_rows, soc.tile.array_cols
        )
        compute_ideal = layer.macs / (
            tiles ** soc.multi_tile_alpha
            * soc.tile.effective_macs_per_cycle
            * util
        )

        plan = plan_tiling(layer, soc)
        total_mem = float(layer.total_mem_bytes + plan.refetch_bytes)
        from_dram = float(
            layer.weight_bytes + layer.output_bytes + layer.bias_bytes
        )
        if not mem.input_cached(layer.input_bytes, num_sharers):
            from_dram += layer.input_bytes
        if not mem.tile_cached(plan.per_tile_bytes, num_sharers):
            from_dram += plan.tiling_factor * plan.per_tile_bytes

        memory_ideal = from_dram / bw + total_mem / l2_bw
        hi = max(compute_ideal, memory_ideal)
        lo = min(compute_ideal, memory_ideal)
        prediction = hi + lo * soc.overlap_f
    else:
        compute_ideal = 0.0
        total_mem = float(layer.total_mem_bytes)
        from_dram = _dram_input_bytes(layer, mem, num_sharers) + float(
            layer.output_bytes
        )
        memory_ideal = from_dram / bw + total_mem / l2_bw
        prediction = memory_ideal

    bw_demand = from_dram / prediction if prediction > 0 else 0.0
    return LayerEstimate(
        name=layer.name,
        kind=layer.kind,
        compute_ideal=compute_ideal,
        memory_ideal=memory_ideal,
        from_dram_bytes=from_dram,
        total_mem_bytes=total_mem,
        prediction=prediction,
        bw_demand=bw_demand,
    )


#: Bound on each :class:`BlockCost`'s per-instance predict memo.
#: Sized far above any single simulation's working set (the engine
#: probes tens of distinct points per block) so eviction only ever
#: engages on long continuous-style runs accumulating contended
#: bandwidth points across many simulations.
_PREDICT_MEMO_CAP = 4096


@dataclass(frozen=True)
class BlockCost:
    """Static shape accounting of a layer block, reusable across
    resource allocations.

    ``compute_terms`` stores, per COMPUTE layer, the cycles the layer
    needs on a single tile and the maximum tile count it can exploit,
    so :meth:`compute_ideal` evaluates any allocation in O(layers).

    Attributes:
        name: Block name (first..last layer).
        kind: COMPUTE if the block computes at all, else MEM.
        compute_terms: ``(single_tile_cycles, max_useful_tiles)`` pairs.
        from_dram_bytes: DRAM traffic of the whole block.
        total_mem_bytes: L2 traffic of the whole block.
        scaling_alpha: Multi-tile speedup exponent (from the SoC).
    """

    name: str
    kind: LayerKind
    compute_terms: Tuple[Tuple[float, int], ...]
    from_dram_bytes: float
    total_mem_bytes: float
    scaling_alpha: float = 1.0

    def compute_ideal(self, num_tiles: int) -> float:
        """Ideal compute cycles on ``num_tiles`` tiles."""
        if num_tiles <= 0:
            raise EstimationError("num_tiles must be positive")
        return sum(
            cycles / min(num_tiles, max_tiles) ** self.scaling_alpha
            for cycles, max_tiles in self.compute_terms
        )

    def memory_ideal(self, dram_bw: float, l2_bw: float) -> float:
        """Ideal memory cycles at the given bandwidths."""
        if dram_bw <= 0 or l2_bw <= 0:
            raise EstimationError("bandwidths must be positive")
        return self.from_dram_bytes / dram_bw + self.total_mem_bytes / l2_bw

    def predict(
        self, num_tiles: int, dram_bw: float, l2_bw: float, overlap_f: float
    ) -> float:
        """Algorithm 1 latency for this block under an allocation.

        Memoised per instance: the simulator and the policies evaluate
        the same (tiles, bandwidths) points thousands of times per run,
        and the inputs fully determine the output.
        """
        key = (num_tiles, dram_bw, l2_bw, overlap_f)
        memo = self.__dict__.get("_predict_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_predict_memo", memo)
        # Identity-pinned LRU: ``predict`` is a pure function of its
        # key, so evicting an entry can never change a result — a
        # re-probed point recomputes the identical float.  The bound
        # matters because block costs are process-cached for their
        # lifetime while contended bandwidth points vary continuously:
        # a long continuous-style run would otherwise grow each memo
        # without limit.  Hits reinsert their key (move-to-end), so
        # insertion order is recency order and the oldest entry is
        # the least recently used.
        cached = memo.pop(key, None)
        if cached is not None:
            memo[key] = cached
            _CACHE_STATS["predict_memo_hits"] += 1
            return cached
        _CACHE_STATS["predict_memo_misses"] += 1
        compute = self.compute_ideal(num_tiles)
        memory = self.memory_ideal(dram_bw, l2_bw)
        hi = max(compute, memory)
        lo = min(compute, memory)
        result = hi + lo * overlap_f
        if len(memo) >= _PREDICT_MEMO_CAP:
            del memo[next(iter(memo))]
        memo[key] = result
        return result

    def clear_predict_memo(self) -> None:
        """Drop this block's :meth:`predict` memo (it rebuilds
        transparently; benchmarks and tests use this to time or
        compare against the unmemoised path)."""
        self.__dict__.pop("_predict_memo", None)

    def __getstate__(self) -> dict:
        """Pickle only the declared fields.

        The per-instance ``_predict_memo`` lives in ``__dict__`` and
        would otherwise ship inside every pickled spec/cost payload —
        a warm parent process was serializing potentially huge memo
        dicts to every pool worker.  The memo is a pure cache and
        rebuilds transparently, so it is dropped here; a pickle of a
        warm instance is byte-for-byte the pickle of a cold one.
        """
        state = dict(self.__dict__)
        state.pop("_predict_memo", None)
        return state

    def bw_demand(
        self, num_tiles: int, dram_bw: float, l2_bw: float, overlap_f: float
    ) -> float:
        """Unconstrained DRAM demand (Alg. 2 line 4) in bytes/cycle."""
        prediction = self.predict(num_tiles, dram_bw, l2_bw, overlap_f)
        if prediction <= 0:
            return 0.0
        return self.from_dram_bytes / prediction


def build_block_cost(
    block: LayerBlock,
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
    num_sharers: int = 1,
) -> BlockCost:
    """Aggregate Algorithm 1's accounting over a layer block."""
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    terms = []
    from_dram = 0.0
    total_mem = 0.0
    for layer in block.layers:
        est = estimate_layer(
            layer, soc, mem, num_tiles=1, num_sharers=num_sharers
        )
        from_dram += est.from_dram_bytes
        total_mem += est.total_mem_bytes
        if layer.kind is LayerKind.COMPUTE:
            terms.append((est.compute_ideal, max_useful_tiles(layer, soc)))
    return BlockCost(
        name=block.name,
        kind=block.kind,
        compute_terms=tuple(terms),
        from_dram_bytes=from_dram,
        total_mem_bytes=total_mem,
        scaling_alpha=soc.multi_tile_alpha,
    )


class RuntimeTable:
    """Structure-of-arrays block-time tables for one network.

    The simulator's hot loop evaluates ``BlockCost.predict`` only at a
    tiny, fixed grid of points: every block of the network crossed with
    every tile count the SoC can grant, at the constant per-simulation
    bandwidths.  This table batch-precomputes that whole grid at once
    (with numpy array ops when available — the fpgahart-style SoA
    layout — or a scalar fallback) and exposes it as plain nested
    lists, so the per-event solve is pure list indexing: no memo-dict
    probes, no tuple-key construction, no per-call arithmetic.

    Attributes:
        t_full_rows: ``t_full_rows[block_idx][tiles - 1]`` — the
            unconstrained Algorithm 1 prediction, bit-identical to
            ``blocks[block_idx].predict(tiles, dram_bw, l2_bw,
            overlap_f)``.
        demand_rows: ``demand_rows[block_idx][tiles - 1]`` — the DRAM
            demand ``from_dram / t_full`` (0.0 when ``t_full`` is 0),
            bit-identical to ``BlockCost.bw_demand``.
        from_dram: Per-block DRAM traffic in bytes.
    """

    __slots__ = ("t_full_rows", "demand_rows", "from_dram")

    def __init__(self, t_full_rows, demand_rows, from_dram) -> None:
        self.t_full_rows = t_full_rows
        self.demand_rows = demand_rows
        self.from_dram = from_dram


def _build_runtime_table(
    cost: "NetworkCost",
    dram_bw: float,
    l2_bw: float,
    overlap_f: float,
    max_tiles: int,
) -> RuntimeTable:
    """Batch-evaluate a network's (block x tiles) prediction grid.

    The numpy path vectorizes over the tile axis but accumulates the
    per-layer compute terms *sequentially in term order* and keeps the
    ``hi + lo * overlap_f`` combination as separate elementwise ops —
    float64 elementwise arithmetic is IEEE-identical to Python floats
    only when the operation order matches, and ``predict`` sums its
    terms left to right.  ``tolist()`` then yields exact Python
    floats.  The scalar fallback (no numpy in the environment) calls
    ``predict`` itself, so both builds are bit-identical to the
    memoised scalar path by construction (property-tested in
    ``tests/test_vectorized.py``).
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is baked into CI
        np = None
    t_full_rows = []
    demand_rows = []
    from_dram = []
    if np is None:  # pragma: no cover - numpy is baked into CI
        for block in cost.blocks:
            row = [
                block.predict(t, dram_bw, l2_bw, overlap_f)
                for t in range(1, max_tiles + 1)
            ]
            t_full_rows.append(row)
            demand_rows.append([
                block.from_dram_bytes / full if full > 0 else 0.0
                for full in row
            ])
            from_dram.append(block.from_dram_bytes)
        return RuntimeTable(t_full_rows, demand_rows, from_dram)
    tiles = np.arange(1, max_tiles + 1)
    zeros = np.zeros(max_tiles)
    for block in cost.blocks:
        compute = zeros
        for cycles, max_t in block.compute_terms:
            compute = compute + (
                cycles / np.minimum(tiles, max_t) ** block.scaling_alpha
            )
        memory = (
            block.from_dram_bytes / dram_bw
            + block.total_mem_bytes / l2_bw
        )
        hi = np.maximum(compute, memory)
        lo = np.minimum(compute, memory)
        full = hi + lo * overlap_f
        demand = np.divide(
            block.from_dram_bytes, full,
            out=np.zeros(max_tiles), where=full > 0,
        )
        t_full_rows.append(full.tolist())
        demand_rows.append(demand.tolist())
        from_dram.append(block.from_dram_bytes)
    return RuntimeTable(t_full_rows, demand_rows, from_dram)


@dataclass(frozen=True)
class NetworkCost:
    """Per-block costs of a whole network, ready for the simulator.

    Attributes:
        network_name: Source network.
        blocks: Block costs in execution order.
    """

    network_name: str
    blocks: Tuple[BlockCost, ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise EstimationError("network cost needs at least one block")

    def runtime_table(
        self,
        dram_bw: float,
        l2_bw: float,
        overlap_f: float,
        max_tiles: int,
    ) -> RuntimeTable:
        """The (block x tiles) :class:`RuntimeTable` at these
        bandwidths, memoised per instance (the simulator evaluates a
        single bandwidth point per run, and network costs are shared
        across every simulation of the process via
        ``_NETWORK_COST_CACHE``)."""
        key = (dram_bw, l2_bw, overlap_f, max_tiles)
        tables = self.__dict__.get("_runtime_tables")
        if tables is None:
            tables = {}
            object.__setattr__(self, "_runtime_tables", tables)
        table = tables.get(key)
        if table is None:
            table = _build_runtime_table(
                self, dram_bw, l2_bw, overlap_f, max_tiles
            )
            tables[key] = table
        return table

    def __getstate__(self) -> dict:
        """Pickle only the declared fields — the runtime-table cache
        (like :class:`BlockCost`'s predict memo) rebuilds
        transparently and must not inflate worker payloads."""
        state = dict(self.__dict__)
        state.pop("_runtime_tables", None)
        return state

    def total_prediction(
        self, num_tiles: int, dram_bw: float, l2_bw: float, overlap_f: float
    ) -> float:
        """End-to-end latency estimate under a fixed allocation."""
        return sum(
            b.predict(num_tiles, dram_bw, l2_bw, overlap_f)
            for b in self.blocks
        )

    def total_from_dram(self) -> float:
        """Whole-network DRAM traffic in bytes."""
        return sum(b.from_dram_bytes for b in self.blocks)

    def avg_bw_demand(
        self, num_tiles: int, dram_bw: float, l2_bw: float, overlap_f: float
    ) -> float:
        """Network-average DRAM demand (Alg. 3 line 7's EstimatedAvg_BW)."""
        total = self.total_prediction(num_tiles, dram_bw, l2_bw, overlap_f)
        if total <= 0:
            return 0.0
        return self.total_from_dram() / total


_NetworkCostKey = Tuple[
    str, str, SoCConfig, MemoryHierarchy, int, int
]

_NETWORK_COST_CACHE: Dict[_NetworkCostKey, NetworkCost] = {}

#: Default block granularity — the one :func:`build_network_cost`
#: uses; the precompute-store warmers must key with the same value.
_DEFAULT_BLOCK_GRANULARITY = 6


def _cost_cache_key(
    network: Network,
    soc: SoCConfig,
    mem: MemoryHierarchy,
    num_sharers: int,
    max_layers_per_block: int,
) -> _NetworkCostKey:
    """The full identity a cached :class:`NetworkCost` depends on —
    shared by the in-process cache probe and the on-disk precompute
    store's digest, so the two can never key differently."""
    return (
        network.name,
        network.structural_digest,
        soc,
        mem,
        num_sharers,
        max_layers_per_block,
    )

#: The cache telemetry contract: every counter name consumers
#: (``SimResult``, ``CellResult``, ``BENCH_perf.json``) carry.  Code
#: that splats counter deltas into those dataclasses iterates THIS
#: tuple, so adding a counter here requires adding the matching field
#: there (a loud TypeError at the splat site, caught by any test that
#: runs a simulation) rather than silently dropping telemetry.
CACHE_COUNTER_FIELDS: Tuple[str, ...] = (
    "cost_cache_hits",
    "cost_cache_misses",
    "predict_memo_hits",
    "predict_memo_misses",
)

#: Process-global cache telemetry.  ``cost_cache_*`` counts
#: :func:`build_network_cost` probes of ``_NETWORK_COST_CACHE``;
#: ``predict_memo_*`` counts :meth:`BlockCost.predict` memo probes.
#: The parallel executor snapshots these around each cell so warm
#: workers are observable (a pre-warmed worker's cells run at ~100 %
#: cost-cache hit rate), and ``scripts/bench_perf.py`` publishes the
#: aggregates in ``BENCH_perf.json``.
_CACHE_STATS: Dict[str, int] = {name: 0 for name in CACHE_COUNTER_FIELDS}

#: Open :class:`track_cache_deltas` frames, kept only so
#: :func:`reset_cache_stats` can re-base their start snapshots.  The
#: probe sites stay plain inline increments — the predict-memo path
#: runs millions of probes per sweep and must not pay a function call
#: or a frame loop per probe.
_DELTA_FRAMES: list = []


def cache_stats() -> Dict[str, int]:
    """Snapshot of the process-global cache hit/miss counters."""
    return dict(_CACHE_STATS)


def reset_cache_stats() -> None:
    """Zero the cache telemetry counters (the caches stay intact).

    Open :func:`track_cache_deltas` frames are re-based so a run in
    flight keeps attributing its own probes correctly across the
    reset (its delta can never go negative).
    """
    for frame in _DELTA_FRAMES:
        for name in CACHE_COUNTER_FIELDS:
            # Preserve the probes accumulated so far: with the globals
            # about to drop to zero, delta = current' - start stays
            # continuous iff start shifts down by the current counts.
            frame._start[name] -= _CACHE_STATS[name]
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


class track_cache_deltas:
    """Context manager attributing cache probes to one run.

    Entering snapshots the process-global counters and yields a
    ``{counter: 0}`` dict; exiting fills that dict with the probes
    made while the frame was open (read it *after* the ``with``
    block).  Frames nest: an inner run's probes count toward both the
    inner and the enclosing frame (a sweep cell's frame deliberately
    contains its simulation's frame), sibling runs never leak into
    each other, and :func:`reset_cache_stats` mid-frame cannot drive
    the delta negative — the failure modes the old "diff two
    snapshots taken at construction time" convention had.
    ``SimResult`` and ``CellResult`` cache deltas are measured
    through this; the probe hot paths stay untouched inline
    increments.
    """

    def __enter__(self) -> Dict[str, int]:
        self._start = dict(_CACHE_STATS)
        self._delta = {name: 0 for name in CACHE_COUNTER_FIELDS}
        _DELTA_FRAMES.append(self)
        return self._delta

    def __exit__(self, *exc_info) -> None:
        # Remove by identity, not equality (list.remove would match
        # another frame comparing equal).
        for i in range(len(_DELTA_FRAMES) - 1, -1, -1):
            if _DELTA_FRAMES[i] is self:
                del _DELTA_FRAMES[i]
                break
        for name in CACHE_COUNTER_FIELDS:
            self._delta[name] = _CACHE_STATS[name] - self._start[name]


def clear_network_cost_cache() -> None:
    """Drop all memoised :class:`NetworkCost` entries.

    Intended for tests that mutate model definitions in place and for
    freshly forked experiment workers that want a cold start.
    """
    _NETWORK_COST_CACHE.clear()


def clear_predict_memos() -> None:
    """Drop the per-instance :meth:`BlockCost.predict` memos of every
    cached network cost (for benchmarks that need cold-start timing
    symmetry; the memos rebuild transparently)."""
    for cost in _NETWORK_COST_CACHE.values():
        for block in cost.blocks:
            block.clear_predict_memo()


def build_network_cost(
    network: Network,
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
    num_sharers: int = 1,
    max_layers_per_block: int = 6,
) -> NetworkCost:
    """Partition a network into blocks and compute their costs.

    Results are cached on (network identity, full SoC configuration,
    memory-hierarchy shape, sharer count, block granularity) because
    the experiment harness builds costs for the same seven networks
    thousands of times.  Both config dataclasses are frozen, so the
    key captures every configuration parameter the block accounting
    reads; the network itself is identified by name plus its
    order-sensitive :attr:`~repro.models.graph.Network.
    structural_digest`, which chains every layer's full structural
    identity in execution order — a modified model reusing a zoo
    name cannot alias, and neither can one that merely *reorders*
    layers (aggregate totals like MAC/weight sums are order-blind;
    the digest is not).
    """
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    key = _cost_cache_key(
        network, soc, mem, num_sharers, max_layers_per_block
    )
    if key in _NETWORK_COST_CACHE:
        _CACHE_STATS["cost_cache_hits"] += 1
        return _NETWORK_COST_CACHE[key]
    _CACHE_STATS["cost_cache_misses"] += 1
    blocks = partition_into_blocks(
        network, max_layers_per_block=max_layers_per_block
    )
    cost = NetworkCost(
        network_name=network.name,
        blocks=tuple(
            build_block_cost(b, soc, mem, num_sharers) for b in blocks
        ),
    )
    _NETWORK_COST_CACHE[key] = cost
    return cost


#: Process-global telemetry for the on-disk precompute store (same
#: inline-increment convention as ``_CACHE_STATS``; these counters are
#: *not* part of ``CACHE_COUNTER_FIELDS`` — they are published by the
#: perf bench and the CLI directly, not threaded through every
#: ``CellResult``).
PRECOMPUTE_COUNTER_FIELDS: Tuple[str, ...] = (
    "precompute_loads",
    "precompute_load_misses",
    "precompute_saves",
)

_PRECOMPUTE_STATS: Dict[str, int] = {
    name: 0 for name in PRECOMPUTE_COUNTER_FIELDS
}


def precompute_stats() -> Dict[str, int]:
    """Snapshot of the process-global precompute-store counters."""
    return dict(_PRECOMPUTE_STATS)


def reset_precompute_stats() -> None:
    """Zero the precompute-store telemetry counters."""
    for key in _PRECOMPUTE_STATS:
        _PRECOMPUTE_STATS[key] = 0


def precompute_digest(key: _NetworkCostKey) -> str:
    """Stable on-disk identity of one network-cost cache key.

    Hashes the ``repr`` of the full in-memory key — the network name,
    its order-sensitive structural digest, both frozen config
    dataclasses, the sharer count and the block granularity — so a
    store entry can only ever be served back to the exact
    configuration that produced it.  ``repr`` of frozen dataclasses
    of primitives is deterministic across processes (no ids, no
    addresses), unlike ``hash()``, which is salted per process.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def _cost_to_payload(cost: NetworkCost) -> dict:
    """JSON payload for one :class:`NetworkCost` with exact float
    round-trip (``float.hex``)."""
    return {
        "version": 1,
        "network_name": cost.network_name,
        "blocks": [
            {
                "name": b.name,
                "kind": b.kind.name,
                "compute_terms": [
                    [cycles.hex(), max_tiles]
                    for cycles, max_tiles in b.compute_terms
                ],
                "from_dram_bytes": b.from_dram_bytes.hex(),
                "total_mem_bytes": b.total_mem_bytes.hex(),
                "scaling_alpha": b.scaling_alpha.hex(),
            }
            for b in cost.blocks
        ],
    }


def _cost_from_payload(payload: dict) -> Optional[NetworkCost]:
    """Rebuild a :class:`NetworkCost` from a store payload; ``None``
    on any structural mismatch (a malformed or foreign file is a
    cache miss, never an error)."""
    try:
        if payload["version"] != 1:
            return None
        blocks = tuple(
            BlockCost(
                name=b["name"],
                kind=LayerKind[b["kind"]],
                compute_terms=tuple(
                    (float.fromhex(cycles), int(max_tiles))
                    for cycles, max_tiles in b["compute_terms"]
                ),
                from_dram_bytes=float.fromhex(b["from_dram_bytes"]),
                total_mem_bytes=float.fromhex(b["total_mem_bytes"]),
                scaling_alpha=float.fromhex(b["scaling_alpha"]),
            )
            for b in payload["blocks"]
        )
        return NetworkCost(
            network_name=payload["network_name"], blocks=blocks
        )
    except (KeyError, TypeError, ValueError, EstimationError):
        return None


# repro-lint: thread-shared lock=_lock
class PrecomputeStore:
    """On-disk cross-cell precompute store for network block costs.

    One JSON file per :func:`precompute_digest` key under ``root``.
    Multiple worker processes (a warm pool's initializers, several
    ``sweep --worker`` hosts on a shared filesystem) read and write
    the same directory concurrently: reads never block writers, and
    writes go through a per-pid temp file plus an atomic
    ``os.replace``, so a reader can never observe a torn entry.

    Trust and keying story (also in the README): entries are plain
    JSON — the store never unpickles anything — and floats round-trip
    through ``float.hex``, so a loaded :class:`NetworkCost` is
    bit-identical to the one that was saved.  The digest covers the
    network's order-sensitive structural digest *and* every
    configuration parameter the block accounting reads, so a stale,
    reordered or differently-configured entry cannot alias; what the
    digest cannot defend against is deliberate tampering inside the
    directory, which therefore carries the same trust level as the
    working tree itself (the solver-identity gates would catch a
    divergence downstream, but treat ``--precompute DIR`` like code,
    not like untrusted input).
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        self._lock = threading.Lock()
        self._stats: Dict[str, int] = {
            name: 0 for name in PRECOMPUTE_COUNTER_FIELDS
        }

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest + ".json")

    def _count(self, name: str) -> None:
        self._stats[name] += 1
        _PRECOMPUTE_STATS[name] += 1

    def stats(self) -> Dict[str, int]:
        """Snapshot of this store's load/save counters."""
        with self._lock:
            return dict(self._stats)

    def get(self, digest: str) -> Optional[NetworkCost]:
        """Load the entry for ``digest``; ``None`` on miss (absent,
        unreadable or malformed — all equivalent to cold)."""
        path = self._path(digest)
        cost: Optional[NetworkCost] = None
        found = False
        try:
            fh = open(path)
        except OSError:
            fh = None
        if fh is not None:
            found = True
            try:
                with fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                pass
            else:
                cost = _cost_from_payload(payload)
        if cost is None and found:
            # A malformed entry would otherwise shadow ``put``'s
            # skip-if-exists forever; drop it so the next save heals
            # the store.
            try:
                os.unlink(path)
            except OSError:
                pass
        with self._lock:
            if cost is None:
                self._count("precompute_load_misses")
            else:
                self._count("precompute_loads")
        return cost

    def put(self, digest: str, cost: NetworkCost) -> bool:
        """Persist ``cost`` under ``digest`` unless already present.

        Returns whether a new entry was written.  Concurrent writers
        racing on the same digest both compute the identical payload
        (the entry is a pure function of its key), so the atomic
        replace makes the race benign.
        """
        path = self._path(digest)
        if os.path.exists(path):
            return False
        os.makedirs(self.root, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as fh:
                json.dump(_cost_to_payload(cost), fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        with self._lock:
            self._count("precompute_saves")
        return True


def warm_network_cost_cache(
    networks: Sequence[Network],
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
    num_sharers: int = 1,
    store: Optional[Union[PrecomputeStore, str, os.PathLike]] = None,
) -> int:
    """Pre-build network costs and pre-evaluate their predict memos.

    For every network, builds (or cache-hits) its :class:`NetworkCost`
    and evaluates each block's :meth:`BlockCost.predict` memo at every
    tile count the SoC can grant, at full DRAM/L2 bandwidth — exactly
    the ``T_full`` points the simulator's ``current_block_times`` and
    the workload generator's isolated/QoS sizing evaluate, so a warmed
    process serves those lookups from memo from the first cell.  The
    parallel executor's worker initializer calls this once per worker
    process; ``scripts/bench_perf.py`` uses it to keep cold-start out
    of the timed legs.

    With ``store`` (a :class:`PrecomputeStore` or a directory path),
    cold networks are first looked up on disk — a hit installs the
    saved :class:`NetworkCost` into the in-process cache instead of
    rebuilding it — and fresh builds are saved back, so separate
    processes (warm-pool workers, repeated sweeps) share the block
    accounting instead of each redoing it.

    Returns:
        The number of networks warmed.
    """
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    if store is not None and not isinstance(store, PrecomputeStore):
        store = PrecomputeStore(store)
    for network in networks:
        if store is not None:
            key = _cost_cache_key(
                network, soc, mem, num_sharers,
                _DEFAULT_BLOCK_GRANULARITY,
            )
            if key not in _NETWORK_COST_CACHE:
                loaded = store.get(precompute_digest(key))
                if loaded is not None:
                    _NETWORK_COST_CACHE[key] = loaded
        cost = build_network_cost(network, soc, mem, num_sharers)
        if store is not None:
            store.put(precompute_digest(key), cost)
        for block in cost.blocks:
            for tiles in range(1, soc.num_tiles + 1):
                block.predict(
                    tiles, mem.dram_bandwidth, mem.l2_bandwidth,
                    soc.overlap_f,
                )
        # The vectorized engine reads these exact points from the SoA
        # runtime table instead of the memo; warm it alongside.
        cost.runtime_table(
            mem.dram_bandwidth, mem.l2_bandwidth, soc.overlap_f,
            soc.num_tiles,
        )
    return len(networks)


def estimate_network(
    network: Network,
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
    num_tiles: int = 1,
    num_sharers: int = 1,
    dram_bw: Optional[float] = None,
) -> Tuple[float, Sequence[LayerEstimate]]:
    """Estimate every layer of a network under a fixed allocation.

    Returns:
        ``(total_cycles, per_layer_estimates)``.
    """
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    estimates = [
        estimate_layer(layer, soc, mem, num_tiles, num_sharers, dram_bw)
        for layer in network.layers
    ]
    return sum(e.prediction for e in estimates), estimates
