"""Algorithm 2: MoCA contention detection and hardware update.

For every layer (block) an application is about to run, the runtime:

1. estimates the block's latency and DRAM traffic with Algorithm 1,
   giving its unconstrained bandwidth demand ``BW_rate``;
2. computes the application's **dynamic priority score** — the static
   user priority plus an urgency term, the ratio of the predicted
   remaining-network latency to the slack left before the SLA target;
3. reads co-runners' published bandwidth rates from the scoreboard and
   checks for **overflow**: total demand above the DRAM's maximum;
4. on contention, sheds part of its own demand, proportionally to the
   co-runners' score-weighted bandwidth share (high-score apps shed
   less), and derives the throttle configuration (``threshold_load``
   memory requests per ``window`` cycles) for the MoCA hardware;
5. publishes its new rate and score back to the scoreboard.

The update is *distributed*: each application reconfigures only its own
tile's throttle at its own layer boundaries, exactly like the paper's
runtime, so global bandwidth converges over a few layers rather than
being recomputed centrally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accelerator.dma import bytes_to_requests
from repro.config import SoCConfig
from repro.core.latency import BlockCost
from repro.core.scoreboard import Scoreboard, ScoreboardEntry
from repro.memory.arbiter import (
    _REL_TOL,
    allocate_bandwidth,
    waterfill_grant_last,
)
from repro.memory.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class RuntimeDecision:
    """Outcome of one Algorithm 2 invocation for one application.

    Attributes:
        app_id: The application updated.
        contention: Whether overflow was detected (throttling engaged).
        bw_rate: Allocated DRAM bandwidth rate in bytes/cycle.
        prediction: Updated latency prediction for the block (cycles).
        score: The dynamic priority score used.
        window: MoCA hardware window (cycles); 0 when unthrottled.
        threshold_load: Allowed memory requests per window; 0 when
            unthrottled.
    """

    app_id: str
    contention: bool
    bw_rate: float
    prediction: float
    score: float
    window: int
    threshold_load: int

    @property
    def throttle_rate_requests_per_cycle(self) -> float:
        """The request rate the HW config enforces (inf = unthrottled)."""
        if self.window == 0:
            return float("inf")
        return self.threshold_load / self.window

    def apply_to(self, engine) -> None:
        """Program a :class:`~repro.accelerator.moca_hw.MoCAHardwareEngine`
        with this decision (Algorithm 2 line 26, ``ConfigureHW``)."""
        engine.configure(window=self.window,
                         threshold_load=self.threshold_load)


class MoCARuntime:
    """The per-SoC MoCA runtime system.

    Attributes:
        soc: SoC configuration.
        mem: Shared-memory hierarchy.
        scoreboard: The bandwidth/score lookup table.
        urgency_cap: Upper bound on the ``remain_prediction / slack``
            urgency term, used when the slack is exhausted (the paper
            leaves the negative-slack case unspecified; a saturating
            cap keeps scores finite and maximally urgent).
        min_bw_rate: Floor on an allocation so a throttled app always
            retains forward progress (bytes/cycle).
        overflow_tolerance: Fraction of DRAM bandwidth the summed
            demand must exceed before throttling engages (marginal
            overflows self-resolve through interleaving).
    """

    def __init__(
        self,
        soc: SoCConfig,
        mem: Optional[MemoryHierarchy] = None,
        urgency_cap: float = 100.0,
        min_bw_rate: float = 0.5,
        overflow_tolerance: float = 0.02,
    ) -> None:
        if urgency_cap <= 0:
            raise ValueError("urgency_cap must be positive")
        if min_bw_rate <= 0:
            raise ValueError("min_bw_rate must be positive")
        if overflow_tolerance < 0:
            raise ValueError("overflow_tolerance must be non-negative")
        self.soc = soc
        self.mem = mem if mem is not None else MemoryHierarchy.from_soc(soc)
        self.scoreboard = Scoreboard()
        self.urgency_cap = urgency_cap
        self.min_bw_rate = min_bw_rate
        self.overflow_tolerance = overflow_tolerance
        # Fixed for the runtime's lifetime (the hierarchy is immutable
        # config): cached so the per-round sweep skips the property
        # chain and the overflow-cut multiply.
        self._dram_bw = self.mem.dram_bandwidth
        self._overflow_cut = overflow_tolerance * self._dram_bw

    def dynamic_score(
        self, user_priority: float, remain_prediction: float, slack: float
    ) -> float:
        """Algorithm 2 line 6: ``priority + remain_prediction / slack``.

        The urgency term saturates at :attr:`urgency_cap` when slack is
        gone or negative.
        """
        if remain_prediction < 0:
            raise ValueError("remain_prediction must be non-negative")
        if slack <= 0:
            urgency = self.urgency_cap
        else:
            urgency = min(remain_prediction / slack, self.urgency_cap)
        return user_priority + urgency

    def update_app(
        self,
        app_id: str,
        block: BlockCost,
        num_tiles: int,
        user_priority: float,
        remain_prediction: float,
        slack: float,
    ) -> RuntimeDecision:
        """Run Algorithm 2 for ``app_id``'s next block.

        Args:
            app_id: Application identifier.
            block: Cost of the block about to execute.
            num_tiles: Tiles currently assigned to the application.
            user_priority: Static user-given priority.
            remain_prediction: Predicted latency of the network's
                remaining layers (including this block), cycles.
            slack: Time left until the SLA target, cycles.

        Returns:
            The :class:`RuntimeDecision`, already published to the
            scoreboard and carrying the HW throttle configuration.
        """
        if num_tiles <= 0:
            raise ValueError("num_tiles must be positive")
        dram_bw = self.mem.dram_bandwidth
        l2_bw = self.mem.l2_bandwidth

        # Lines 3-4: unconstrained prediction and demand for this block
        # (both served from the BlockCost memo after the first solve).
        prediction = block.predict(
            num_tiles, dram_bw, l2_bw, self.soc.overlap_f
        )
        bw_rate = block.bw_demand(
            num_tiles, dram_bw, l2_bw, self.soc.overlap_f
        )

        demand = bw_rate

        # Line 6: dynamic priority score.
        score = self.dynamic_score(user_priority, remain_prediction, slack)

        # Lines 9-12: co-runner usage from the scoreboard.
        other_demands = self.scoreboard.demands()
        other_demands.pop(app_id, None)
        other_bw = sum(other_demands.values())

        # Line 14: is the system's total memory demand above the
        # maximum DRAM bandwidth?
        overflow = demand + other_bw - dram_bw

        if overflow > self.overflow_tolerance * dram_bw and demand > 0:
            # Lines 16-18: contention detected.  Shed only the overflow,
            # splitting the bandwidth by weighted water-fill with the
            # dynamic scores as weights: co-runners whose demand fits
            # inside their score-weighted fair share keep it; the rest
            # (including this app when its score is low) split the
            # remainder proportionally to score.  This is the converged
            # behaviour of the paper's per-layer incremental shedding,
            # evaluated from the scoreboard's published demands instead
            # of iterated across layer boundaries.
            demands = dict(other_demands)
            demands[app_id] = demand
            weights = self.scoreboard.scores()
            weights[app_id] = score
            shares = allocate_bandwidth(demands, dram_bw, weights=weights)
            new_rate = min(demand, max(shares[app_id], self.min_bw_rate))
            prediction = block.from_dram_bytes / new_rate + (
                block.total_mem_bytes / l2_bw
            )
            # Throttling caps the memory stream but never the compute
            # portion already accounted for: latency is at least the
            # unthrottled prediction.
            prediction = max(
                prediction,
                block.predict(num_tiles, dram_bw, l2_bw, self.soc.overlap_f),
            )
            bw_rate = new_rate

            # Lines 20-21: hardware configuration. The budget is the
            # block's total request count split across the app's tiles,
            # to be consumed over the predicted duration.
            total_requests = bytes_to_requests(int(block.total_mem_bytes))
            threshold_load = max(1, total_requests // num_tiles)
            window = max(1, int(prediction / num_tiles))
            contention = True
        else:
            # Line 23: no contention, no throttling.
            threshold_load = 0
            window = 0
            contention = False

        # Line 25: publish to the scoreboard.
        self.scoreboard.update(
            app_id, bw_rate=bw_rate, score=score, demand=demand
        )

        return RuntimeDecision(
            app_id=app_id,
            contention=contention,
            bw_rate=bw_rate,
            prediction=prediction,
            score=score,
            window=window,
            threshold_load=threshold_load,
        )

    def regulate_batch(self, items) -> list:
        """Run Algorithm 2 for a whole decision round in one sweep.

        The hot-path counterpart of :meth:`update_app`, which stays as
        the validated reference oracle (``tests/test_vectorized.py``
        pins them equal).  The caller pre-extracts per-app state into
        structure-of-arrays tuples — the block's unconstrained
        prediction and bandwidth demand come from the simulator's
        runtime tables instead of ``block.predict`` memo probes — and
        this sweep touches the scoreboard's live entries directly
        instead of copying the demand/score dicts per app.  Apps are
        processed sequentially in item order: each sees its
        predecessors' freshly published rates, exactly like the
        equivalent sequence of ``update_app`` calls (the paper's
        distributed convergence, Section IV-A).

        Args:
            items: Per-app tuples ``(app_id, demand, user_priority,
                remain_prediction, slack)`` where ``demand`` is the
                block's unconstrained bandwidth demand at the app's
                tile count (``BlockCost.bw_demand``, as a runtime-table
                lookup).

        Returns:
            ``[(app_id, contention, bw_rate), ...]`` in item order —
            bit-identical to the ``(contention, bw_rate)`` fields of
            the :class:`RuntimeDecision`\\ s ``update_app`` returns
            (the HW window/threshold derivation, whose inputs the
            simulator never consumes, is skipped; the arbiter sees
            only the cap).
        """
        dram_bw = self._dram_bw
        entries = self.scoreboard.entries()
        urgency_cap = self.urgency_cap
        overflow_cut = self._overflow_cut
        min_bw_rate = self.min_bw_rate
        # Round-local mirror of the scoreboard in publication order:
        # parallel demand/score/entry lists plus an id -> index map,
        # snapshotted once per round and updated in place as each app
        # publishes.  Per-item co-runner sweeps then read plain list
        # slots instead of re-walking ``entries.items()`` with a string
        # compare and two attribute loads per co-runner — the same
        # values in the same publication order, so every float sum
        # below keeps the reference operation sequence.
        ids = list(entries)
        ent_arr = [entries[a] for a in ids]
        demand_arr = [e.demand for e in ent_arr]
        score_arr = [e.score for e in ent_arr]
        idx_of = {a: i for i, a in enumerate(ids)}
        n_apps = len(ids)
        out = []
        for (
            app_id, demand, user_priority, remain_prediction, slack,
        ) in items:
            # dynamic_score inlined (its remain >= 0 validation is
            # guaranteed by the predictor feeding this path).
            if slack <= 0:
                score = user_priority + urgency_cap
            else:
                score = user_priority + min(
                    remain_prediction / slack, urgency_cap
                )
            # Co-runner demand sum in publication order, exactly as
            # sum(other_demands.values()) does.
            i_self = idx_of.get(app_id, -1)
            other_bw = 0.0
            for i in range(n_apps):
                if i != i_self:
                    other_bw += demand_arr[i]
            overflow = demand + other_bw - dram_bw
            if overflow > overflow_cut and demand > 0:
                # Contention.  ``other_bw + demand`` is the same float
                # sequence the reference wants sum produced (same
                # addends, same order), so the early-exit threshold is
                # bit-identical.  Only this app's grant is consumed,
                # and it sits at a fixed index: last — the water-fill
                # input lists (co-runners in scoreboard order, this
                # app last, uncapped wants = demands, scores as
                # weights with the denormal filter) are built only
                # when the fill actually runs.
                if other_bw + demand <= dram_bw * (1 + _REL_TOL):
                    share = demand
                else:
                    wants = []
                    weights = []
                    for i in range(n_apps):
                        if i != i_self:
                            wants.append(demand_arr[i])
                            s = score_arr[i]
                            weights.append(s if s > 1e-9 else 0.0)
                    wants.append(demand)
                    weights.append(score if score > 1e-9 else 0.0)
                    share = waterfill_grant_last(wants, weights, dram_bw)
                bw_rate = min(demand, max(share, min_bw_rate))
                contention = True
            else:
                bw_rate = demand
                contention = False
            # Publish (Alg. 2 line 25) straight into the live entry —
            # rates/demands are non-negative here by construction, so
            # Scoreboard.update's validation adds nothing.  The round
            # mirror is updated in the same step so successor items
            # see this publication.
            if i_self < 0:
                entry = ScoreboardEntry(
                    bw_rate=bw_rate, demand=demand, score=score
                )
                entries[app_id] = entry
                idx_of[app_id] = n_apps
                ids.append(app_id)
                ent_arr.append(entry)
                demand_arr.append(demand)
                score_arr.append(score)
                n_apps += 1
            else:
                entry = ent_arr[i_self]
                entry.bw_rate = bw_rate
                entry.demand = demand
                entry.score = score
                demand_arr[i_self] = demand
                score_arr[i_self] = score
            out.append((app_id, contention, bw_rate))
        return out

    def retire_app(self, app_id: str) -> None:
        """Remove a finished application from the scoreboard."""
        self.scoreboard.remove(app_id)

    def reset(self) -> None:
        """Clear all runtime state (new simulation)."""
        self.scoreboard.clear()
