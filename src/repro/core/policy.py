"""The full MoCA system as a simulator policy.

Wires the three MoCA components (Figure 3) onto the simulation engine:

- **Scheduler** (Algorithm 3): at every scheduling opportunity, scores
  waiting tasks by priority + waiting slowdown, flags memory-intensive
  ones, and admits a balanced co-running group onto fixed-size tile
  allocations.
- **Runtime** (Algorithm 2): at every block boundary of every running
  job, re-estimates demand and slack, detects contention against the
  scoreboard, and re-derives the job's bandwidth allocation.
- **Hardware** (Section III-B): modelled by the per-job bandwidth cap
  the engine's arbiter enforces; each reconfiguration costs the 5-10
  cycle DMA issue-rate update, *not* a thread migration.

Compute repartitioning exists but is deliberately rare (Section III-C:
"MoCA's runtime triggers the compute resource partition much less
frequently to avoid its high overhead"): free tiles are granted to a
running job only when it is predicted to miss its SLA and the
predicted benefit clearly exceeds the migration stall.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.prediction import RemainingPrediction
from repro.core.runtime import MoCARuntime
from repro.core.scheduler import MoCAScheduler, SchedulableTask, SchedulerConfig
from repro.core.scoreboard import ScoreboardEntry
from repro.memory.arbiter import _REL_TOL, waterfill_grant_last
from repro.sim.plan import EMPTY_PLAN, AllocationPlan
from repro.sim.policy import Policy
from repro.sim.trace import TraceEvent

#: Shared empty admitted-tiles overlay for regulation rounds with no
#: admissions (the kernel seam's steady state); read-only by contract.
_NO_TILES: Dict[str, int] = {}

#: Bound on the per-job suffix-prediction and regulation-item caches.
#: Entries are pure functions of the job's (block, tiles) state, so
#: evicting one can never change a decision — a re-probed job
#: recomputes identical values (identity-pinned eviction).  Jobs
#: normally vacate their entries at completion; the cap is the
#: backstop for long continuous-style runs where completion hooks
#: may lag far behind admission churn.
_JOB_CACHE_CAP = 1024

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job


class MoCAPolicy(Policy):
    """Memory-centric adaptive multi-tenancy (the paper's system).

    Attributes:
        scheduler_config: Algorithm 3 tunables.
        enable_compute_repartition: Allow the rare tile regrant for
            SLA-critical jobs (on by default; the ablation benchmark
            turns it off).
    """

    name = "moca"

    #: Skip whole decision rounds while the engine's retired-blocks
    #: counter is unchanged (class attribute so benchmark comparators
    #: can shadow it with False to model the pre-fast-path system).
    #: The skip is exact: Algorithm 2 runs once per (layer block,
    #: co-runner epoch) key, and with MoCA never preempting, the keys
    #: only move through admissions (checked separately), block
    #: retirements and finishes — each of which ticks the counter.
    #: An unchanged counter with no admissions planned means the full
    #: regulation sweep would skip every co-runner and emit the same
    #: empty overlay.
    fast_path = True

    def __init__(
        self,
        scheduler_config: Optional[SchedulerConfig] = None,
        enable_compute_repartition: bool = True,
    ) -> None:
        self.scheduler_config = (
            scheduler_config if scheduler_config is not None
            else SchedulerConfig()
        )
        self.enable_compute_repartition = enable_compute_repartition
        # The admission slot size, probed once per decision round on
        # the kernel seam (scheduler_config is fixed at construction).
        self._tiles_per_task = self.scheduler_config.tiles_per_task
        self._runtime: Optional[MoCARuntime] = None
        self._scheduler: Optional[MoCAScheduler] = None
        self._predictor: Optional[RemainingPrediction] = None
        self._sched_cache: Dict[str, SchedulableTask] = {}
        self._regulated_block: Dict[str, tuple] = {}
        #: jid -> (num_tiles, suffix list) — the predictor's suffix-sum
        #: list pinned per job so each regulation item is a plain list
        #: index instead of a keyed cache probe.  Invalidated when the
        #: job's tile count changes (repartition/admission overlay).
        self._suffix_cache: Dict[str, tuple] = {}
        #: jid -> (block_idx, num_tiles, demand, remain) — the
        #: regulation item's table-derived tail, refreshed only when
        #: the job's (block, tiles) key moves; co-runner epoch bumps
        #: re-regulate the same block several rounds in a row.
        self._item_cache: Dict[str, tuple] = {}
        #: Persistent scoreboard mirror in publication order —
        #: ``(entries, ent_arr, demand_arr, score_arr, idx_of)`` —
        #: kept in lockstep with every publication so the regulation
        #: sweep's co-runner reads are plain list slots without a
        #: per-round snapshot.  Dropped to None whenever the
        #: scoreboard changes outside the sweep (retire, reset); the
        #: leading ``entries`` reference pins the mirror to one
        #: scoreboard instance.
        self._sb_mirror: Optional[tuple] = None
        #: Regulation-sweep constant bundle, built by :meth:`_lazy_init`.
        self._reg_consts: Optional[tuple] = None
        self._epoch = 0
        self._seen_boundaries = -1

    # ------------------------------------------------------------------

    def _lazy_init(self, sim: "Simulator") -> None:
        if self._runtime is None:
            rt = MoCARuntime(sim.soc, sim.mem)
            self._runtime = rt
            self._scheduler = MoCAScheduler(
                sim.mem.dram_bandwidth, self.scheduler_config
            )
            self._predictor = RemainingPrediction(sim.soc, sim.mem)
            # Regulation-sweep constants (all fixed for the runtime's
            # lifetime; the scoreboard's entry dict is mutated in
            # place, never replaced).  ``dram_bw * (1 + _REL_TOL)`` is
            # the early-exit threshold the sweep previously derived
            # per round — the same float by construction.
            self._reg_consts = (
                rt.scoreboard.entries(),
                rt._dram_bw,
                rt._dram_bw * (1 + _REL_TOL),
                rt._overflow_cut,
                rt.min_bw_rate,
                rt.urgency_cap,
                self._predictor.suffix,
            )

    def decide(self, sim: "Simulator") -> AllocationPlan:
        """One MoCA decision round as a single declarative plan:
        admissions (Algorithm 3), bandwidth regulation (Algorithm 2)
        and the rare compute repartition — computed against the
        *planned* post-admission state, applied atomically by the
        engine's controller.

        Most events change nothing the regulation depends on; the
        fast path detects that via the engine's retired-blocks
        counter (see :attr:`fast_path`) and skips the whole
        regulation sweep — whose per-job keys would all still match —
        while the repartition check below still runs against the live
        running set either way."""
        if self._runtime is None:
            self._lazy_init(sim)
        if sim.ready and sim.free_tiles >= self.scheduler_config.tiles_per_task:
            admissions = self._plan_admissions(sim)
        else:
            # No tile budget for even one slot (or nothing waiting):
            # Algorithm 3 would select nobody; skip building the
            # schedulable queue at all.
            admissions = []
        boundaries = sim._boundaries
        if (
            not admissions
            and self.fast_path
            and boundaries == self._seen_boundaries
        ):
            # Unchanged retired-blocks counter ⇒ unchanged running set
            # and block indices ⇒ every job's regulation key still
            # matches: Algorithm 2 would skip every co-runner.
            planned_running = sim.running
            admitted_tiles: Dict[str, int] = {}
            bw_caps: Tuple[Tuple[str, Optional[float]], ...] = ()
        else:
            if admissions:
                # The planned running set: incumbents in engine order,
                # then the admitted jobs in admission order — exactly
                # the running list the engine will hold once the plan
                # is applied.  The co-runner set changed, so every
                # running app re-runs Algorithm 2 at its next
                # opportunity.
                by_id = {j.job_id: j for j in sim.ready}
                planned_running = list(sim.running) + [
                    by_id[jid] for jid, _ in admissions
                ]
                admitted_tiles = dict(admissions)
                self._epoch += 1
            else:
                # Read the live running list in place, no copies.
                planned_running = sim.running
                admitted_tiles = {}
            # The demand picture changes whenever any co-runner enters
            # a new layer block (its bandwidth appetite is per-block);
            # bump the regulation epoch so every running app re-runs
            # Algorithm 2.  The engine's retired-blocks counter is an
            # exact change detector for the (job, block) signature
            # here: MoCA never preempts, so the planned running set
            # only shifts through admissions (the epoch bump above),
            # block retirements, and finishes — and the latter two
            # each tick the counter.
            if boundaries != self._seen_boundaries:
                self._seen_boundaries = boundaries
                self._epoch += 1
            bw_caps = self._plan_regulation(
                sim, planned_running, admitted_tiles
            )
        tiles: Tuple[Tuple[str, int], ...] = ()
        if self.enable_compute_repartition:
            free_after = sim.free_tiles
            if admissions:
                for _, t in admissions:
                    free_after -= t
            ready_after = len(sim.ready) > len(admissions)
            if free_after > 0 and not ready_after:
                tiles = self._plan_compute_repartition(
                    sim, planned_running, admitted_tiles, free_after,
                    ready_after,
                )
        if not admissions and not bw_caps and not tiles:
            return EMPTY_PLAN
        # Built from live ready/running jobs with unique ids by
        # construction: the trusted constructor skips re-validation.
        return AllocationPlan.trusted(
            admissions=tuple(admissions), tiles=tiles, bw_caps=bw_caps
        )

    # -- Horizon-kernel protocol (engine-private fused seam) -----------

    def kernel_noop_guard(self, sim: "Simulator") -> bool:
        """True only when this decision round *provably* returns
        :data:`EMPTY_PLAN` with zero internal state change, so the
        engine's horizon kernel may skip :meth:`decide` outright.

        The proof mirrors decide()'s own gating: the retired-blocks
        counter is unchanged (so the fast path would skip the whole
        regulation sweep), no admission can fit (``free_tiles`` below
        one scheduler slot when anything is waiting), and the rare
        compute repartition cannot trigger (nothing waiting and
        either no free tiles or the feature off).  Every read is a
        plain engine attribute; nothing is written.
        """
        if sim._boundaries != self._seen_boundaries or not self.fast_path:
            return False
        free = sim.soc.num_tiles - sim._tiles_held
        if sim.ready:
            return free < self._tiles_per_task
        return not (self.enable_compute_repartition and free > 0)

    def kernel_decide_apply(self, sim: "Simulator") -> None:
        """Fused decision round for the engine's horizon kernel.

        Makes exactly the decisions :meth:`decide` would make, but
        applies the caps-only steady state in place through the
        controller's trusted same-instant journal (see
        :meth:`_plan_regulation`'s ``apply_to`` mode) instead of
        round-tripping an :class:`AllocationPlan`.  Rounds that can
        admit, land on a dirty same-instant journal, or trigger the
        rare compute repartition fall back to the plan seam, so every
        non-steady-state mutation still flows through the controller
        verbatim.  Never called under ``REPRO_CHECK=1`` (the engine
        drops to decide()/apply so the sanitizer re-validates every
        trusted plan).
        """
        ctrl = sim.controller
        if self._runtime is None:
            self._lazy_init(sim)
        free = sim.soc.num_tiles - sim._tiles_held
        if sim.ready and free >= self._tiles_per_task:
            # Admission rounds (rare): the plan seam verbatim.
            plan = self.decide(sim)
            if plan is EMPTY_PLAN:
                ctrl.plans_noop += 1
            else:
                ctrl.apply(plan)
            return
        now = sim.now
        if now != ctrl._paid_instant:
            ctrl._paid_instant = now
            if ctrl._paid:
                ctrl._paid.clear()
            if ctrl._pending_caps:
                ctrl._pending_caps.clear()
        elif ctrl._paid or ctrl._pending_caps:
            # Same-instant dirty journal — unreachable under the
            # engine's strictly-increasing event clock (dt is clamped
            # to a positive minimum), kept as a correctness backstop:
            # the plan seam's journal semantics handle it.
            plan = self.decide(sim)
            if plan is EMPTY_PLAN:
                ctrl.plans_noop += 1
            else:
                ctrl.apply(plan)
            return
        boundaries = sim._boundaries
        applied = 0
        if self.fast_path and boundaries == self._seen_boundaries:
            # Unchanged retired-blocks counter ⇒ the regulation sweep
            # would skip every co-runner (see decide()).
            pass
        else:
            if boundaries != self._seen_boundaries:
                self._seen_boundaries = boundaries
                self._epoch += 1
            applied = self._plan_regulation(
                sim, sim.running, _NO_TILES, apply_to=ctrl
            )
        tiles: Tuple[Tuple[str, int], ...] = ()
        if self.enable_compute_repartition and free > 0 and not sim.ready:
            tiles = self._plan_compute_repartition(
                sim, sim.running, _NO_TILES, free, False
            )
        if applied:
            ctrl.plans_applied += 1
            ctrl.actions_applied += applied
        if tiles:
            # The repartition (rare) still rides the plan seam; note
            # the caps above were already applied, matching the
            # combined plan's apply order (retiles read nothing the
            # caps change, and stall extensions commute).
            ctrl.apply(AllocationPlan.trusted(tiles=tiles))
        elif not applied:
            ctrl.plans_noop += 1

    # -- Algorithm 3: admission -----------------------------------------

    def _schedulable(self, sim: "Simulator", job: "Job") -> SchedulableTask:
        """The scheduler's task-queue record for a waiting job.

        Cached per job for the whole wait: every static field is
        fixed at dispatch, and the scheduler overwrites the mutable
        ``score`` / ``mem_intensive`` fields at the start of each
        round anyway.  (MoCA never preempts, so a waiting job's
        ``block_idx`` is pinned at its first-seen value.)
        """
        assert self._predictor is not None
        entry = self._sched_cache.get(job.job_id)
        if entry is None:
            tiles = self.scheduler_config.tiles_per_task
            cost = job.task.cost
            est = self._predictor.remaining(cost, job.block_idx, tiles)
            total_dram = sum(
                b.from_dram_bytes for b in cost.blocks[job.block_idx:]
            )
            entry = SchedulableTask(
                task_id=job.job_id,
                dispatched_at=job.task.dispatch_cycle,
                user_priority=job.task.priority,
                target_latency=job.task.qos_target_cycles,
                estimated_time=max(est, 1.0),
                est_avg_bw=total_dram / est if est > 0 else 0.0,
            )
            self._sched_cache[job.job_id] = entry
        return entry

    def _plan_admissions(
        self, sim: "Simulator"
    ) -> List[Tuple[str, int]]:
        """Algorithm 3's admissions as ``(job_id, tiles)`` pairs."""
        assert self._scheduler is not None
        if not sim.ready:
            return []
        queue = [self._schedulable(sim, job) for job in sim.ready]
        selected = self._scheduler.select(sim.now, queue, sim.free_tiles)
        base = self.scheduler_config.tiles_per_task
        free = sim.free_tiles
        admissions: List[Tuple[str, int]] = []
        for i, entry in enumerate(selected):
            # Admission-time compute sizing (free — no migration):
            # when the queue is drained and tiles are plentiful, grant
            # admitted jobs a larger share instead of leaving tiles
            # idle; under load everyone gets the base slot.
            remaining_admits = len(selected) - i
            backlog = len(queue) - len(selected)
            if backlog > 0:
                tiles = base
            else:
                tiles = min(
                    2 * base, max(base, free // remaining_admits)
                )
            tiles = min(tiles, free)
            admissions.append((entry.task_id, tiles))
            free -= tiles
        return admissions

    # -- Algorithm 2: bandwidth regulation --------------------------------

    def _plan_regulation(
        self,
        sim: "Simulator",
        planned_running: List["Job"],
        admitted_tiles: Dict[str, int],
        apply_to=None,
    ) -> object:
        """Algorithm 2 over the planned running set; returns the
        ``bw_caps`` overlay.  Jobs whose regulation key is unchanged
        get no entry (their cap is left alone).  ``admitted_tiles``
        overlays this plan's admissions onto the live tile counts.

        With ``apply_to`` set to the engine's controller (the horizon
        kernel's fused mode, see :meth:`kernel_decide_apply`), each
        changed cap is applied in place the moment the sweep derives
        it — the exact primitives of the controller's trusted
        caps-only path: the tolerance-filtered recap, the central
        memory-reconfiguration stall, the same-instant charge journal
        append, and the trace record — and the return value is the
        applied-mutation count instead of the overlay tuple.  The
        application order equals the overlay's tuple order, so engine
        state after the round is bit-identical either way.

        The whole decision round runs as **one fused sweep**: per-job
        demand/remain extraction (cached per ``(block, tiles)``),
        dynamic scoring, contention detection against a round-local
        mirror of the scoreboard, publication, and the cap diff all
        happen in a single loop — no intermediate item tuples, no
        second pass.  :meth:`~repro.core.runtime.MoCARuntime.\\
        regulate_batch` (itself pinned to ``update_app``) stays as the
        validated reference for this sweep: every float operation here
        replicates its sequence exactly — the co-runner demand sum and
        the water-fill input lists walk the scoreboard in publication
        order, each job sees its predecessors' freshly published
        rates, and the cap tolerance compare is unchanged — so the
        emitted overlay is bit-identical (property-pinned in
        ``tests/test_vectorized.py``).
        """
        assert self._runtime is not None and self._predictor is not None
        # The runtime's regulation constants, bundled once at
        # _lazy_init: one attribute read and a tuple unpack instead of
        # re-walking the runtime/scoreboard/predictor attribute chains
        # on every round.
        (
            entries, dram_bw, dram_bw_tol, overflow_cut,
            min_bw_rate, urgency_cap, suffix_of,
        ) = self._reg_consts
        now = sim.now
        epoch = self._epoch
        # With the fast path on, decide() only reaches this sweep
        # after bumping the co-runner epoch (admissions, boundary
        # change — the finish hook bumps too), so every job's
        # ``(block, epoch)`` key is new by construction and the
        # per-job probe/store of the regulation-key dict is dead
        # weight.  Comparators that shadow fast_path off re-enter
        # with an unchanged epoch and still need the key skip to
        # avoid re-extending reconfiguration stalls.
        track_keys = not self.fast_path
        regulated = self._regulated_block
        suffix_cache = self._suffix_cache
        item_cache = self._item_cache
        # Persistent mirror of the scoreboard in publication order:
        # parallel demand/score/entry lists plus an id -> index map,
        # updated in place as each job publishes, so per-job co-runner
        # sweeps read plain list slots (same values, same publication
        # order — every float sum keeps the reference operation
        # sequence).  Rebuilt only when the scoreboard changed outside
        # this sweep (retire, reset — both drop the mirror).
        mirror = self._sb_mirror
        if mirror is None or mirror[0] is not entries:
            ent_arr = list(entries.values())
            demand_arr = [e.demand for e in ent_arr]
            score_arr = [e.score for e in ent_arr]
            idx_of = {a: i for i, a in enumerate(entries)}
            self._sb_mirror = (
                entries, ent_arr, demand_arr, score_arr, idx_of
            )
        else:
            _, ent_arr, demand_arr, score_arr, idx_of = mirror
        n_apps = len(ent_arr)
        caps: List[Tuple[str, Optional[float]]] = []
        n_applied = 0
        bumps = 0
        if apply_to is not None:
            mem_stall = apply_to._memory_stall
            pend = apply_to._pending_caps
            trace = sim.trace
            trace_on = trace.enabled
        for job in planned_running:
            # Algorithm 2 runs once per (layer block, co-runner epoch):
            # at every block boundary, plus once more whenever the
            # running set changed mid-block.  Re-running on every event
            # would re-extend the reconfiguration stall forever.
            jid = job.job_id
            bi = job.block_idx
            if track_keys:
                key = (bi, epoch)
                if regulated.get(jid) == key:
                    continue
                regulated[jid] = key
            if admitted_tiles:
                num_tiles = admitted_tiles.get(jid, job.tiles)
            else:
                num_tiles = job.tiles
            # Demand (straight off the engine's SoA runtime table —
            # the same float bw_demand would return), suffix remain
            # and the task's fixed deadline/priority, cached per
            # (block, tiles): jobs are re-regulated once per co-runner
            # epoch but revisit the same block several rounds in a
            # row, and the cached tuple keeps the whole item off the
            # task object.
            cached = item_cache.get(jid)
            if cached is None or cached[0] != bi or cached[1] != num_tiles:
                task = job.task
                sfx = suffix_cache.get(jid)
                if sfx is None or sfx[0] != num_tiles:
                    sfx = (num_tiles, suffix_of(task.cost, num_tiles))
                    if (
                        jid not in suffix_cache
                        and len(suffix_cache) >= _JOB_CACHE_CAP
                    ):
                        del suffix_cache[next(iter(suffix_cache))]
                    suffix_cache[jid] = sfx
                cached = (
                    bi,
                    num_tiles,
                    job._table.demand_rows[bi][num_tiles - 1],
                    sfx[1][bi],
                    task.deadline,
                    task.priority,
                )
                if (
                    jid not in item_cache
                    and len(item_cache) >= _JOB_CACHE_CAP
                ):
                    del item_cache[next(iter(item_cache))]
                item_cache[jid] = cached
            demand = cached[2]
            # Line 6: dynamic priority score (dynamic_score inlined;
            # remain >= 0 is guaranteed by the predictor).
            slack = cached[4] - now
            if slack <= 0:
                score = cached[5] + urgency_cap
            else:
                u = cached[3] / slack
                score = cached[5] + (
                    u if u < urgency_cap else urgency_cap
                )
            # Lines 9-14: co-runner demand sum in publication order,
            # exactly as sum(other_demands.values()) does.
            i_self = idx_of.get(jid, -1)
            other_bw = 0.0
            for i in range(n_apps):
                if i != i_self:
                    other_bw += demand_arr[i]
            if demand + other_bw - dram_bw > overflow_cut and demand > 0:
                # Contention (lines 16-18).  ``other_bw + demand`` is
                # the same float sequence the reference wants sum
                # produced (same addends, same order), so the
                # early-exit threshold is bit-identical.  Only this
                # app's grant is consumed, and it sits at a fixed
                # index: last — the water-fill inputs (co-runners in
                # scoreboard order, this app last, uncapped wants =
                # demands, scores as weights with the denormal
                # filter) are built only when the fill actually runs.
                if other_bw + demand <= dram_bw_tol:
                    share = demand
                else:
                    # Co-runner wants are demand_arr minus this app's
                    # slot (C-level slices); the weights keep the
                    # per-element denormal filter.
                    if i_self < 0:
                        wants = demand_arr.copy()
                    else:
                        wants = (
                            demand_arr[:i_self]
                            + demand_arr[i_self + 1:]
                        )
                    wants.append(demand)
                    weights = []
                    wappend = weights.append
                    for i in range(n_apps):
                        if i != i_self:
                            s = score_arr[i]
                            wappend(s if s > 1e-9 else 0.0)
                    wappend(score if score > 1e-9 else 0.0)
                    share = waterfill_grant_last(
                        wants, weights, dram_bw
                    )
                g = share if share > min_bw_rate else min_bw_rate
                bw_rate = g if g < demand else demand
                cap = bw_rate
            else:
                bw_rate = demand
                cap = None
            # Publish (line 25) straight into the live entry and the
            # round mirror, so successor jobs see this publication.
            if i_self < 0:
                entry = ScoreboardEntry(
                    bw_rate=bw_rate, demand=demand, score=score
                )
                entries[jid] = entry
                idx_of[jid] = n_apps
                ent_arr.append(entry)
                demand_arr.append(demand)
                score_arr.append(score)
                n_apps += 1
            else:
                entry = ent_arr[i_self]
                entry.bw_rate = bw_rate
                entry.demand = demand
                entry.score = score
                demand_arr[i_self] = demand
                score_arr[i_self] = score
            old = job.bw_cap
            if old == cap or (
                old is not None and cap is not None
                and abs(old - cap) < 1e-9
            ):
                # Restating the live cap: the engine would no-op it
                # anyway (same tolerance), so the plan omits the
                # entry — most regulation rounds then emit EMPTY_PLAN
                # and skip plan construction entirely.
                continue
            if apply_to is None:
                caps.append((jid, cap))
                continue
            # Fused in-place recap — set_bw_cap(charge=False) plus the
            # controller's central stall charge and journal append,
            # with the validation the state proves: the job is RUNNING
            # (planned_running is the live running list here; admission
            # rounds take the plan seam) and a non-None cap is positive
            # (min_bw_rate > 0 is validated at runtime construction).
            # The kernel never applies inside an allocation batch, so
            # the epoch bumps are raw increments — accumulated locally
            # and added to the engine's counter once at the end of the
            # sweep (nothing reads the epoch mid-round; only that it
            # moved matters, and the final count is identical).
            job.bw_cap = cap
            job.bw_reconfigs += 1
            bumps += 1
            if trace_on:
                trace.log(
                    now, TraceEvent.BW_RECONFIG, jid,
                    f"cap="
                    f"{'none' if cap is None else f'{cap:.2f}B/cyc'}",
                )
            if mem_stall:
                su = job.stall_until
                base = su if su > now else now
                new_until = now + mem_stall
                if new_until > base:
                    job.stall_cycles += new_until - base
                    job.stall_until = new_until
                    bumps += 1
            pend.append((jid, cap))
            n_applied += 1
        if apply_to is not None:
            if bumps:
                sim._alloc_epoch += bumps
            return n_applied
        return tuple(caps)

    # -- Rare compute repartition -----------------------------------------

    def _plan_compute_repartition(
        self,
        sim: "Simulator",
        planned_running: List["Job"],
        admitted_tiles: Dict[str, int],
        extra: int,
        ready_after: bool,
    ) -> Tuple[Tuple[str, int], ...]:
        """Grant idle tiles to a job predicted to miss its SLA, only
        when the predicted gain clearly beats the migration stall."""
        assert self._predictor is not None
        if extra <= 0 or ready_after:
            return ()
        best_job = None
        best_gain = 0.0
        for job in planned_running:
            if not job.at_block_boundary:
                continue
            tiles = admitted_tiles.get(job.job_id, job.tiles)
            remain_now = self._predictor.remaining(
                job.task.cost, job.block_idx, tiles
            )
            slack = job.task.deadline - sim.now
            if remain_now <= slack:
                continue  # on track; leave it alone
            remain_more = self._predictor.remaining(
                job.task.cost, job.block_idx, tiles + extra
            )
            gain = remain_now - remain_more
            if gain > best_gain:
                best_gain = gain
                best_job = job
        if (
            best_job is not None
            and best_gain > 2.0 * self.compute_reconfig_cycles
        ):
            target = admitted_tiles.get(
                best_job.job_id, best_job.tiles
            ) + extra
            return ((best_job.job_id, target),)
        return ()

    # ------------------------------------------------------------------

    def on_job_finished(self, sim: "Simulator", job: "Job") -> None:
        """Retire the job from the runtime scoreboard."""
        if self._runtime is not None:
            self._runtime.retire_app(job.job_id)
        self._sched_cache.pop(job.job_id, None)
        self._regulated_block.pop(job.job_id, None)
        self._suffix_cache.pop(job.job_id, None)
        self._item_cache.pop(job.job_id, None)
        self._sb_mirror = None
        self._epoch += 1

    def reset(self) -> None:
        """Clear all per-simulation state."""
        self._runtime = None
        self._scheduler = None
        self._predictor = None
        self._sched_cache.clear()
        self._regulated_block.clear()
        self._suffix_cache.clear()
        self._item_cache.clear()
        self._sb_mirror = None
        self._reg_consts = None
        self._epoch = 0
        self._seen_boundaries = -1
