"""The full MoCA system as a simulator policy.

Wires the three MoCA components (Figure 3) onto the simulation engine:

- **Scheduler** (Algorithm 3): at every scheduling opportunity, scores
  waiting tasks by priority + waiting slowdown, flags memory-intensive
  ones, and admits a balanced co-running group onto fixed-size tile
  allocations.
- **Runtime** (Algorithm 2): at every block boundary of every running
  job, re-estimates demand and slack, detects contention against the
  scoreboard, and re-derives the job's bandwidth allocation.
- **Hardware** (Section III-B): modelled by the per-job bandwidth cap
  the engine's arbiter enforces; each reconfiguration costs the 5-10
  cycle DMA issue-rate update, *not* a thread migration.

Compute repartitioning exists but is deliberately rare (Section III-C:
"MoCA's runtime triggers the compute resource partition much less
frequently to avoid its high overhead"): free tiles are granted to a
running job only when it is predicted to miss its SLA and the
predicted benefit clearly exceeds the migration stall.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.prediction import RemainingPrediction
from repro.core.runtime import MoCARuntime
from repro.core.scheduler import MoCAScheduler, SchedulableTask, SchedulerConfig
from repro.sim.plan import EMPTY_PLAN, AllocationPlan
from repro.sim.policy import Policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job


class MoCAPolicy(Policy):
    """Memory-centric adaptive multi-tenancy (the paper's system).

    Attributes:
        scheduler_config: Algorithm 3 tunables.
        enable_compute_repartition: Allow the rare tile regrant for
            SLA-critical jobs (on by default; the ablation benchmark
            turns it off).
    """

    name = "moca"

    #: Skip whole decision rounds while the engine's retired-blocks
    #: counter is unchanged (class attribute so benchmark comparators
    #: can shadow it with False to model the pre-fast-path system).
    #: The skip is exact: Algorithm 2 runs once per (layer block,
    #: co-runner epoch) key, and with MoCA never preempting, the keys
    #: only move through admissions (checked separately), block
    #: retirements and finishes — each of which ticks the counter.
    #: An unchanged counter with no admissions planned means the full
    #: regulation sweep would skip every co-runner and emit the same
    #: empty overlay.
    fast_path = True

    def __init__(
        self,
        scheduler_config: Optional[SchedulerConfig] = None,
        enable_compute_repartition: bool = True,
    ) -> None:
        self.scheduler_config = (
            scheduler_config if scheduler_config is not None
            else SchedulerConfig()
        )
        self.enable_compute_repartition = enable_compute_repartition
        self._runtime: Optional[MoCARuntime] = None
        self._scheduler: Optional[MoCAScheduler] = None
        self._predictor: Optional[RemainingPrediction] = None
        self._sched_cache: Dict[str, SchedulableTask] = {}
        self._regulated_block: Dict[str, tuple] = {}
        #: jid -> (num_tiles, suffix list) — the predictor's suffix-sum
        #: list pinned per job so each regulation item is a plain list
        #: index instead of a keyed cache probe.  Invalidated when the
        #: job's tile count changes (repartition/admission overlay).
        self._suffix_cache: Dict[str, tuple] = {}
        self._epoch = 0
        self._seen_boundaries = -1

    # ------------------------------------------------------------------

    def _lazy_init(self, sim: "Simulator") -> None:
        if self._runtime is None:
            self._runtime = MoCARuntime(sim.soc, sim.mem)
            self._scheduler = MoCAScheduler(
                sim.mem.dram_bandwidth, self.scheduler_config
            )
            self._predictor = RemainingPrediction(sim.soc, sim.mem)

    def decide(self, sim: "Simulator") -> AllocationPlan:
        """One MoCA decision round as a single declarative plan:
        admissions (Algorithm 3), bandwidth regulation (Algorithm 2)
        and the rare compute repartition — computed against the
        *planned* post-admission state, applied atomically by the
        engine's controller.

        Most events change nothing the regulation depends on; the
        fast path detects that via the engine's retired-blocks
        counter (see :attr:`fast_path`) and skips the whole
        regulation sweep — whose per-job keys would all still match —
        while the repartition check below still runs against the live
        running set either way."""
        if self._runtime is None:
            self._lazy_init(sim)
        if sim.ready and sim.free_tiles >= self.scheduler_config.tiles_per_task:
            admissions = self._plan_admissions(sim)
        else:
            # No tile budget for even one slot (or nothing waiting):
            # Algorithm 3 would select nobody; skip building the
            # schedulable queue at all.
            admissions = []
        boundaries = sim._boundaries
        if (
            not admissions
            and self.fast_path
            and boundaries == self._seen_boundaries
        ):
            # Unchanged retired-blocks counter ⇒ unchanged running set
            # and block indices ⇒ every job's regulation key still
            # matches: Algorithm 2 would skip every co-runner.
            planned_running = sim.running
            admitted_tiles: Dict[str, int] = {}
            bw_caps: Tuple[Tuple[str, Optional[float]], ...] = ()
        else:
            if admissions:
                # The planned running set: incumbents in engine order,
                # then the admitted jobs in admission order — exactly
                # the running list the engine will hold once the plan
                # is applied.  The co-runner set changed, so every
                # running app re-runs Algorithm 2 at its next
                # opportunity.
                by_id = {j.job_id: j for j in sim.ready}
                planned_running = list(sim.running) + [
                    by_id[jid] for jid, _ in admissions
                ]
                admitted_tiles = dict(admissions)
                self._epoch += 1
            else:
                # Read the live running list in place, no copies.
                planned_running = sim.running
                admitted_tiles = {}
            # The demand picture changes whenever any co-runner enters
            # a new layer block (its bandwidth appetite is per-block);
            # bump the regulation epoch so every running app re-runs
            # Algorithm 2.  The engine's retired-blocks counter is an
            # exact change detector for the (job, block) signature
            # here: MoCA never preempts, so the planned running set
            # only shifts through admissions (the epoch bump above),
            # block retirements, and finishes — and the latter two
            # each tick the counter.
            if boundaries != self._seen_boundaries:
                self._seen_boundaries = boundaries
                self._epoch += 1
            bw_caps = self._plan_regulation(
                sim, planned_running, admitted_tiles
            )
        tiles: Tuple[Tuple[str, int], ...] = ()
        if self.enable_compute_repartition:
            free_after = sim.free_tiles
            if admissions:
                for _, t in admissions:
                    free_after -= t
            ready_after = len(sim.ready) > len(admissions)
            if free_after > 0 and not ready_after:
                tiles = self._plan_compute_repartition(
                    sim, planned_running, admitted_tiles, free_after,
                    ready_after,
                )
        if not admissions and not bw_caps and not tiles:
            return EMPTY_PLAN
        # Built from live ready/running jobs with unique ids by
        # construction: the trusted constructor skips re-validation.
        return AllocationPlan.trusted(
            admissions=tuple(admissions), tiles=tiles, bw_caps=bw_caps
        )

    # -- Algorithm 3: admission -----------------------------------------

    def _schedulable(self, sim: "Simulator", job: "Job") -> SchedulableTask:
        """The scheduler's task-queue record for a waiting job.

        Cached per job for the whole wait: every static field is
        fixed at dispatch, and the scheduler overwrites the mutable
        ``score`` / ``mem_intensive`` fields at the start of each
        round anyway.  (MoCA never preempts, so a waiting job's
        ``block_idx`` is pinned at its first-seen value.)
        """
        assert self._predictor is not None
        entry = self._sched_cache.get(job.job_id)
        if entry is None:
            tiles = self.scheduler_config.tiles_per_task
            cost = job.task.cost
            est = self._predictor.remaining(cost, job.block_idx, tiles)
            total_dram = sum(
                b.from_dram_bytes for b in cost.blocks[job.block_idx:]
            )
            entry = SchedulableTask(
                task_id=job.job_id,
                dispatched_at=job.task.dispatch_cycle,
                user_priority=job.task.priority,
                target_latency=job.task.qos_target_cycles,
                estimated_time=max(est, 1.0),
                est_avg_bw=total_dram / est if est > 0 else 0.0,
            )
            self._sched_cache[job.job_id] = entry
        return entry

    def _plan_admissions(
        self, sim: "Simulator"
    ) -> List[Tuple[str, int]]:
        """Algorithm 3's admissions as ``(job_id, tiles)`` pairs."""
        assert self._scheduler is not None
        if not sim.ready:
            return []
        queue = [self._schedulable(sim, job) for job in sim.ready]
        selected = self._scheduler.select(sim.now, queue, sim.free_tiles)
        base = self.scheduler_config.tiles_per_task
        free = sim.free_tiles
        admissions: List[Tuple[str, int]] = []
        for i, entry in enumerate(selected):
            # Admission-time compute sizing (free — no migration):
            # when the queue is drained and tiles are plentiful, grant
            # admitted jobs a larger share instead of leaving tiles
            # idle; under load everyone gets the base slot.
            remaining_admits = len(selected) - i
            backlog = len(queue) - len(selected)
            if backlog > 0:
                tiles = base
            else:
                tiles = min(
                    2 * base, max(base, free // remaining_admits)
                )
            tiles = min(tiles, free)
            admissions.append((entry.task_id, tiles))
            free -= tiles
        return admissions

    # -- Algorithm 2: bandwidth regulation --------------------------------

    def _plan_regulation(
        self,
        sim: "Simulator",
        planned_running: List["Job"],
        admitted_tiles: Dict[str, int],
    ) -> Tuple[Tuple[str, Optional[float]], ...]:
        """Algorithm 2 over the planned running set; returns the
        ``bw_caps`` overlay.  Jobs whose regulation key is unchanged
        get no entry (their cap is left alone).  ``admitted_tiles``
        overlays this plan's admissions onto the live tile counts."""
        assert self._runtime is not None and self._predictor is not None
        items: List[tuple] = []
        jobs: List["Job"] = []
        now = sim.now
        epoch = self._epoch
        regulated = self._regulated_block
        suffix_of = self._predictor.suffix
        suffix_cache = self._suffix_cache
        for job in planned_running:
            # Algorithm 2 runs once per (layer block, co-runner epoch):
            # at every block boundary, plus once more whenever the
            # running set changed mid-block.  Re-running on every event
            # would re-extend the reconfiguration stall forever.
            jid = job.job_id
            bi = job.block_idx
            key = (bi, epoch)
            if regulated.get(jid) == key:
                continue
            regulated[jid] = key
            task = job.task
            if admitted_tiles:
                num_tiles = admitted_tiles.get(jid, job.tiles)
            else:
                num_tiles = job.tiles
            cached = suffix_cache.get(jid)
            if cached is None or cached[0] != num_tiles:
                cached = (num_tiles, suffix_of(task.cost, num_tiles))
                suffix_cache[jid] = cached
            remain = cached[1][bi]
            # The block's unconstrained demand comes straight from the
            # engine's SoA runtime table — the same float bw_demand
            # would return, without the per-call memo probe.
            items.append((
                jid,
                job._table.demand_rows[bi][num_tiles - 1],
                task.priority,
                remain,
                task.deadline - now,
            ))
            jobs.append(job)
        if not items:
            return ()
        caps: List[Tuple[str, Optional[float]]] = []
        decisions = self._runtime.regulate_batch(items)
        for job, (jid, contention, bw_rate) in zip(jobs, decisions):
            cap = bw_rate if contention else None
            old = job.bw_cap
            if old == cap or (
                old is not None and cap is not None
                and abs(old - cap) < 1e-9
            ):
                # Restating the live cap: the engine would no-op it
                # anyway (same tolerance), so the plan omits the
                # entry — most regulation rounds then emit EMPTY_PLAN
                # and skip plan construction entirely.
                continue
            caps.append((jid, cap))
        return tuple(caps)

    # -- Rare compute repartition -----------------------------------------

    def _plan_compute_repartition(
        self,
        sim: "Simulator",
        planned_running: List["Job"],
        admitted_tiles: Dict[str, int],
        extra: int,
        ready_after: bool,
    ) -> Tuple[Tuple[str, int], ...]:
        """Grant idle tiles to a job predicted to miss its SLA, only
        when the predicted gain clearly beats the migration stall."""
        assert self._predictor is not None
        if extra <= 0 or ready_after:
            return ()
        best_job = None
        best_gain = 0.0
        for job in planned_running:
            if not job.at_block_boundary:
                continue
            tiles = admitted_tiles.get(job.job_id, job.tiles)
            remain_now = self._predictor.remaining(
                job.task.cost, job.block_idx, tiles
            )
            slack = job.task.deadline - sim.now
            if remain_now <= slack:
                continue  # on track; leave it alone
            remain_more = self._predictor.remaining(
                job.task.cost, job.block_idx, tiles + extra
            )
            gain = remain_now - remain_more
            if gain > best_gain:
                best_gain = gain
                best_job = job
        if (
            best_job is not None
            and best_gain > 2.0 * self.compute_reconfig_cycles
        ):
            target = admitted_tiles.get(
                best_job.job_id, best_job.tiles
            ) + extra
            return ((best_job.job_id, target),)
        return ()

    # ------------------------------------------------------------------

    def on_job_finished(self, sim: "Simulator", job: "Job") -> None:
        """Retire the job from the runtime scoreboard."""
        if self._runtime is not None:
            self._runtime.retire_app(job.job_id)
        self._sched_cache.pop(job.job_id, None)
        self._regulated_block.pop(job.job_id, None)
        self._suffix_cache.pop(job.job_id, None)
        self._epoch += 1

    def reset(self) -> None:
        """Clear all per-simulation state."""
        self._runtime = None
        self._scheduler = None
        self._predictor = None
        self._sched_cache.clear()
        self._regulated_block.clear()
        self._suffix_cache.clear()
        self._epoch = 0
        self._seen_boundaries = -1
