"""The full MoCA system as a simulator policy.

Wires the three MoCA components (Figure 3) onto the simulation engine:

- **Scheduler** (Algorithm 3): at every scheduling opportunity, scores
  waiting tasks by priority + waiting slowdown, flags memory-intensive
  ones, and admits a balanced co-running group onto fixed-size tile
  allocations.
- **Runtime** (Algorithm 2): at every block boundary of every running
  job, re-estimates demand and slack, detects contention against the
  scoreboard, and re-derives the job's bandwidth allocation.
- **Hardware** (Section III-B): modelled by the per-job bandwidth cap
  the engine's arbiter enforces; each reconfiguration costs the 5-10
  cycle DMA issue-rate update, *not* a thread migration.

Compute repartitioning exists but is deliberately rare (Section III-C:
"MoCA's runtime triggers the compute resource partition much less
frequently to avoid its high overhead"): free tiles are granted to a
running job only when it is predicted to miss its SLA and the
predicted benefit clearly exceeds the migration stall.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.prediction import RemainingPrediction
from repro.core.runtime import MoCARuntime
from repro.core.scheduler import MoCAScheduler, SchedulableTask, SchedulerConfig
from repro.sim.plan import EMPTY_PLAN, AllocationPlan
from repro.sim.policy import Policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.job import Job


class MoCAPolicy(Policy):
    """Memory-centric adaptive multi-tenancy (the paper's system).

    Attributes:
        scheduler_config: Algorithm 3 tunables.
        enable_compute_repartition: Allow the rare tile regrant for
            SLA-critical jobs (on by default; the ablation benchmark
            turns it off).
    """

    name = "moca"

    def __init__(
        self,
        scheduler_config: Optional[SchedulerConfig] = None,
        enable_compute_repartition: bool = True,
    ) -> None:
        self.scheduler_config = (
            scheduler_config if scheduler_config is not None
            else SchedulerConfig()
        )
        self.enable_compute_repartition = enable_compute_repartition
        self._runtime: Optional[MoCARuntime] = None
        self._scheduler: Optional[MoCAScheduler] = None
        self._predictor: Optional[RemainingPrediction] = None
        self._est_cache: Dict[str, float] = {}
        self._bw_cache: Dict[str, float] = {}
        self._regulated_block: Dict[str, tuple] = {}
        self._epoch = 0
        self._last_signature: tuple = ()

    # ------------------------------------------------------------------

    def _lazy_init(self, sim: "Simulator") -> None:
        if self._runtime is None:
            self._runtime = MoCARuntime(sim.soc, sim.mem)
            self._scheduler = MoCAScheduler(
                sim.mem.dram_bandwidth, self.scheduler_config
            )
            self._predictor = RemainingPrediction(sim.soc, sim.mem)

    def decide(self, sim: "Simulator") -> AllocationPlan:
        """One MoCA decision round as a single declarative plan:
        admissions (Algorithm 3), bandwidth regulation (Algorithm 2)
        and the rare compute repartition — computed against the
        *planned* post-admission state, applied atomically by the
        engine's controller."""
        self._lazy_init(sim)
        admissions = self._plan_admissions(sim)
        if admissions:
            # The planned running set: incumbents in engine order,
            # then the admitted jobs in admission order — exactly the
            # running list the engine will hold once the plan is
            # applied.  The co-runner set changed, so every running
            # app re-runs Algorithm 2 at its next opportunity.
            by_id = {j.job_id: j for j in sim.ready}
            planned_running = list(sim.running) + [
                by_id[jid] for jid, _ in admissions
            ]
            admitted_tiles = dict(admissions)
            self._epoch += 1
        else:
            # Hot path (most events admit nothing): read the live
            # running list in place, no copies.
            planned_running = sim.running
            admitted_tiles = {}
        # The demand picture changes whenever any co-runner enters a
        # new layer block (its bandwidth appetite is per-block); bump
        # the regulation epoch so every running app re-runs Algorithm 2.
        signature = tuple(
            sorted((j.job_id, j.block_idx) for j in planned_running)
        )
        if signature != self._last_signature:
            self._last_signature = signature
            self._epoch += 1
        bw_caps = self._plan_regulation(sim, planned_running, admitted_tiles)
        tiles: Tuple[Tuple[str, int], ...] = ()
        if self.enable_compute_repartition:
            free_after = sim.free_tiles - sum(t for _, t in admissions)
            ready_after = len(sim.ready) > len(admissions)
            tiles = self._plan_compute_repartition(
                sim, planned_running, admitted_tiles, free_after,
                ready_after,
            )
        if not admissions and not bw_caps and not tiles:
            return EMPTY_PLAN
        return AllocationPlan(
            admissions=tuple(admissions), tiles=tiles, bw_caps=bw_caps
        )

    # -- Algorithm 3: admission -----------------------------------------

    def _schedulable(self, sim: "Simulator", job: "Job") -> SchedulableTask:
        """Build the scheduler's task-queue record for a waiting job."""
        assert self._predictor is not None
        tiles = self.scheduler_config.tiles_per_task
        cost = job.task.cost
        if job.job_id not in self._est_cache:
            est = self._predictor.remaining(cost, job.block_idx, tiles)
            self._est_cache[job.job_id] = max(est, 1.0)
            total_dram = sum(
                b.from_dram_bytes for b in cost.blocks[job.block_idx:]
            )
            self._bw_cache[job.job_id] = (
                total_dram / est if est > 0 else 0.0
            )
        return SchedulableTask(
            task_id=job.job_id,
            dispatched_at=job.task.dispatch_cycle,
            user_priority=job.task.priority,
            target_latency=job.task.qos_target_cycles,
            estimated_time=self._est_cache[job.job_id],
            est_avg_bw=self._bw_cache[job.job_id],
        )

    def _plan_admissions(
        self, sim: "Simulator"
    ) -> List[Tuple[str, int]]:
        """Algorithm 3's admissions as ``(job_id, tiles)`` pairs."""
        assert self._scheduler is not None
        if not sim.ready:
            return []
        queue = [self._schedulable(sim, job) for job in sim.ready]
        selected = self._scheduler.select(sim.now, queue, sim.free_tiles)
        base = self.scheduler_config.tiles_per_task
        free = sim.free_tiles
        admissions: List[Tuple[str, int]] = []
        for i, entry in enumerate(selected):
            # Admission-time compute sizing (free — no migration):
            # when the queue is drained and tiles are plentiful, grant
            # admitted jobs a larger share instead of leaving tiles
            # idle; under load everyone gets the base slot.
            remaining_admits = len(selected) - i
            backlog = len(queue) - len(selected)
            if backlog > 0:
                tiles = base
            else:
                tiles = min(
                    2 * base, max(base, free // remaining_admits)
                )
            tiles = min(tiles, free)
            admissions.append((entry.task_id, tiles))
            free -= tiles
        return admissions

    # -- Algorithm 2: bandwidth regulation --------------------------------

    def _plan_regulation(
        self,
        sim: "Simulator",
        planned_running: List["Job"],
        admitted_tiles: Dict[str, int],
    ) -> Tuple[Tuple[str, Optional[float]], ...]:
        """Algorithm 2 over the planned running set; returns the
        ``bw_caps`` overlay.  Jobs whose regulation key is unchanged
        get no entry (their cap is left alone).  ``admitted_tiles``
        overlays this plan's admissions onto the live tile counts."""
        assert self._runtime is not None and self._predictor is not None
        caps: List[Tuple[str, Optional[float]]] = []
        for job in planned_running:
            # Algorithm 2 runs once per (layer block, co-runner epoch):
            # at every block boundary, plus once more whenever the
            # running set changed mid-block.  Re-running on every event
            # would re-extend the reconfiguration stall forever.
            key = (job.block_idx, self._epoch)
            if self._regulated_block.get(job.job_id) == key:
                continue
            self._regulated_block[job.job_id] = key
            cost = job.task.cost
            num_tiles = admitted_tiles.get(job.job_id, job.tiles)
            remain = self._predictor.remaining(
                cost, job.block_idx, num_tiles
            )
            slack = job.task.deadline - sim.now
            decision = self._runtime.update_app(
                app_id=job.job_id,
                block=cost.blocks[job.block_idx],
                num_tiles=num_tiles,
                user_priority=job.task.priority,
                remain_prediction=remain,
                slack=slack,
            )
            cap = decision.bw_rate if decision.contention else None
            old = job.bw_cap
            if old == cap or (
                old is not None and cap is not None
                and abs(old - cap) < 1e-9
            ):
                # Restating the live cap: the engine would no-op it
                # anyway (same tolerance), so the plan omits the
                # entry — most regulation rounds then emit EMPTY_PLAN
                # and skip plan construction entirely.
                continue
            caps.append((job.job_id, cap))
        return tuple(caps)

    # -- Rare compute repartition -----------------------------------------

    def _plan_compute_repartition(
        self,
        sim: "Simulator",
        planned_running: List["Job"],
        admitted_tiles: Dict[str, int],
        extra: int,
        ready_after: bool,
    ) -> Tuple[Tuple[str, int], ...]:
        """Grant idle tiles to a job predicted to miss its SLA, only
        when the predicted gain clearly beats the migration stall."""
        assert self._predictor is not None
        if extra <= 0 or ready_after:
            return ()
        best_job = None
        best_gain = 0.0
        for job in planned_running:
            if not job.at_block_boundary:
                continue
            tiles = admitted_tiles.get(job.job_id, job.tiles)
            remain_now = self._predictor.remaining(
                job.task.cost, job.block_idx, tiles
            )
            slack = job.task.deadline - sim.now
            if remain_now <= slack:
                continue  # on track; leave it alone
            remain_more = self._predictor.remaining(
                job.task.cost, job.block_idx, tiles + extra
            )
            gain = remain_now - remain_more
            if gain > best_gain:
                best_gain = gain
                best_job = job
        if (
            best_job is not None
            and best_gain > 2.0 * self.compute_reconfig_cycles
        ):
            target = admitted_tiles.get(
                best_job.job_id, best_job.tiles
            ) + extra
            return ((best_job.job_id, target),)
        return ()

    # ------------------------------------------------------------------

    def on_job_finished(self, sim: "Simulator", job: "Job") -> None:
        """Retire the job from the runtime scoreboard."""
        if self._runtime is not None:
            self._runtime.retire_app(job.job_id)
        self._est_cache.pop(job.job_id, None)
        self._bw_cache.pop(job.job_id, None)
        self._regulated_block.pop(job.job_id, None)
        self._epoch += 1

    def reset(self) -> None:
        """Clear all per-simulation state."""
        self._runtime = None
        self._scheduler = None
        self._predictor = None
        self._est_cache.clear()
        self._bw_cache.clear()
        self._regulated_block.clear()
        self._epoch = 0
        self._last_signature = ()
