"""Remaining-latency prediction with suffix-sum caching.

Both MoCA's runtime (Algorithm 2's ``remain_prediction``) and
Planaria's urgency estimate need "predicted latency of the network's
remaining blocks" at every block boundary.  Computed naively that is
O(blocks) per query; this helper precomputes suffix sums per
(network, tile-count) so each query is O(1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import SoCConfig
from repro.core.latency import NetworkCost
from repro.memory.hierarchy import MemoryHierarchy


class RemainingPrediction:
    """Suffix-sum cache of per-block latency predictions.

    Attributes:
        soc: SoC configuration (overlap_f, tile shape).
        mem: Memory hierarchy (bandwidths).
    """

    def __init__(self, soc: SoCConfig, mem: MemoryHierarchy) -> None:
        self.soc = soc
        self.mem = mem
        self._suffixes: Dict[Tuple[str, int], List[float]] = {}

    def _suffix(self, cost: NetworkCost, tiles: int) -> List[float]:
        key = (cost.network_name, tiles)
        if key not in self._suffixes:
            dram_bw = self.mem.dram_bandwidth
            l2_bw = self.mem.l2_bandwidth
            overlap_f = self.soc.overlap_f
            suffix = [0.0] * (len(cost.blocks) + 1)
            for i in range(len(cost.blocks) - 1, -1, -1):
                suffix[i] = suffix[i + 1] + cost.blocks[i].predict(
                    tiles, dram_bw, l2_bw, overlap_f
                )
            self._suffixes[key] = suffix
        return self._suffixes[key]

    def suffix(self, cost: NetworkCost, tiles: int) -> List[float]:
        """The suffix-sum list for ``(cost, tiles)``: entry ``i`` is
        the predicted cycles for blocks ``i`` onward (last entry 0).

        Hot-path accessor: callers that query many block indices for
        one (network, tiles) pair index this list directly instead of
        paying :meth:`remaining`'s key build per query.  Read-only by
        convention — the list is the live cache entry.
        """
        if tiles <= 0:
            raise ValueError("tiles must be positive")
        return self._suffix(cost, tiles)

    def remaining(self, cost: NetworkCost, block_idx: int, tiles: int) -> float:
        """Predicted cycles for blocks ``block_idx`` onward on ``tiles``.

        ``block_idx == len(blocks)`` returns 0 (network finished).
        """
        if tiles <= 0:
            raise ValueError("tiles must be positive")
        if not 0 <= block_idx <= len(cost.blocks):
            raise ValueError(
                f"block_idx {block_idx} outside 0..{len(cost.blocks)}"
            )
        return self._suffix(cost, tiles)[block_idx]

    def total(self, cost: NetworkCost, tiles: int) -> float:
        """Whole-network prediction on ``tiles`` tiles."""
        return self.remaining(cost, 0, tiles)

    def clear(self) -> None:
        """Drop all cached suffixes."""
        self._suffixes.clear()
