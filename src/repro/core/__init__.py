"""MoCA's core contribution: latency model, runtime, scheduler, policy."""

from repro.core.latency import (
    BlockCost,
    LayerEstimate,
    NetworkCost,
    build_block_cost,
    build_network_cost,
    cache_stats,
    clear_network_cost_cache,
    estimate_layer,
    estimate_network,
    reset_cache_stats,
    track_cache_deltas,
    warm_network_cost_cache,
)
from repro.core.runtime import MoCARuntime, RuntimeDecision
from repro.core.scheduler import MoCAScheduler, SchedulerConfig
from repro.core.scoreboard import Scoreboard

__all__ = [
    "BlockCost",
    "LayerEstimate",
    "MoCARuntime",
    "MoCAScheduler",
    "NetworkCost",
    "RuntimeDecision",
    "SchedulerConfig",
    "Scoreboard",
    "build_block_cost",
    "build_network_cost",
    "cache_stats",
    "clear_network_cost_cache",
    "estimate_layer",
    "estimate_network",
    "reset_cache_stats",
    "track_cache_deltas",
    "warm_network_cost_cache",
]
