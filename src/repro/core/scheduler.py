"""Algorithm 3: the MoCA priority- and memory-aware scheduler.

The scheduler selects which dispatched tasks run concurrently.  Each
scheduling round it:

1. scores every waiting task: the static user priority plus a
   *slowdown* term — how long the task has waited relative to its
   estimated isolated runtime — so starving tasks climb the queue;
2. flags tasks whose estimated average DRAM demand exceeds half the
   DRAM bandwidth as **memory-intensive**;
3. fills the execution group greedily by score, and whenever it admits
   a memory-intensive task it pairs it with the highest-scored
   *non*-memory-intensive task remaining, balancing the group's
   bandwidth appetite (this pairing is what lifts Workload-C's
   throughput in Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class SchedulableTask:
    """A task-queue entry (Section III-D's TaskQueue record).

    Attributes:
        task_id: Unique id.
        dispatched_at: Cycle the task entered the queue.
        user_priority: Static user-given priority (0-11).
        target_latency: SLA target in cycles (from dispatch).
        estimated_time: Estimated isolated runtime in cycles.
        est_avg_bw: Estimated average DRAM demand in bytes/cycle.
        score: Last computed dynamic score (set by the scheduler).
        mem_intensive: Last computed memory-intensiveness flag.
    """

    task_id: str
    dispatched_at: float
    user_priority: float
    target_latency: float
    estimated_time: float
    est_avg_bw: float
    score: float = 0.0
    mem_intensive: bool = False


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of the MoCA scheduler.

    Attributes:
        score_threshold: Minimum score for ExQueue admission (Alg. 3
            line 14). 0 admits every waiting task.
        mem_intensive_fraction: Fraction of DRAM bandwidth above which
            a task is flagged memory-intensive (paper: 0.5).
        tiles_per_task: Tiles granted to each admitted task.
        max_group: Maximum concurrently running tasks (None = derived
            from the tile budget).
    """

    score_threshold: float = 0.0
    mem_intensive_fraction: float = 0.5
    tiles_per_task: int = 2
    max_group: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.mem_intensive_fraction <= 1.0:
            raise ValueError("mem_intensive_fraction must be in (0, 1]")
        if self.tiles_per_task <= 0:
            raise ValueError("tiles_per_task must be positive")
        if self.max_group is not None and self.max_group <= 0:
            raise ValueError("max_group must be positive")


class MoCAScheduler:
    """The Algorithm 3 scheduler.

    Attributes:
        config: Scheduler tunables.
        dram_bandwidth: DRAM bandwidth in bytes/cycle, for the
            memory-intensiveness test.
    """

    def __init__(self, dram_bandwidth: float,
                 config: Optional[SchedulerConfig] = None) -> None:
        if dram_bandwidth <= 0:
            raise ValueError("dram_bandwidth must be positive")
        self.dram_bandwidth = dram_bandwidth
        self.config = config if config is not None else SchedulerConfig()

    def score_task(self, task: SchedulableTask, now: float) -> float:
        """Algorithm 3 lines 3-6: priority plus waiting slowdown."""
        waiting = max(0.0, now - task.dispatched_at)
        if task.estimated_time <= 0:
            raise ValueError(f"{task.task_id}: estimated_time must be > 0")
        slowdown = waiting / task.estimated_time
        return task.user_priority + slowdown

    def is_mem_intensive(self, task: SchedulableTask) -> bool:
        """Algorithm 3 line 7: average demand above the BW fraction."""
        threshold = self.config.mem_intensive_fraction * self.dram_bandwidth
        return task.est_avg_bw > threshold

    def select(
        self,
        now: float,
        queue: Sequence[SchedulableTask],
        available_tiles: int,
    ) -> List[SchedulableTask]:
        """Run one scheduling round.

        Args:
            now: Current cycle.
            queue: Waiting tasks.
            available_tiles: Free accelerator tiles.

        Returns:
            The tasks to start now, in admission order, each consuming
            ``config.tiles_per_task`` tiles.  Never admits more tasks
            than the tile budget (or ``config.max_group``) allows.
        """
        if available_tiles < 0:
            raise ValueError("available_tiles must be non-negative")
        slots = available_tiles // self.config.tiles_per_task
        if self.config.max_group is not None:
            slots = min(slots, self.config.max_group)
        if slots <= 0 or not queue:
            return []

        # Lines 1-12: update scores and memory-intensiveness flags.
        for task in queue:
            task.score = self.score_task(task, now)
            task.mem_intensive = self.is_mem_intensive(task)

        # Lines 14-15: populate and sort the execution queue.
        ex_queue = [
            t for t in queue if t.score > self.config.score_threshold
        ]
        ex_queue.sort(key=lambda t: (-t.score, t.dispatched_at, t.task_id))

        # Lines 17-25: form the co-running group, pairing each admitted
        # memory-intensive task with a non-memory-intensive co-runner.
        group: List[SchedulableTask] = []
        while ex_queue and len(group) < slots:
            current = ex_queue.pop(0)
            group.append(current)
            if current.mem_intensive and len(group) < slots:
                partner = self._find_non_mem_intensive(ex_queue)
                if partner is not None:
                    ex_queue.remove(partner)
                    group.append(partner)
        return group

    @staticmethod
    def _find_non_mem_intensive(
        ex_queue: Sequence[SchedulableTask],
    ) -> Optional[SchedulableTask]:
        """Algorithm 3 line 22: best non-memory-intensive candidate."""
        for task in ex_queue:
            if not task.mem_intensive:
                return task
        return None
