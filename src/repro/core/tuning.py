"""The ``overlap_f`` tuning utility.

Section III-C: *"We provide a tuning utility that determines the
optimal value of f for an SoC using data collected by running a few DNN
layers before starting inference queries."*

The utility takes a measurement callable (on the real system: run the
layer and time it; in this reproduction: the fluid simulator or any
user-supplied oracle), runs the probe layers, and picks the ``overlap_f``
minimizing mean relative error of Algorithm 1's predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.core.latency import estimate_layer
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.layers import Layer

MeasureFn = Callable[[Layer], float]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of an ``overlap_f`` sweep.

    Attributes:
        best_overlap_f: The error-minimizing value.
        best_error: Mean relative error at the best value.
        sweep: ``(overlap_f, mean_relative_error)`` pairs evaluated.
    """

    best_overlap_f: float
    best_error: float
    sweep: Tuple[Tuple[float, float], ...]


def mean_relative_error(
    layers: Sequence[Layer],
    measure: MeasureFn,
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
    num_tiles: int = 1,
) -> float:
    """Mean |prediction - measurement| / measurement over probe layers."""
    if not layers:
        raise ValueError("need at least one probe layer")
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)
    total = 0.0
    for layer in layers:
        measured = measure(layer)
        if measured <= 0:
            raise ValueError(f"{layer.name}: measurement must be positive")
        predicted = estimate_layer(
            layer, soc, mem, num_tiles=num_tiles
        ).prediction
        total += abs(predicted - measured) / measured
    return total / len(layers)


def tune_overlap_f(
    layers: Sequence[Layer],
    measure: MeasureFn,
    soc: SoCConfig,
    mem: Optional[MemoryHierarchy] = None,
    num_tiles: int = 1,
    candidates: Optional[Sequence[float]] = None,
) -> TuningResult:
    """Sweep ``overlap_f`` candidates and return the best fit.

    Args:
        layers: Probe layers ("a few DNN layers before starting
            inference queries").
        measure: Callable returning the measured latency in cycles.
        soc: Base SoC configuration (its overlap_f is ignored).
        mem: Memory hierarchy; built from ``soc`` when omitted.
        num_tiles: Tile allocation used for the probes.
        candidates: Values to sweep; default 0.0 .. 1.0 in steps of 0.05.

    Returns:
        The :class:`TuningResult`.
    """
    if candidates is None:
        candidates = [round(0.05 * i, 2) for i in range(21)]
    if not candidates:
        raise ValueError("need at least one candidate overlap_f")
    for f in candidates:
        if not 0.0 <= f <= 1.0:
            raise ValueError(f"overlap_f candidate {f} outside [0, 1]")
    if mem is None:
        mem = MemoryHierarchy.from_soc(soc)

    sweep = []
    for f in candidates:
        err = mean_relative_error(
            layers, measure, soc.with_overlap(f), mem, num_tiles
        )
        sweep.append((f, err))
    best_f, best_err = min(sweep, key=lambda pair: pair[1])
    return TuningResult(
        best_overlap_f=best_f, best_error=best_err, sweep=tuple(sweep)
    )
