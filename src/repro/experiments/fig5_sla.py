"""Figure 5: SLA satisfaction rate across QoS targets and workload sets.

Nine scenarios (Workload-A/B/C x QoS-H/M/L), four systems.  The
paper's headline claims this experiment must reproduce in shape:

- MoCA outperforms every baseline in every scenario;
- the margin over Planaria is largest at QoS-H (Planaria's thread
  migrations overwhelm light models);
- MoCA vs Prema geomean ~8.7x (max 18.1x), vs static ~1.8x (max 2.4x),
  vs Planaria ~1.8x (max 3.9x) — our analytical substrate reproduces
  the ordering and the QoS/workload trends, with smaller absolute
  ratios (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.experiments.runner import (
    ScenarioResult,
    ScenarioSpec,
    format_matrix_table,
    geomean_improvement,
    improvement_ratios,
    run_matrix,
    standard_matrix,
)

Matrix = Dict[str, Dict[str, ScenarioResult]]


def run_fig5(
    num_tasks: int = 250,
    seeds: Tuple[int, ...] = (1, 2, 3),
    soc: Optional[SoCConfig] = None,
    specs: Optional[Sequence[ScenarioSpec]] = None,
    workers: int = 1,
) -> Matrix:
    """Run the full Figure 5 matrix.

    ``workers > 1`` (or ``0`` for auto) distributes the matrix cells
    over a process pool (see :mod:`repro.experiments.parallel`).
    """
    if specs is None:
        specs = standard_matrix(num_tasks=num_tasks, seeds=seeds)
    return run_matrix(specs, soc=soc, workers=workers)


def format_fig5(matrix: Matrix) -> str:
    """Figure 5 table plus the paper's summary ratios."""
    lines = [
        format_matrix_table(
            matrix, "sla_rate", "Figure 5: SLA satisfaction rate"
        ),
        "",
        "MoCA improvement (geomean / max over scenarios):",
    ]
    for baseline in ("prema", "static", "planaria"):
        ratios = improvement_ratios(matrix, "sla_rate", baseline)
        geo = geomean_improvement(matrix, "sla_rate", baseline)
        lines.append(
            f"  vs {baseline:<9s} x{geo:.2f} geomean, "
            f"x{max(ratios.values()):.2f} max "
            f"(paper: {_PAPER_RATIOS[baseline]})"
        )
    return "\n".join(lines)


_PAPER_RATIOS = {
    "prema": "8.7x geomean, 18.1x max",
    "static": "1.8x geomean, 2.4x max",
    "planaria": "1.8x geomean, 3.9x max",
}
