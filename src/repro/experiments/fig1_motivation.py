"""Figure 1: latency increase from co-located DNN applications.

The paper co-locates four DNNs (ResNet-50, AlexNet, GoogLeNet,
SqueezeNet — its references [20], [29], [48], [23]) on the SoC with
*no* contention management, randomly staggers their start times, and
reports per-network average and worst-case end-to-end latency
normalized to isolated execution at co-location degrees x = 1..4, over
300 randomized runs.

We reproduce it exactly: each trial picks a subject network plus
``x - 1`` random co-runners, dispatches them at random offsets on
static 2-tile slots with unmanaged memory, and measures the subject's
runtime against its isolated 2-tile runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.static_partition import StaticPartitionPolicy
from repro.config import DEFAULT_SOC, SoCConfig
from repro.core.latency import build_network_cost
from repro.memory.hierarchy import MemoryHierarchy
from repro.models.zoo import build_model
from repro.sim.engine import run_simulation
from repro.sim.job import Task

#: The four DNNs of the motivation study.
FIG1_NETWORKS: Tuple[str, ...] = (
    "resnet50", "alexnet", "googlenet", "squeezenet"
)


@dataclass(frozen=True)
class Fig1Row:
    """One bar group of Figure 1.

    Attributes:
        network: Subject network name.
        degree: Co-location degree x (1 = isolated).
        avg_increase: Mean latency normalized to isolated (Fig. 1a).
        worst_increase: Worst-case normalized latency (Fig. 1b).
    """

    network: str
    degree: int
    avg_increase: float
    worst_increase: float


def _isolated_runtime(
    name: str, soc: SoCConfig, mem: MemoryHierarchy, tiles: int
) -> float:
    cost = build_network_cost(build_model(name), soc, mem)
    return cost.total_prediction(
        tiles, mem.dram_bandwidth, mem.l2_bandwidth, soc.overlap_f
    )


def run_fig1(
    soc: Optional[SoCConfig] = None,
    trials: int = 300,
    seed: int = 0,
    tiles_per_app: int = 2,
    networks: Sequence[str] = FIG1_NETWORKS,
) -> List[Fig1Row]:
    """Run the motivation study and return all Figure 1 bars."""
    if soc is None:
        soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    rng = random.Random(seed)
    iso = {
        n: _isolated_runtime(n, soc, mem, tiles_per_app) for n in networks
    }
    # Co-located applications also pressure the shared L2's capacity:
    # Algorithm 1's residency checks are evaluated with the trial's
    # sharer count, so inputs and data tiles that fit when alone spill
    # to DRAM when co-located.
    costs_by_sharers = {
        d: {
            n: build_network_cost(
                build_model(n), soc, mem, num_sharers=d
            )
            for n in networks
        }
        for d in range(1, len(networks) + 1)
    }

    # slowdowns[network][degree] -> list of normalized latencies.
    slowdowns: Dict[str, Dict[int, List[float]]] = {
        n: {d: [] for d in range(1, len(networks) + 1)} for n in networks
    }

    for trial in range(trials):
        subject = networks[trial % len(networks)]
        degree = rng.randint(1, len(networks))
        others = [n for n in networks if n != subject]
        rng.shuffle(others)
        co_runners = others[: degree - 1]

        # Co-runners dispatch at random offsets in a window around the
        # subject — before it as well as after — so any of a
        # co-runner's phases (e.g. AlexNet's memory-bound FC layers)
        # can overlap any part of the subject's run (the paper's
        # "different starting times"; SqueezeNet's >3x worst case
        # happens when its short run lands entirely inside a co-
        # runner's memory-intensive phase).
        costs = costs_by_sharers[degree]
        lead = max((iso[c] for c in co_runners), default=0.0)
        tasks = [_task("subject", subject, lead, costs[subject], iso)]
        for j, co in enumerate(co_runners):
            offset = rng.uniform(0.0, lead + iso[subject])
            tasks.append(_task(f"co{j}", co, offset, costs[co], iso))

        result = run_simulation(
            soc, tasks, StaticPartitionPolicy(tiles_per_slot=tiles_per_app),
            mem=mem,
        )
        subject_result = result.result_for("subject")
        slowdowns[subject][degree].append(
            subject_result.runtime / iso[subject]
        )

    rows: List[Fig1Row] = []
    for network in networks:
        for degree in range(1, len(networks) + 1):
            values = slowdowns[network][degree]
            if not values:
                continue
            rows.append(
                Fig1Row(
                    network=network,
                    degree=degree,
                    avg_increase=sum(values) / len(values),
                    worst_increase=max(values),
                )
            )
    return rows


def _task(task_id, network_name, dispatch, cost, iso) -> Task:
    return Task(
        task_id=task_id,
        network_name=network_name,
        cost=cost,
        dispatch_cycle=dispatch,
        priority=5,
        qos_target_cycles=1.0e18,  # the motivation study has no SLA
        isolated_cycles=iso[network_name],
    )


def format_fig1(rows: Sequence[Fig1Row]) -> str:
    """Render Figure 1 as an aligned text table."""
    lines = [
        "Figure 1: latency increase under co-location "
        "(normalized to isolated)",
        f"{'network':<12s}{'x':>3s}{'avg':>8s}{'worst':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.network:<12s}{r.degree:>3d}"
            f"{r.avg_increase:>8.2f}{r.worst_increase:>8.2f}"
        )
    return "\n".join(lines)
