"""Figure 7: system throughput (STP) normalized to Planaria.

Same nine scenarios as Figure 5; the metric is Equation 2's STP, and
each bar is a system's STP divided by Planaria's in that scenario.
Shapes to hold: MoCA > 1 everywhere (paper: 1.7x geomean over
Planaria, 2.3x max; 1.7x over static; 12.5x over Prema), with the
biggest MoCA gains on Workload-A (migration overhead on light models)
and Workload-C (memory-aware layer grouping).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.experiments.fig5_sla import Matrix, run_fig5
from repro.experiments.runner import (
    POLICY_ORDER,
    ScenarioSpec,
    geomean_improvement,
)


def run_fig7(
    num_tasks: int = 250,
    seeds: Tuple[int, ...] = (1, 2, 3),
    soc: Optional[SoCConfig] = None,
    specs: Optional[Sequence[ScenarioSpec]] = None,
) -> Matrix:
    """Figure 7 reuses the Figure 5 matrix (same simulations)."""
    return run_fig5(num_tasks=num_tasks, seeds=seeds, soc=soc, specs=specs)


def stp_normalized_to_planaria(matrix: Matrix) -> Dict[str, Dict[str, float]]:
    """``{scenario: {policy: STP / Planaria's STP}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for label, cell in matrix.items():
        base = cell["planaria"].stp
        out[label] = {
            policy: (result.stp / base if base > 0 else float("nan"))
            for policy, result in cell.items()
        }
    return out


def format_fig7(matrix: Matrix) -> str:
    """Render Figure 7 plus summary ratios."""
    norm = stp_normalized_to_planaria(matrix)
    lines = [
        "Figure 7: STP normalized to Planaria",
        f"{'scenario':<22s}" + "".join(f"{p:>10s}" for p in POLICY_ORDER),
    ]
    for label, row in norm.items():
        line = f"{label:<22s}"
        for policy in POLICY_ORDER:
            line += f"{row.get(policy, float('nan')):>10.3f}"
        lines.append(line)
    lines.append("")
    lines.append("MoCA STP improvement (geomean):")
    for baseline in ("prema", "static", "planaria"):
        geo = geomean_improvement(matrix, "stp", baseline)
        lines.append(
            f"  vs {baseline:<9s} x{geo:.2f} "
            f"(paper: {_PAPER_STP[baseline]})"
        )
    return "\n".join(lines)


_PAPER_STP = {
    "prema": "12.5x geomean, 20.5x max",
    "static": "1.7x geomean, 2.1x max",
    "planaria": "1.7x geomean, 2.3x max",
}
