"""Coordinator/worker execution layer: dynamic lease-based sweeps.

Layers (each importable on its own):

- :mod:`~repro.experiments.execution.leases` — the work ledger:
  per-cell lease state over the manifest, cost-aware batches,
  heartbeat expiry, deterministic replay from an op log.
- :mod:`~repro.experiments.execution.transport` — the transport
  seam: four protocol verbs, in-process and HTTP implementations.
- :mod:`~repro.experiments.execution.coordinator` — the ledger
  served: incremental aggregation, the journal, the HTTP server.
- :mod:`~repro.experiments.execution.worker` — the worker loop:
  lease → execute → submit → heartbeat until drained.

Static ``sweep --shard I/N`` runs through the same ledger
(:meth:`WorkLedger.pre_lease_shard` + :func:`execute_lease`) as the
dynamic ``sweep --serve`` / ``sweep --worker URL`` pair — one
execution code path, byte-identical exports either way.
"""

from repro.experiments.execution.coordinator import (
    LEASE_PARTIAL_FORMAT,
    STATUS_FORMAT,
    Coordinator,
    CoordinatorServer,
    build_lease_partial,
)
from repro.experiments.execution.leases import (
    COMPLETED,
    LEASED,
    QUARANTINED,
    UNLEASED,
    Lease,
    WorkLedger,
)
from repro.experiments.execution.transport import (
    HttpTransport,
    InProcessTransport,
    Transport,
    TransportError,
)
from repro.experiments.execution.worker import (
    SweepWorker,
    default_worker_id,
    execute_lease,
)

__all__ = [
    "COMPLETED",
    "LEASED",
    "LEASE_PARTIAL_FORMAT",
    "QUARANTINED",
    "STATUS_FORMAT",
    "UNLEASED",
    "Coordinator",
    "CoordinatorServer",
    "HttpTransport",
    "InProcessTransport",
    "Lease",
    "SweepWorker",
    "Transport",
    "TransportError",
    "WorkLedger",
    "build_lease_partial",
    "default_worker_id",
    "execute_lease",
]
