"""Coordinator service: the work ledger served over a transport.

The long-lived side of the coordinator/worker architecture.  One
:class:`Coordinator` owns a :class:`~repro.experiments.execution.
leases.WorkLedger` and a :class:`~repro.experiments.results.
SweepResults` accumulator for one manifest, and exposes exactly the
four transport verbs:

- ``lease_request`` — expire overdue leases, grant a cost-aware batch.
- ``heartbeat`` — renew a lease, absorb worker telemetry (warm-pool
  warmup timeouts ride this channel).
- ``submit_partial`` — re-validate a worker's lease partial with the
  same digest/tamper/coverage/overlap refusals the shard merge path
  enforces, then fold it into the accumulator *incrementally* and
  checkpoint every cell to the journal.
- ``status`` — live progress, per-worker telemetry, and (on request)
  the manifest itself, which is how workers bootstrap.

Trust boundary: the transport is untrusted.  Every submitted partial
embeds its manifest and the stored digest is re-verified against a
recomputation (a tampered artifact cannot slip in), the SoC must
match the coordinator's, the lease must still be live (a partial for
expired — hence possibly re-leased — work is refused), and the cells
must cover exactly the lease's slice.  Refusals raise ``ValueError``
with one-line messages; the HTTP server maps them to 400 responses.

Crash safety: the journal is PR 6's checksummed
:class:`~repro.experiments.sharding.CellJournal` — every accepted
cell/failure is appended (and flushed) the moment it folds in, plus
``lease-op`` audit lines mirroring the ledger's op log.  A killed
coordinator resumes from the journal (:meth:`Coordinator.resume`)
re-leasing only the cells without a checkpointed result.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.config import SoCConfig
from repro.experiments.execution.leases import WorkLedger
from repro.experiments.results import (
    CellFailure,
    CellResult,
    SweepResults,
    cell_from_dict,
    cell_to_dict,
    failure_from_dict,
    failure_to_dict,
)
from repro.experiments.sharding import (
    JOURNAL_NAME,
    CellJournal,
    manifest_digest,
    manifest_specs,
    verify_stored_digest,
)

__all__ = [
    "LEASE_PARTIAL_FORMAT",
    "STATUS_FORMAT",
    "Coordinator",
    "CoordinatorServer",
    "build_lease_partial",
]

#: Format tag of lease partial artifacts (the dynamic-lease analogue
#: of the static shard's ``repro-sweep-partial/1``).
LEASE_PARTIAL_FORMAT = "repro-sweep-lease-partial/1"

#: Format tag of coordinator status documents.
STATUS_FORMAT = "repro-sweep-status/1"


def build_lease_partial(
    manifest: dict,
    soc_dict: dict,
    lease: dict,
    cells: List[CellResult],
    failures: List[CellFailure],
) -> dict:
    """Package one executed lease as a self-describing partial.

    Mirrors the shard partial's shape — embedded manifest, stored
    digest, recorded SoC — with a ``lease`` section instead of a
    ``shard`` section, so the coordinator can apply the same
    compatibility and tamper refusals the merge path uses.
    """
    return {
        "format": LEASE_PARTIAL_FORMAT,
        "manifest": manifest,
        "manifest_digest": manifest_digest(manifest),
        "soc": soc_dict,
        "lease": {
            "lease_id": lease["lease_id"],
            "worker_id": lease["worker_id"],
            "cell_indices": list(lease["cell_indices"]),
        },
        "cells": [cell_to_dict(c) for c in cells],
        "failures": [failure_to_dict(f) for f in failures],
    }


def _validate_lease_partial_shape(partial: dict) -> None:
    """Refuse a lease partial missing its top-level structure (the
    ValueError family — clean one-line errors at the CLI/HTTP edge)."""
    if not isinstance(partial, dict):
        raise ValueError(
            f"not a {LEASE_PARTIAL_FORMAT} document "
            f"(got {type(partial).__name__})"
        )
    if partial.get("format") != LEASE_PARTIAL_FORMAT:
        raise ValueError(
            f"not a {LEASE_PARTIAL_FORMAT} document "
            f"(format={partial.get('format')!r})"
        )
    missing = [
        key
        for key in (
            "manifest", "manifest_digest", "soc", "lease", "cells",
            "failures",
        )
        if key not in partial
    ]
    if missing:
        raise ValueError(
            f"malformed lease partial (missing {missing})"
        )
    if (
        not isinstance(partial["manifest"], dict)
        or not isinstance(partial["manifest_digest"], str)
        or not isinstance(partial["soc"], dict)
        or not isinstance(partial["cells"], list)
        or not isinstance(partial["failures"], list)
    ):
        raise ValueError(
            "malformed lease partial (wrongly typed manifest/"
            "manifest_digest/soc/cells/failures)"
        )
    lease = partial["lease"]
    if (
        not isinstance(lease, dict)
        or not isinstance(lease.get("lease_id"), int)
        or isinstance(lease.get("lease_id"), bool)
        or not isinstance(lease.get("worker_id"), str)
        or not isinstance(lease.get("cell_indices"), list)
        or not all(
            isinstance(i, int) and not isinstance(i, bool)
            for i in lease["cell_indices"]
        )
    ):
        raise ValueError(
            "malformed lease partial (incomplete or wrongly typed "
            "'lease' section)"
        )


# repro-lint: thread-shared lock=_lock guards=ledger,acc,workers
class Coordinator:
    """The work ledger plus incremental aggregation behind a lock.

    Thread-safe: the HTTP server handles each request on its own
    thread, so every verb serialises on one re-entrant lock — the
    ledger and accumulator stay single-writer value machines.

    Args:
        manifest: The sweep's cell manifest (round-trip validated).
        soc: Simulated hardware config; submissions recorded under a
            different SoC are refused (the manifest cannot see this).
        lease_ttl: Seconds between heartbeats before a lease expires;
            ``None`` disables expiry.
        workers_hint: Expected worker count (sizes default lease
            batches).
        max_lease_cost: Optional hard cap on a single lease's summed
            cell cost (the ``--lease-cost`` knob).
        out_dir: Directory to journal into (``cells.jsonl``); ``None``
            disables journaling (in-process tests/bench).
        acc: Pre-populated accumulator (the resume path).  Cells it
            already holds are marked completed in the ledger and never
            re-leased; its quarantined failures stay *leasable* — a
            resume re-runs them, and a fresh success supersedes.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        manifest: dict,
        soc: Optional[SoCConfig] = None,
        lease_ttl: Optional[float] = 30.0,
        workers_hint: int = 2,
        max_lease_cost: Optional[int] = None,
        out_dir=None,
        acc: Optional[SweepResults] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        from repro.config import DEFAULT_SOC

        specs = manifest_specs(manifest)
        self.manifest = manifest
        self.digest = manifest_digest(manifest)
        self.soc = soc if soc is not None else DEFAULT_SOC
        self._soc_dict = dataclasses.asdict(self.soc)
        self.acc = (
            acc if acc is not None
            else SweepResults(specs, list(manifest["policies"]))
        )
        self.ledger = WorkLedger(
            manifest,
            lease_ttl=lease_ttl,
            workers_hint=workers_hint,
            clock=clock,
        )
        self.max_lease_cost = max_lease_cost
        self._lock = threading.RLock()
        #: worker_id -> telemetry record (heartbeats carry it).
        self.workers: Dict[str, dict] = {}
        self._journal: Optional[CellJournal] = None
        self._journaled_ops = 0
        self._started = clock()
        self._clock = clock
        for cell in self.acc.cells():
            self.ledger.complete(cell.index)
        # Quarantined failures from a previous session stay unleased:
        # serving again IS the resume, so they get re-run.
        self._journaled_ops = len(self.ledger.log)
        if out_dir is not None:
            self._journal = CellJournal.open(
                out_dir, manifest, self.soc
            )

    # -- resume --------------------------------------------------------

    @classmethod
    def resume(
        cls, out_dir, soc: Optional[SoCConfig] = None, **kwargs
    ) -> "Coordinator":
        """Rebuild a coordinator from a killed one's journal.

        Replays ``out_dir/cells.jsonl`` — checkpointed cells become
        completed (never re-leased), checkpointed failures are
        re-leasable — and reopens the journal for appending.  The
        header binds the manifest and SoC, so resuming against the
        wrong directory is refused before anything is leased.
        """
        from repro.config import DEFAULT_SOC

        if soc is None:
            soc = DEFAULT_SOC
        journal_path = Path(out_dir) / JOURNAL_NAME
        header = CellJournal._read_header(journal_path)
        manifest = header["manifest"]
        cells, failures, _skipped = CellJournal.read(
            journal_path,
            manifest_digest(manifest),
            dataclasses.asdict(soc),
        )
        acc = SweepResults(
            manifest_specs(manifest), list(manifest["policies"])
        )
        for cell in cells:
            acc.add(cell)
        for failure in failures:
            acc.add_failure(failure)
        return cls(
            manifest, soc=soc, out_dir=out_dir, acc=acc, **kwargs
        )

    # -- protocol verbs ------------------------------------------------

    def lease_request(
        self, worker_id: str, max_cost: Optional[int] = None
    ) -> Optional[dict]:
        """Grant a batch of unleased cells (or ``None``)."""
        with self._lock:
            self.ledger.expire()
            lease = self.ledger.request_lease(
                worker_id,
                max_cost=max_cost or self.max_lease_cost,
            )
            record = self._worker_record(worker_id)
            if lease is None:
                self._sync_journal()
                return None
            record["leases"] += 1
            self._sync_journal()
            return {
                "lease_id": lease.lease_id,
                "worker_id": lease.worker_id,
                "cell_indices": list(lease.indices),
                "cost": lease.cost,
                "ttl": self.ledger.lease_ttl,
                "manifest_digest": self.digest,
            }

    def heartbeat(
        self,
        lease_id: int,
        worker_id: str,
        telemetry: Optional[dict] = None,
    ) -> dict:
        """Renew a lease; fold the worker's telemetry in."""
        with self._lock:
            self.ledger.expire()
            record = self._worker_record(worker_id)
            record["heartbeats"] += 1
            if telemetry:
                timeouts = telemetry.get("warmup_timeouts")
                if isinstance(timeouts, int) and not isinstance(
                    timeouts, bool
                ):
                    record["warmup_timeouts"] = max(
                        record["warmup_timeouts"], timeouts
                    )
            ok = self.ledger.heartbeat(lease_id)
            self._sync_journal()
            return {"ok": ok}

    def submit_partial(self, partial: dict) -> dict:
        """Validate and fold one lease partial (the trust boundary).

        The refusals mirror :func:`~repro.experiments.sharding.
        merge_partials` exactly where they share a failure mode:
        stored-digest-vs-recomputation (tamper), digest-vs-sweep
        (compatibility), SoC mismatch (hardware model), slice
        coverage (truncated artifact), and already-completed cells
        (overlap) — plus the lease-specific one: the lease must still
        be live, so work that expired (and may have been re-leased)
        cannot double-fold.
        """
        with self._lock:
            _validate_lease_partial_shape(partial)
            lease_doc = partial["lease"]
            label = (
                f"lease {lease_doc['lease_id']} "
                f"({lease_doc['worker_id']})"
            )
            verify_stored_digest(partial, label)
            if partial["manifest_digest"] != self.digest:
                raise ValueError(
                    f"{label}: partial from a different sweep "
                    f"(manifest digest "
                    f"{partial['manifest_digest'][:12]} vs "
                    f"{self.digest[:12]})"
                )
            if partial["soc"] != self._soc_dict:
                raise ValueError(
                    f"{label}: partial computed under a different "
                    f"SoC configuration; every worker must simulate "
                    f"the identical hardware model"
                )
            self.ledger.expire()
            lease = self.ledger.lease(lease_doc["lease_id"])
            if lease is None:
                raise ValueError(
                    f"{label}: lease is not live (expired or already "
                    f"settled); its cells were re-leased — drop this "
                    f"partial"
                )
            if sorted(lease_doc["cell_indices"]) != list(lease.indices):
                raise ValueError(
                    f"{label}: declared slice does not match the "
                    f"granted lease"
                )
            try:
                cells = [cell_from_dict(c) for c in partial["cells"]]
                failures = [
                    failure_from_dict(f) for f in partial["failures"]
                ]
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{label}: malformed cell payload ({exc!r})"
                ) from exc
            covered = sorted(
                [c.index for c in cells] + [f.index for f in failures]
            )
            if covered != list(lease.indices):
                raise ValueError(
                    f"{label}: cells present (succeeded + "
                    f"quarantined) do not match the lease's slice "
                    f"(truncated artifact?)"
                )
            # Validate the whole batch against the sweep shape before
            # folding anything — a refusal must not half-apply.
            for cell in cells:
                if self.acc.has_cell(cell.index):
                    raise ValueError(
                        f"{label}: cell {cell.index} already has a "
                        f"result — overlapping submission"
                    )
            for cell in cells:
                self.acc.add(cell)
                if self._journal is not None:
                    self._journal.append_cell(cell)
                self.ledger.complete(cell.index)
            for failure in failures:
                self.acc.add_failure(failure)
                if self._journal is not None:
                    self._journal.append_failure(failure)
                self.ledger.quarantine(failure.index)
            record = self._worker_record(lease.worker_id)
            record["cells_completed"] += len(cells)
            record["cells_quarantined"] += len(failures)
            self._sync_journal()
            return {
                "accepted": len(cells),
                "quarantined": len(failures),
                "drained": self.ledger.drained,
            }

    def status(self, include_manifest: bool = False) -> dict:
        """The live status document.

        Always carries the digest and SoC (workers verify the trust
        boundary from these), the ledger counts, the completion
        flags, and per-worker telemetry — including the aggregated
        warm-pool ``warmup_timeouts`` the workers report over the
        heartbeat channel.  ``include_manifest=True`` adds the full
        manifest (the worker bootstrap path).
        """
        with self._lock:
            self.ledger.expire()
            self._sync_journal()
            counts = self.ledger.counts()
            doc = {
                "format": STATUS_FORMAT,
                "manifest_digest": self.digest,
                "soc": self._soc_dict,
                "expected": self.acc.expected,
                "completed": len(self.acc),
                "quarantined": len(self.acc.failed_indices()),
                "counts": counts,
                "drained": self.ledger.drained,
                "complete": self.acc.complete,
                "degraded": self.acc.degraded,
                "uptime_seconds": self._clock() - self._started,
                "workers": {
                    w: dict(r) for w, r in sorted(self.workers.items())
                },
                "warmup_timeouts": sum(
                    r["warmup_timeouts"] for r in self.workers.values()
                ),
            }
            if include_manifest:
                doc["manifest"] = self.manifest
            return doc

    # -- serving helpers -----------------------------------------------

    @property
    def drained(self) -> bool:
        """Whether every cell is settled (the serve loop's exit)."""
        with self._lock:
            return self.ledger.drained

    def expire_leases(self) -> int:
        """Expire overdue leases (the serve loop's periodic sweep);
        returns how many expired."""
        with self._lock:
            expired = self.ledger.expire()
            self._sync_journal()
            return len(expired)

    def progress_line(self) -> str:
        """One human-readable live-progress line for stderr."""
        with self._lock:
            counts = self.ledger.counts()
            return (
                f"coordinator: {counts['completed']}/"
                f"{len(self.ledger)} cells done, "
                f"{counts['leased']} leased "
                f"({counts['leases']} lease(s)), "
                f"{counts['unleased']} waiting, "
                f"{counts['quarantined']} quarantined, "
                f"{len(self.workers)} worker(s) seen"
            )

    def close(self) -> None:
        """Close the journal (leaving it on disk for resume)."""
        with self._lock:
            if self._journal is not None:
                self._journal.close()

    def discard_journal(self) -> None:
        """Delete the journal — only once the sweep's export is
        complete (scaffolding must not make the export directory
        differ from a fault-free run's)."""
        with self._lock:
            if self._journal is not None:
                self._journal.discard()

    def _worker_record(self, worker_id: str) -> dict:
        record = self.workers.get(worker_id)
        if record is None:
            record = {
                "leases": 0,
                "heartbeats": 0,
                "cells_completed": 0,
                "cells_quarantined": 0,
                "warmup_timeouts": 0,
            }
            self.workers[worker_id] = record
        return record

    def _sync_journal(self) -> None:
        """Mirror new ledger ops into the journal as audit lines.

        The journal's ``lease-op`` lines carry the ledger's op log —
        checksummed like every other line — so the full assignment
        history of a sweep is reconstructible
        (:meth:`WorkLedger.replay`) from the journal alone.  The
        resume reader ignores unknown kinds, so these lines cost a
        fresh coordinator nothing.
        """
        if self._journal is None:
            self._journaled_ops = len(self.ledger.log)
            return
        while self._journaled_ops < len(self.ledger.log):
            self._journal.append_event(
                "lease-op", self.ledger.log[self._journaled_ops]
            )
            self._journaled_ops += 1


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes the four protocol verbs to the server's coordinator."""

    server_version = "repro-coordinator/1"
    protocol_version = "HTTP/1.1"

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return self._reply(
                400, {"error": "bad Content-Length header"}
            )
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            return self._reply(
                400, {"error": "request body is not JSON"}
            )
        if not isinstance(payload, dict):
            return self._reply(
                400, {"error": "request body must be a JSON object"}
            )
        coordinator = self.server.coordinator
        try:
            if self.path == "/lease":
                worker = payload.get("worker")
                if not isinstance(worker, str) or not worker:
                    raise ValueError(
                        "lease request needs a non-empty 'worker' id"
                    )
                max_cost = payload.get("max_cost")
                if max_cost is not None and (
                    not isinstance(max_cost, int)
                    or isinstance(max_cost, bool)
                ):
                    raise ValueError("'max_cost' must be an integer")
                lease = coordinator.lease_request(worker, max_cost)
                return self._reply(200, {"lease": lease})
            if self.path == "/heartbeat":
                lease_id = payload.get("lease_id")
                if not isinstance(lease_id, int) or isinstance(
                    lease_id, bool
                ):
                    raise ValueError(
                        "heartbeat needs an integer 'lease_id'"
                    )
                return self._reply(
                    200,
                    coordinator.heartbeat(
                        lease_id,
                        str(payload.get("worker", "anonymous")),
                        payload.get("telemetry") or None,
                    ),
                )
            if self.path == "/submit":
                return self._reply(
                    200, coordinator.submit_partial(payload)
                )
            if self.path == "/status":
                return self._reply(
                    200,
                    coordinator.status(
                        include_manifest=bool(
                            payload.get("include_manifest")
                        )
                    ),
                )
        except ValueError as exc:
            return self._reply(400, {"error": str(exc)})
        return self._reply(
            404, {"error": f"unknown endpoint {self.path}"}
        )

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/status":
            try:
                return self._reply(
                    200, self.server.coordinator.status()
                )
            except ValueError as exc:
                return self._reply(400, {"error": str(exc)})
        return self._reply(
            404, {"error": f"unknown endpoint {self.path}"}
        )

    def log_message(self, format: str, *args) -> None:
        """Silence per-request access logging (the serve loop prints
        a periodic progress line instead)."""


# repro-lint: thread-shared lock=_lock
class CoordinatorServer:
    """A :class:`Coordinator` on a threading HTTP server.

    Binds immediately (``port=0`` picks an ephemeral port — the bound
    :attr:`url` is known before :meth:`start`), serves on a daemon
    thread, and leaves request handling to
    :class:`_CoordinatorHandler`.  Stdlib only.

    :meth:`stop` is idempotent and safe to race with a late caller of
    :meth:`start` (both serialise on one lock): the serve thread is
    joined with a timeout, the socket is closed exactly once, and the
    discovery file — when the server was asked to
    :meth:`publish_discovery` one — is removed even when shutdown
    itself raises.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.coordinator = coordinator
        self._httpd = ThreadingHTTPServer(
            (host, port), _CoordinatorHandler
        )
        self._httpd.coordinator = coordinator
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self.url = f"http://{self.host}:{self.port}"
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._discovery: Optional[Path] = None

    def start(self) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("server already stopped")
            if self._thread is not None:
                raise RuntimeError("server already started")
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="coordinator-http",
                daemon=True,
            )
            self._thread.start()

    def publish_discovery(self, path) -> None:
        """Write the discovery file (bound URL + manifest digest) and
        own its lifetime: :meth:`stop` removes it on every exit path,
        so scaffolding never leaks into the export directory even when
        the serve loop dies on an unexpected exception."""
        path = Path(path)
        path.write_text(
            json.dumps(
                {
                    "url": self.url,
                    "manifest_digest": self.coordinator.digest,
                },
                indent=2,
                sort_keys=True,
            ) + "\n"
        )
        with self._lock:
            self._discovery = path

    def stop(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
            discovery = self._discovery
            self._discovery = None
        try:
            if thread is not None:
                self._httpd.shutdown()
                thread.join(timeout=10)
                if thread.is_alive():
                    warnings.warn(
                        "coordinator-http thread did not stop within "
                        "10s; socket will be closed under it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            self._httpd.server_close()
        finally:
            # A worker request racing shutdown (or shutdown itself
            # raising) must not leak the discovery file: a stale URL
            # would point the next quickstart at a dead port.
            if discovery is not None:
                try:
                    discovery.unlink()
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "CoordinatorServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
