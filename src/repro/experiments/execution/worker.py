"""Worker loop: lease → execute → submit → heartbeat, until drained.

The short-lived side of the coordinator/worker architecture.  A
:class:`SweepWorker` knows nothing about the sweep until it
bootstraps: it asks the coordinator for the status document *with the
manifest*, verifies the SoC it was configured to simulate matches the
coordinator's (the trust boundary runs both ways — a worker must not
burn hours simulating the wrong hardware), then loops: request a
lease, execute its cells through the same
:class:`~repro.experiments.parallel.ParallelRunner` machinery every
other execution mode uses, submit the lease partial, repeat.  While a
lease is executing, a background thread heartbeats at a third of the
lease TTL so slow cells do not get stolen out from under a live
worker.

Error taxonomy (mirrors the transport seam):

- :class:`~repro.experiments.execution.transport.TransportError` —
  retried with the :class:`~repro.experiments.parallel.Supervision`
  backoff schedule, up to ``max_transport_retries`` times per call;
  a coordinator restart mid-sweep is survivable.
- ``ValueError`` from a submit — the coordinator *refused* the
  partial (typically: the lease expired while the worker was stuck
  and the work was re-leased).  Never retried; the worker drops the
  orphaned results and asks for fresh work.

:func:`execute_lease` is the one code path that turns a batch of cell
indices into ``(cells, failures)`` — the dynamic worker loop and the
static ``run_shard`` both call it, which is what makes static
sharding a degenerate (pre-leased) case of the same execution layer.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.config import SoCConfig
from repro.experiments.execution.coordinator import build_lease_partial
from repro.experiments.execution.transport import (
    Transport,
    TransportError,
)
from repro.experiments.parallel import ParallelRunner, Supervision
from repro.experiments.results import CellFailure, CellResult
from repro.experiments.sharding import manifest_specs

__all__ = [
    "SweepWorker",
    "default_worker_id",
    "execute_lease",
]


def default_worker_id() -> str:
    """hostname-pid: unique enough per machine, readable in status."""
    return f"{socket.gethostname()}-{os.getpid()}"


def execute_lease(
    runner: ParallelRunner,
    specs,
    policies: Dict[str, object],
    soc: SoCConfig,
    indices: Tuple[int, ...],
    supervision: Optional[Supervision] = None,
) -> Tuple[List[CellResult], List[CellFailure]]:
    """Execute one batch of cells: the single execution code path.

    With ``supervision`` the batch runs through
    :meth:`ParallelRunner.run_supervised` — a poison cell quarantines
    into the failure list instead of aborting the batch.  Without it,
    the plain streaming path runs and any cell error propagates.
    Cells come back in ascending index order either way (the order
    every partial format declares).
    """
    if supervision is not None:
        acc = runner.run_supervised(
            specs, policies, soc, indices=indices,
            supervision=supervision,
        )
        return acc.cells(), acc.failures()
    cells = sorted(
        runner.iter_cells(specs, policies, soc, indices=indices),
        key=lambda c: c.index,
    )
    return cells, []


# repro-lint: thread-shared lock=none
class _HeartbeatThread(threading.Thread):
    """Renews one lease every ``interval`` seconds until stopped.

    Transport errors are swallowed (the next beat retries; the main
    loop owns hard failures).  A coordinator answering ``ok: False``
    marks the lease orphaned — the main loop learns the submit will
    be refused before paying for it.
    """

    def __init__(
        self,
        transport: Transport,
        lease_id: int,
        worker_id: str,
        interval: float,
        telemetry,
    ) -> None:
        super().__init__(
            name=f"heartbeat-lease-{lease_id}", daemon=True
        )
        self._transport = transport
        self._lease_id = lease_id
        self._worker_id = worker_id
        self._interval = interval
        self._telemetry = telemetry
        # NB: not "_stop" — threading.Thread defines that internally.
        self._halt = threading.Event()
        self.orphaned = False

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            try:
                reply = self._transport.heartbeat(
                    self._lease_id,
                    self._worker_id,
                    self._telemetry(),
                )
            except (TransportError, ValueError):
                continue
            if not reply.get("ok", False):
                self.orphaned = True
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5)


class SweepWorker:
    """One worker draining a coordinator over a transport.

    Args:
        transport: In-process or HTTP transport to the coordinator.
        worker_id: Self-chosen identity shown in coordinator status;
            defaults to ``hostname-pid``.
        runner: Pre-built (possibly pre-warmed)
            :class:`ParallelRunner`; one is built from ``workers``
            otherwise.
        workers: Pool size when building the runner.
        policies: Policy factories by name (defaults to the paper's
            four); must cover every policy the manifest names.
        soc: The SoC this worker is configured to simulate; refused
            at bootstrap if it differs from the coordinator's.
        supervision: Per-cell retry/quarantine policy for execution
            (:meth:`ParallelRunner.run_supervised`); its backoff
            schedule is also reused for transport retries.  ``None``
            runs unsupervised (cell errors abort the worker).
        poll_interval: Sleep between lease requests while other
            workers still hold unfinished leases.
        max_transport_retries: Transport-error retries per protocol
            call before giving up (a dead coordinator should not hold
            a worker process forever).
    """

    def __init__(
        self,
        transport: Transport,
        worker_id: Optional[str] = None,
        runner: Optional[ParallelRunner] = None,
        workers: int = 1,
        policies: Optional[Dict[str, object]] = None,
        soc: Optional[SoCConfig] = None,
        supervision: Optional[Supervision] = None,
        poll_interval: float = 0.5,
        max_transport_retries: int = 5,
    ) -> None:
        from repro.config import DEFAULT_SOC

        self.transport = transport
        self.worker_id = worker_id or default_worker_id()
        self.runner = (
            runner if runner is not None
            else ParallelRunner(workers=workers or None)
        )
        self._policies_in = policies
        self.soc = soc if soc is not None else DEFAULT_SOC
        self._soc_dict = dataclasses.asdict(self.soc)
        self.supervision = supervision
        self.poll_interval = poll_interval
        self.max_transport_retries = max_transport_retries
        self._retry_schedule = supervision or Supervision()
        # Bootstrapped state (filled by _bootstrap):
        self.manifest: Optional[dict] = None
        self.specs = None
        self.policies: Optional[Dict[str, object]] = None

    # -- transport plumbing --------------------------------------------

    def _call(self, fn, *args, **kwargs):
        """One protocol call, retrying transport errors with the
        supervision backoff schedule.  Coordinator refusals
        (``ValueError``) pass straight through — they are never a
        wire problem."""
        attempt = 0
        while True:
            try:
                return fn(*args, **kwargs)
            except TransportError as exc:
                if attempt >= self.max_transport_retries:
                    raise
                delay = self._retry_schedule.backoff(attempt)
                print(
                    f"worker {self.worker_id}: transport error "
                    f"({exc}); retrying in {delay:.1f}s",
                    file=sys.stderr,
                )
                time.sleep(delay)
                attempt += 1

    def _telemetry(self) -> dict:
        return {
            "warmup_timeouts": getattr(
                self.runner, "total_warmup_timeouts", 0
            ),
        }

    # -- bootstrap ------------------------------------------------------

    def _bootstrap(self) -> None:
        if self.manifest is not None:
            return
        from repro.experiments.runner import default_policies

        status = self._call(
            self.transport.sweep_status, include_manifest=True
        )
        if status.get("soc") != self._soc_dict:
            raise ValueError(
                "coordinator is serving a different SoC "
                "configuration than this worker simulates; refusing "
                "to produce incompatible results"
            )
        manifest = status.get("manifest")
        if not isinstance(manifest, dict):
            raise ValueError(
                "coordinator status did not include the manifest"
            )
        specs = manifest_specs(manifest)
        policies = self._policies_in
        if policies is None:
            policies = default_policies()
        missing = [
            p for p in manifest["policies"] if p not in policies
        ]
        if missing:
            raise ValueError(
                f"manifest names policies {missing} with no "
                f"factory; available: {sorted(policies)}"
            )
        # The manifest's policy order defines the cell flattening;
        # feed the factories in exactly that order.
        self.policies = {
            name: policies[name] for name in manifest["policies"]
        }
        self.manifest = manifest
        self.specs = specs

    # -- execution ------------------------------------------------------

    def _execute(self, lease: dict, heartbeats: bool = True) -> dict:
        """Execute one granted lease end-to-end; returns an outcome
        record (``status`` is ``submitted`` or ``refused``)."""
        indices = tuple(lease["cell_indices"])
        ttl = lease.get("ttl")
        beat: Optional[_HeartbeatThread] = None
        if heartbeats and ttl:
            beat = _HeartbeatThread(
                self.transport,
                lease["lease_id"],
                self.worker_id,
                interval=ttl / 3.0,
                telemetry=self._telemetry,
            )
            beat.start()
        t0 = time.perf_counter()
        try:
            cells, failures = execute_lease(
                self.runner, self.specs, self.policies, self.soc,
                indices, self.supervision,
            )
        finally:
            if beat is not None:
                beat.stop()
        seconds = time.perf_counter() - t0
        # One last heartbeat right before submitting: renews the
        # lease across the submit itself and delivers the execution
        # telemetry (warm-pool warmup timeouts) even on short leases
        # that never saw a background beat.
        try:
            self._call(
                self.transport.heartbeat,
                lease["lease_id"],
                self.worker_id,
                self._telemetry(),
            )
        except TransportError:
            pass  # submit is the call that matters; let it decide.
        partial = build_lease_partial(
            self.manifest,
            self._soc_dict,
            {
                "lease_id": lease["lease_id"],
                "worker_id": self.worker_id,
                "cell_indices": list(indices),
            },
            cells,
            failures,
        )
        try:
            reply = self._call(self.transport.submit_partial, partial)
        except ValueError as exc:
            # The coordinator refused — usually: this lease expired
            # while we were stuck and the cells were re-leased.  The
            # results are orphaned; drop them and move on.
            print(
                f"worker {self.worker_id}: submit refused ({exc}); "
                f"dropping orphaned results for lease "
                f"{lease['lease_id']}",
                file=sys.stderr,
            )
            return {
                "status": "refused",
                "lease": lease,
                "cells": 0,
                "failures": 0,
                "seconds": seconds,
            }
        return {
            "status": "submitted",
            "lease": lease,
            "cells": reply.get("accepted", len(cells)),
            "failures": reply.get("quarantined", len(failures)),
            "seconds": seconds,
        }

    def step(self, heartbeats: bool = False) -> Optional[dict]:
        """Lease and execute at most one batch; ``None`` when nothing
        is currently unleased.  The bench harness drives two workers
        alternately through this to measure per-lease cost without
        background threads in the timing."""
        self._bootstrap()
        lease = self._call(
            self.transport.lease_request, self.worker_id
        )
        if lease is None:
            return None
        return self._execute(lease, heartbeats=heartbeats)

    def run(self) -> dict:
        """Drain the coordinator; returns a summary dict.

        Loops lease → execute → submit until the coordinator reports
        ``drained``.  When nothing is unleased but other workers
        still hold live leases, polls — their work may yet expire
        and come back to steal.
        """
        self._bootstrap()
        summary = {
            "worker_id": self.worker_id,
            "leases": 0,
            "cells": 0,
            "failures": 0,
            "refused": 0,
        }
        while True:
            lease = self._call(
                self.transport.lease_request, self.worker_id
            )
            if lease is None:
                status = self._call(self.transport.sweep_status)
                if status.get("drained"):
                    break
                time.sleep(self.poll_interval)
                continue
            outcome = self._execute(lease)
            summary["leases"] += 1
            if outcome["status"] == "refused":
                summary["refused"] += 1
            else:
                summary["cells"] += outcome["cells"]
                summary["failures"] += outcome["failures"]
        return summary
