"""Transport seam between sweep workers and the coordinator.

The coordinator/worker protocol is four verbs — lease-request,
heartbeat, submit-partial, sweep-status — small enough that the
transport is an honest seam: :class:`InProcessTransport` calls the
coordinator directly (tests, single-host multi-pool runs, the bench
harness), :class:`HttpTransport` speaks JSON-over-HTTP to a
:class:`~repro.experiments.execution.coordinator.CoordinatorServer`
(stdlib ``urllib`` only — no new dependencies).

Error taxonomy — the part workers actually branch on:

- :class:`TransportError` — the *channel* failed (connection refused,
  timeout, 5xx).  Retryable: the worker backs off and tries again,
  reusing the :class:`~repro.experiments.parallel.Supervision`
  schedule.
- :class:`ValueError` — the coordinator *refused* the request (wrong
  manifest digest, dead lease, tampered partial…).  Never retried:
  the request is wrong, not the wire.  HTTP surfaces these as 400
  with the refusal message, and :class:`HttpTransport` re-raises them
  as ``ValueError`` so both transports present one error model.

The trust boundary sits behind this seam: everything a worker submits
is re-validated by the coordinator with the same digest/overlap/
tamper refusals the shard merge path enforces — the transport moves
bytes, it vouches for nothing.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional

__all__ = [
    "HttpTransport",
    "InProcessTransport",
    "Transport",
    "TransportError",
]


class TransportError(RuntimeError):
    """The transport channel failed (retryable; distinct from a
    coordinator refusal, which raises ``ValueError`` and must not be
    retried)."""


class Transport:
    """Abstract coordinator transport: the four protocol verbs."""

    def lease_request(
        self, worker_id: str, max_cost: Optional[int] = None
    ) -> Optional[dict]:
        """Ask for work.  Returns a lease document (``lease_id``,
        ``worker_id``, ``cell_indices``, ``cost``, ``ttl``,
        ``manifest_digest``) or ``None`` when nothing is currently
        unleased."""
        raise NotImplementedError

    def heartbeat(
        self,
        lease_id: int,
        worker_id: str,
        telemetry: Optional[dict] = None,
    ) -> dict:
        """Renew a lease.  Returns ``{"ok": bool}`` — ``False`` means
        the lease is no longer live (expired/re-leased); the worker's
        in-flight work is orphaned."""
        raise NotImplementedError

    def submit_partial(self, partial: dict) -> dict:
        """Deliver a lease partial.  Returns ``{"accepted": N,
        "quarantined": M}``; raises ``ValueError`` on refusal."""
        raise NotImplementedError

    def sweep_status(self, include_manifest: bool = False) -> dict:
        """The coordinator's live status document (progress counts,
        ``drained``/``complete``/``degraded`` flags, per-worker
        telemetry; the full manifest when asked — workers bootstrap
        from it)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (no-op by default)."""


class InProcessTransport(Transport):
    """Direct calls into a coordinator living in this process."""

    def __init__(self, coordinator) -> None:
        self.coordinator = coordinator

    def lease_request(
        self, worker_id: str, max_cost: Optional[int] = None
    ) -> Optional[dict]:
        return self.coordinator.lease_request(worker_id, max_cost)

    def heartbeat(
        self,
        lease_id: int,
        worker_id: str,
        telemetry: Optional[dict] = None,
    ) -> dict:
        return self.coordinator.heartbeat(
            lease_id, worker_id, telemetry
        )

    def submit_partial(self, partial: dict) -> dict:
        return self.coordinator.submit_partial(partial)

    def sweep_status(self, include_manifest: bool = False) -> dict:
        return self.coordinator.status(
            include_manifest=include_manifest
        )


class HttpTransport(Transport):
    """JSON-over-HTTP client for a :class:`CoordinatorServer`.

    One POST per verb (``/lease``, ``/heartbeat``, ``/submit``,
    ``/status``), request and response bodies both JSON.  A 400
    response carries ``{"error": message}`` — the coordinator's
    refusal — and is re-raised as ``ValueError``; anything else that
    goes wrong on the wire (connection refused, timeout, 5xx, a
    non-JSON body) is a :class:`TransportError` and therefore
    retryable.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(
                f"coordinator URL must start with http:// or "
                f"https:// (got {base_url!r})"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _post(self, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            if exc.code == 400:
                try:
                    message = json.loads(body)["error"]
                except (ValueError, KeyError, TypeError):
                    message = body.decode(errors="replace")
                raise ValueError(message) from None
            raise TransportError(
                f"coordinator returned HTTP {exc.code} for {path}"
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise TransportError(
                f"coordinator unreachable at {self.base_url}{path} "
                f"({exc})"
            ) from exc
        try:
            return json.loads(body)
        except ValueError as exc:
            raise TransportError(
                f"coordinator sent a non-JSON response for {path}"
            ) from exc

    def lease_request(
        self, worker_id: str, max_cost: Optional[int] = None
    ) -> Optional[dict]:
        reply = self._post(
            "/lease", {"worker": worker_id, "max_cost": max_cost}
        )
        return reply.get("lease")

    def heartbeat(
        self,
        lease_id: int,
        worker_id: str,
        telemetry: Optional[dict] = None,
    ) -> dict:
        return self._post(
            "/heartbeat",
            {
                "lease_id": lease_id,
                "worker": worker_id,
                "telemetry": telemetry or {},
            },
        )

    def submit_partial(self, partial: dict) -> dict:
        return self._post("/submit", partial)

    def sweep_status(self, include_manifest: bool = False) -> dict:
        return self._post(
            "/status", {"include_manifest": include_manifest}
        )
