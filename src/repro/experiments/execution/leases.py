"""Work ledger: dynamic, cost-aware cell leasing over the manifest.

The static :class:`~repro.experiments.sharding.ShardPlan` slices a
manifest up-front: every host must be known before the sweep starts,
and a dead host strands its slice until a manual ``--resume``.  The
:class:`WorkLedger` replaces that with *leases*: a worker asks for
work, receives a cost-balanced batch of currently unowned cells, and
must either submit results or keep heartbeating — a lease whose
heartbeats stop is expired and its cells return to the pool for any
other worker to steal.  Work-stealing over the cell manifest, with
the manifest digest still the compatibility key.

Per-cell states:

- ``unleased`` — nobody owns the cell; it is available to lease.
- ``leased`` — a live lease owns it.  Exactly one lease can ever own
  a cell at a time (exclusivity is structural: leases are only built
  from unleased cells).
- ``completed`` — a validated result was folded in.  Final: settling
  a completed cell again is refused (the overlap refusal, the same
  guarantee :func:`~repro.experiments.sharding.merge_partials`
  enforces across shard partials).
- ``quarantined`` — a worker exhausted its retry budget on the cell
  and submitted a structured failure.  Settled for *this* serving
  session (the worker already retried; re-leasing it would loop), but
  missing from the results — ``sweep --resume`` re-runs it later.

Batch sizing reuses the LPT cost model of
:meth:`ShardPlan.from_manifest`: cells are granted costliest-first
and a batch grows until it reaches the target cost (total cost spread
over ``4 x workers_hint`` batches, mirroring the parallel executor's
chunking), so early batches are big (low round-trip overhead) and the
tail stays fine-grained (stragglers rebalance).

Every mutation appends one JSON-ready op to :attr:`WorkLedger.log`;
:meth:`WorkLedger.replay` rebuilds the exact ledger state from a log,
which makes lease assignment *deterministic given a lease log* — the
property the coordinator's journal audit trail and the
lease-expiry-determinism tests lean on.  Time never enters the log:
expiry is recorded as an explicit op when it is decided, so replay
needs no clock.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import repro.sanitizer as sanitizer
from repro.experiments.sharding import (
    ShardPlan,
    _cell_costs,
    manifest_digest,
)

__all__ = [
    "COMPLETED",
    "LEASED",
    "QUARANTINED",
    "UNLEASED",
    "Lease",
    "WorkLedger",
]

#: Per-cell lease states.
UNLEASED = "unleased"
LEASED = "leased"
COMPLETED = "completed"
QUARANTINED = "quarantined"

#: Batches per worker the default lease target aims for — the same
#: ``4 x workers`` granularity the parallel executor derives its
#: submission chunks from: big early batches, fine-grained tail.
_BATCHES_PER_WORKER = 4

#: Sentinel: "use the ledger's configured TTL" (``None`` must remain
#: expressible as "immortal lease").
_LEDGER_TTL = object()


@dataclass(frozen=True)
class Lease:
    """One grant of cells to one worker.

    Attributes:
        lease_id: Ledger-unique id (monotonic, starts at 1).
        worker_id: The requesting worker's self-chosen identity —
            informational (expiry is driven by heartbeats, not
            identity).
        indices: Ascending global cell indices granted.
        cost: Summed cell cost of the grant (the LPT balance weight).
        expires_at: Ledger-clock deadline; ``math.inf`` for pre-leased
            static shards (a shard partial arrives whenever its host
            finishes — static sharding has no heartbeat channel).
    """

    lease_id: int
    worker_id: str
    indices: Tuple[int, ...]
    cost: int
    expires_at: float


# repro-lint: single-writer owner=Coordinator._lock
class WorkLedger:
    """Per-cell lease state over one cell manifest.

    Single-threaded by design — the coordinator serialises access
    under its own lock; the ledger itself stays a deterministic value
    machine so :meth:`replay` can reproduce any state from the op log.

    Args:
        manifest: The sweep's cell manifest (defines the cell count,
            the per-cell costs, and the digest identity).
        lease_ttl: Seconds a lease lives between heartbeats; ``None``
            disables expiry (every lease is immortal — the static
            pre-leased mode).
        workers_hint: Expected worker count — sizes the default lease
            batch (total cost over ``4 x workers_hint`` batches).
        clock: Monotonic time source (injectable for deterministic
            tests).
    """

    def __init__(
        self,
        manifest: dict,
        lease_ttl: Optional[float] = 30.0,
        workers_hint: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl is not None and lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive (or None)")
        if workers_hint < 1:
            raise ValueError("workers_hint must be >= 1")
        self.manifest = manifest
        self.digest = manifest_digest(manifest)
        self.lease_ttl = lease_ttl
        self.workers_hint = workers_hint
        self._clock = clock
        self._costs: List[int] = _cell_costs(manifest)
        self._state: List[str] = [UNLEASED] * len(self._costs)
        #: cell index -> owning live lease id.
        self._owner: Dict[int, int] = {}
        #: live leases: id -> Lease (indices still outstanding).
        self._leases: Dict[int, Lease] = {}
        #: live leases: id -> current heartbeat deadline.
        self._expiry: Dict[int, float] = {}
        self._next_lease_id = 1
        #: Append-only op log; see :meth:`replay`.
        self.log: List[dict] = []

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._costs)

    def state(self, index: int) -> str:
        """The lease state of one cell."""
        return self._state[index]

    @property
    def drained(self) -> bool:
        """Whether every cell is settled (completed or quarantined).

        The coordinator's termination condition: nothing left to
        lease, nothing in flight.
        """
        return all(
            s in (COMPLETED, QUARANTINED) for s in self._state
        )

    def lease(self, lease_id: int) -> Optional[Lease]:
        """The live lease with this id, or ``None``."""
        return self._leases.get(lease_id)

    def live_leases(self) -> List[Lease]:
        """All live leases, by ascending id."""
        return [self._leases[i] for i in sorted(self._leases)]

    def counts(self) -> Dict[str, int]:
        """Cell counts by state (plus the live lease count)."""
        out = {
            UNLEASED: 0, LEASED: 0, COMPLETED: 0, QUARANTINED: 0,
        }
        for s in self._state:
            out[s] += 1
        out["leases"] = len(self._leases)
        return out

    def default_batch_cost(self) -> int:
        """The default lease-size target (summed cell cost).

        Total manifest cost spread over ``4 x workers_hint`` batches —
        the LPT analogue of the parallel executor's chunk derivation.
        At least the costliest single cell, so the costliest cell
        always fits one lease.
        """
        total = sum(self._costs)
        target = math.ceil(
            total / (_BATCHES_PER_WORKER * self.workers_hint)
        )
        return max(target, max(self._costs, default=1), 1)

    # -- mutations (all logged) ----------------------------------------

    def request_lease(
        self,
        worker_id: str,
        max_cost: Optional[int] = None,
        ttl: object = _LEDGER_TTL,
    ) -> Optional[Lease]:
        """Grant a cost-aware batch of unleased cells, or ``None``.

        Longest-processing-time-first over the unleased cells (ties by
        ascending index, exactly :class:`ShardPlan`'s order): the
        batch starts with the costliest available cell and grows with
        the next-costliest until it reaches the cost target
        (``max_cost`` or :meth:`default_batch_cost`).  Always grants
        at least one cell when any is unleased.  ``None`` means
        nothing is currently unleased — the worker should poll
        :attr:`drained` (leased work may yet expire and come back).
        """
        if max_cost is not None and max_cost < 1:
            raise ValueError("max_cost must be >= 1")
        available = [
            i for i, s in enumerate(self._state) if s == UNLEASED
        ]
        if not available:
            return None
        target = (
            max_cost if max_cost is not None
            else self.default_batch_cost()
        )
        available.sort(key=lambda i: (-self._costs[i], i))
        batch: List[int] = []
        cost = 0
        for index in available:
            if batch and cost + self._costs[index] > target:
                continue
            batch.append(index)
            cost += self._costs[index]
            if cost >= target:
                break
        effective_ttl = self.lease_ttl if ttl is _LEDGER_TTL else ttl
        return self._issue(
            worker_id, tuple(sorted(batch)), cost, effective_ttl
        )

    def pre_lease_shard(
        self,
        num_shards: int,
        shard_index: int,
        worker_id: Optional[str] = None,
    ) -> Lease:
        """Issue the deterministic static shard slice as one lease.

        Static sharding as the degenerate case of the ledger: the
        :class:`ShardPlan` slice for ``(manifest, num_shards,
        shard_index)`` is granted in full, with no expiry (shard hosts
        have no heartbeat channel — the partial file arrives whenever
        it arrives).  Every host pre-leasing its own shard from its
        own ledger computes disjoint slices with no coordination,
        exactly as before the refactor.
        """
        plan = ShardPlan.from_manifest(self.manifest, num_shards)
        indices = plan.shard(shard_index)
        taken = [i for i in indices if self._state[i] != UNLEASED]
        if taken:
            raise ValueError(
                f"shard {shard_index + 1}/{num_shards} overlaps "
                f"already-owned cells (first: {taken[0]})"
            )
        if worker_id is None:
            worker_id = f"shard-{shard_index + 1}-of-{num_shards}"
        return self._issue(
            worker_id, indices, plan.costs[shard_index], ttl=None
        )

    def _issue(
        self,
        worker_id: str,
        indices: Tuple[int, ...],
        cost: int,
        ttl: Optional[float],
    ) -> Lease:
        expires = math.inf if ttl is None else self._clock() + ttl
        lease = Lease(
            lease_id=self._next_lease_id,
            worker_id=worker_id,
            indices=indices,
            cost=cost,
            expires_at=expires,
        )
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        self._expiry[lease.lease_id] = expires
        for index in indices:
            self._state[index] = LEASED
            self._owner[index] = lease.lease_id
        self.log.append({
            "op": "lease",
            "lease_id": lease.lease_id,
            "worker": worker_id,
            "indices": list(indices),
            "cost": cost,
        })
        if sanitizer.enabled:
            self._check_invariants("issue")
        return lease

    def heartbeat(self, lease_id: int) -> bool:
        """Renew a lease's expiry deadline.

        ``False`` when the lease is no longer live (expired and
        re-leased, or fully settled) — the worker's signal that its
        work is orphaned and any eventual submit will be refused.
        Heartbeats are not logged: they only move the deadline, and
        the *decision* they influence (expiry) is logged explicitly.
        """
        if lease_id not in self._leases:
            return False
        if self.lease_ttl is not None and math.isfinite(
            self._expiry[lease_id]
        ):
            self._expiry[lease_id] = self._clock() + self.lease_ttl
        if sanitizer.enabled:
            self._check_invariants("heartbeat")
        return True

    def expire(self, now: Optional[float] = None) -> List[Lease]:
        """Expire leases past their heartbeat deadline.

        Each expired lease's *unsettled* cells return to ``unleased``
        (cells it already settled stay settled — a lease that
        submitted some cells then died only re-runs the remainder).
        Returns the expired leases, by ascending id.
        """
        if now is None:
            now = self._clock()
        expired = [
            self._leases[i]
            for i in sorted(self._leases)
            if self._expiry[i] < now
        ]
        for lease in expired:
            for index in lease.indices:
                if self._state[index] == LEASED and (
                    self._owner.get(index) == lease.lease_id
                ):
                    self._state[index] = UNLEASED
                    del self._owner[index]
            del self._leases[lease.lease_id]
            del self._expiry[lease.lease_id]
            self.log.append({
                "op": "expire", "lease_id": lease.lease_id,
            })
        if sanitizer.enabled:
            self._check_invariants("expire")
        return expired

    def release(self, lease_id: int) -> Optional[Lease]:
        """Explicitly surrender a live lease (a worker shutting down
        cleanly mid-lease); its unsettled cells return to the pool
        immediately instead of waiting out the TTL."""
        if lease_id not in self._leases:
            return None
        self._expiry[lease_id] = -math.inf
        expired = self.expire(now=0.0)
        return expired[0] if expired else None

    def complete(self, index: int) -> None:
        """Settle one cell as completed.

        Refused for an already-completed cell — the ledger-level form
        of the merge path's overlap refusal (two results for one cell
        means double-aggregation).  A quarantined cell may complete
        (a later worker healed it); an unleased cell may complete
        (resume pre-folds journaled results before any lease exists).
        """
        self._settle(index, COMPLETED)

    def quarantine(self, index: int) -> None:
        """Settle one cell as quarantined (a worker exhausted its
        retry budget).  Not re-leased in this session — ``sweep
        --resume`` is the healing path."""
        if self._state[index] == COMPLETED:
            # A completed cell cannot regress; mirrors
            # SweepResults.add_failure (success supersedes).
            return
        self._settle(index, QUARANTINED)

    def _settle(self, index: int, state: str) -> None:
        if not 0 <= index < len(self._costs):
            raise ValueError(
                f"cell index {index} outside manifest of "
                f"{len(self._costs)} cells"
            )
        if self._state[index] == COMPLETED:
            raise ValueError(
                f"cell {index} is already completed — duplicate or "
                f"overlapping submission"
            )
        lease_id = self._owner.pop(index, None)
        self._state[index] = state
        if lease_id is not None:
            lease = self._leases[lease_id]
            outstanding = [
                i for i in lease.indices
                if self._owner.get(i) == lease_id
            ]
            if not outstanding:
                # Fully settled lease: retire it.
                del self._leases[lease_id]
                del self._expiry[lease_id]
        self.log.append({
            "op": "complete" if state == COMPLETED else "quarantine",
            "index": index,
        })
        if sanitizer.enabled:
            self._check_invariants("settle")

    # -- sanitized mode ------------------------------------------------

    def _check_invariants(self, after: str) -> None:
        """Re-verify the full state-machine invariant set (sanitized
        mode only — called after every mutating op).

        The static race detector proves the ledger is only touched
        under the coordinator's lock; this proves the value machine
        itself stays coherent across any lease / heartbeat / expire /
        settle interleaving.  A trip is a ledger bug, never load.
        """
        req = sanitizer.require
        valid = {UNLEASED, LEASED, COMPLETED, QUARANTINED}
        bad = sorted({s for s in self._state if s not in valid})
        req(
            not bad,
            f"ledger corrupt after {after}: invalid cell state(s) "
            f"{bad}",
        )
        req(
            set(self._leases) == set(self._expiry),
            f"ledger corrupt after {after}: lease ids "
            f"{sorted(self._leases)} != expiry ids "
            f"{sorted(self._expiry)}",
        )
        req(
            all(i < self._next_lease_id for i in self._leases),
            f"ledger corrupt after {after}: live lease id >= next id "
            f"{self._next_lease_id}",
        )
        leased = {
            i for i, s in enumerate(self._state) if s == LEASED
        }
        req(
            set(self._owner) == leased,
            f"ledger corrupt after {after}: owner map covers "
            f"{sorted(self._owner)} but LEASED cells are "
            f"{sorted(leased)}",
        )
        owned_by: Dict[int, int] = {}
        for index, lease_id in self._owner.items():
            lease = self._leases.get(lease_id)
            req(
                lease is not None,
                f"ledger corrupt after {after}: cell {index} owned "
                f"by dead lease {lease_id}",
            )
            req(
                index in lease.indices,
                f"ledger corrupt after {after}: cell {index} owned "
                f"by lease {lease_id} which never covered it",
            )
            owned_by[lease_id] = owned_by.get(lease_id, 0) + 1
        req(
            all(lid in owned_by for lid in self._leases),
            f"ledger corrupt after {after}: fully-settled lease(s) "
            f"{sorted(set(self._leases) - set(owned_by))} not retired",
        )

    # -- determinism ---------------------------------------------------

    @classmethod
    def replay(
        cls,
        manifest: dict,
        log: List[dict],
        lease_ttl: Optional[float] = None,
        workers_hint: int = 2,
    ) -> "WorkLedger":
        """Rebuild the exact ledger state a log describes.

        Lease ops re-issue their *logged* indices (no re-derivation:
        the log is the authority), so any two replays of the same log
        — and the live ledger that produced it — agree on every cell's
        state and every live lease.  This is the "deterministic given
        a lease log" contract: the coordinator journal's audit trail
        fully determines the assignment history.
        """
        ledger = cls(
            manifest, lease_ttl=lease_ttl, workers_hint=workers_hint
        )
        for op in log:
            if op["op"] == "lease":
                lease = ledger._issue(
                    op["worker"], tuple(op["indices"]), op["cost"],
                    ttl=None,
                )
                if lease.lease_id != op["lease_id"]:
                    raise ValueError(
                        f"lease log replay diverged: issued id "
                        f"{lease.lease_id}, log says {op['lease_id']}"
                    )
            elif op["op"] == "expire":
                lease = ledger._leases.get(op["lease_id"])
                if lease is not None:
                    ledger._expiry[op["lease_id"]] = -math.inf
                    ledger.expire(now=0.0)
            elif op["op"] == "complete":
                ledger.complete(op["index"])
            elif op["op"] == "quarantine":
                ledger.quarantine(op["index"])
            else:
                raise ValueError(
                    f"unknown ledger op {op.get('op')!r} in lease log"
                )
        return ledger
