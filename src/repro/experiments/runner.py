"""Shared experiment machinery.

Every figure experiment runs the same matrix: policies x workload sets
x QoS levels, each scenario repeated over several seeds, metrics
aggregated.  This module owns scenario definition, execution and
aggregation; the per-figure modules select slices of the matrix and
format the paper's rows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import PlanariaPolicy, PremaPolicy, StaticPartitionPolicy
from repro.config import DEFAULT_SOC, SoCConfig
from repro.core.policy import MoCAPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics import MetricsSummary, summarize
from repro.models.graph import Network
from repro.models.layers import geomean
from repro.scenarios import (
    ScenarioLike,
    ScenarioSpec,
    reference_matrix_specs,
    resolve_scenario,
    resolve_scenarios,
)
from repro.sim.engine import SimResult, run_simulation
from repro.sim.policy import Policy
from repro.sim.qos import QosModel
from repro.sim.workload import WorkloadGenerator

PolicyFactory = Callable[[], Policy]


def _parallel_runner(workers: int):
    """Validate a ``workers`` count and build the parallel runner
    (shared by :func:`run_scenario` and :func:`run_matrix`)."""
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = one per CPU)")
    from repro.experiments.parallel import ParallelRunner

    return ParallelRunner(workers=workers or None)


def check_unique_labels(specs: Sequence[ScenarioSpec]) -> None:
    """Matrices are keyed by scenario label; duplicates would simulate
    every cell and then silently collapse to one entry."""
    labels = [spec.label for spec in specs]
    duplicates = sorted({l for l in labels if labels.count(l) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate scenario label(s) in matrix: {duplicates}; "
            f"give repeated scenarios distinct names"
        )


#: The four systems of the paper's evaluation, in presentation order.
POLICY_ORDER: Tuple[str, ...] = ("prema", "static", "planaria", "moca")


def default_policies() -> Dict[str, PolicyFactory]:
    """Factories for the paper's four evaluated systems."""
    return {
        "prema": PremaPolicy,
        "static": StaticPartitionPolicy,
        "planaria": PlanariaPolicy,
        "moca": MoCAPolicy,
    }


@dataclass(frozen=True)
class ScenarioResult:
    """Aggregated outcome of one (policy, scenario) cell.

    Attributes:
        policy: Policy name.
        spec: The scenario.
        per_seed: Metric summaries per seed.
    """

    policy: str
    spec: ScenarioSpec
    per_seed: Tuple[MetricsSummary, ...]

    def _mean(self, getter: Callable[[MetricsSummary], float]) -> float:
        vals = [getter(s) for s in self.per_seed]
        return sum(vals) / len(vals)

    @property
    def sla_rate(self) -> float:
        return self._mean(lambda s: s.sla_rate)

    @property
    def stp(self) -> float:
        return self._mean(lambda s: s.stp)

    @property
    def stp_normalized(self) -> float:
        return self._mean(lambda s: s.stp_normalized)

    @property
    def fairness(self) -> float:
        return self._mean(lambda s: s.fairness)

    @property
    def mean_slowdown(self) -> float:
        return self._mean(lambda s: s.mean_slowdown)

    @property
    def p99_slowdown(self) -> float:
        return self._mean(lambda s: s.p99_slowdown)

    def sla_group(self, group: str) -> float:
        vals = [
            s.sla_by_group[group]
            for s in self.per_seed
            if group in s.sla_by_group
        ]
        if not vals:
            raise KeyError(f"no tasks in group {group!r}")
        return sum(vals) / len(vals)


def run_cell_detail(
    spec: ScenarioSpec,
    policy_name: str,
    factory: PolicyFactory,
    seed: int,
    soc: Optional[SoCConfig] = None,
    solver: Optional[str] = None,
) -> Tuple[MetricsSummary, "SimResult"]:
    """Run one cell; return its metric bundle *and* the raw
    :class:`~repro.sim.engine.SimResult`.

    This is the single source of truth for how a cell is built —
    the serial loop below and the parallel executor's workers both
    call it, which is what makes the two paths bit-identical.  The
    cell is a pure function of its arguments: the workload generator
    reseeds from ``seed``, the engine is exactly deterministic, and
    the scenario's :meth:`~repro.scenarios.ScenarioSpec.cadence`
    regulates when the policy is consulted.  The ``SimResult``
    carries the engine/decision telemetry (events, epoch-cache
    reuse, plans emitted/applied/no-op) the streaming executor
    threads into each :class:`~repro.experiments.results.CellResult`.

    ``solver`` picks the engine's block-time solver (``None`` = the
    engine default); all solvers are pinned bit-identical, so this is
    an operational knob, never part of the cell's identity.
    """
    if soc is None:
        soc = DEFAULT_SOC
    mem = MemoryHierarchy.from_soc(soc)
    qos = QosModel(soc, slack_factor=spec.slack_factor)
    networks: List[Network] = spec.networks()
    gen = WorkloadGenerator(soc, networks, mem, qos)
    tasks = gen.generate(spec.workload_config(seed))
    kwargs = {} if solver is None else {"solver": solver}
    result = run_simulation(
        soc, tasks, factory(), mem=mem, cadence=spec.cadence(),
        **kwargs,
    )
    return summarize(policy_name, result.results), result


def run_cell(
    spec: ScenarioSpec,
    policy_name: str,
    factory: PolicyFactory,
    seed: int,
    soc: Optional[SoCConfig] = None,
) -> MetricsSummary:
    """Run one (scenario, policy, seed) cell of the evaluation matrix
    (see :func:`run_cell_detail`, which this wraps)."""
    return run_cell_detail(spec, policy_name, factory, seed, soc)[0]


def run_scenario(
    spec: ScenarioLike,
    policies: Optional[Dict[str, PolicyFactory]] = None,
    soc: Optional[SoCConfig] = None,
    workers: int = 1,
) -> Dict[str, ScenarioResult]:
    """Run one scenario (spec or registry name) for every policy
    across all seeds.

    ``workers > 1`` (or ``0`` for auto) delegates the policy x seed
    cells to :class:`repro.experiments.parallel.ParallelRunner`; the
    results are numerically identical to the serial path.
    """
    spec = resolve_scenario(spec)
    if workers != 1:
        return _parallel_runner(workers).run_scenario(spec, policies, soc)
    if policies is None:
        policies = default_policies()

    out: Dict[str, ScenarioResult] = {}
    for name, factory in policies.items():
        summaries = [
            run_cell(spec, name, factory, seed, soc)
            for seed in spec.seeds
        ]
        out[name] = ScenarioResult(
            policy=name, spec=spec, per_seed=tuple(summaries)
        )
    return out


def standard_matrix(
    num_tasks: int = 250,
    seeds: Tuple[int, ...] = (1, 2, 3),
    load_factor: float = 0.7,
    slack_factor: float = 2.0,
) -> List[ScenarioSpec]:
    """The paper's nine scenarios: 3 workload sets x 3 QoS levels.

    Built from :func:`repro.scenarios.reference_matrix_specs` — the
    immutable source the registry's ``ref-*`` entries are also
    registered from — so registry mutation cannot perturb fig5-8.
    The specs are unnamed, keeping the classic
    ``Workload-<set>/<QoS>`` labels fig5-8 render.
    """
    return [
        replace(
            spec,
            num_tasks=num_tasks,
            seeds=tuple(seeds),
            load_factor=load_factor,
            slack_factor=slack_factor,
        )
        for spec in reference_matrix_specs()
    ]


def run_matrix(
    specs: Sequence[ScenarioLike],
    policies: Optional[Dict[str, PolicyFactory]] = None,
    soc: Optional[SoCConfig] = None,
    workers: int = 1,
) -> Dict[str, Dict[str, ScenarioResult]]:
    """Run every scenario (specs and/or registry names); returns
    ``{scenario label: {policy: result}}``.

    ``workers > 1`` (or ``0`` for auto) fans all (scenario, policy,
    seed) cells across a process pool — see
    :mod:`repro.experiments.parallel`.
    """
    resolved = resolve_scenarios(specs)
    if workers != 1:
        # ParallelRunner.run_matrix performs its own label check.
        return _parallel_runner(workers).run_matrix(resolved, policies, soc)
    check_unique_labels(resolved)
    return {
        spec.label: run_scenario(spec, policies, soc)
        for spec in resolved
    }


def improvement_ratios(
    matrix: Dict[str, Dict[str, ScenarioResult]],
    metric: str,
    over: str,
    of: str = "moca",
) -> Dict[str, float]:
    """Per-scenario ratio of ``of``'s metric over ``over``'s."""
    ratios = {}
    for label, cell in matrix.items():
        denom = getattr(cell[over], metric)
        num = getattr(cell[of], metric)
        if denom > 0:
            ratios[label] = num / denom
    return ratios


def geomean_improvement(
    matrix: Dict[str, Dict[str, ScenarioResult]],
    metric: str,
    over: str,
    of: str = "moca",
) -> float:
    """Geometric-mean improvement of ``of`` over ``over`` on a metric."""
    ratios = improvement_ratios(matrix, metric, over, of)
    return geomean(ratios.values())


def format_matrix_table(
    matrix: Dict[str, Dict[str, ScenarioResult]],
    metric: str,
    title: str,
) -> str:
    """Render one metric across the whole matrix as aligned text."""
    lines = [title, f"{'scenario':<22s}" + "".join(
        f"{p:>10s}" for p in POLICY_ORDER
    )]
    for label, cell in matrix.items():
        row = f"{label:<22s}"
        for policy in POLICY_ORDER:
            if policy in cell:
                row += f"{getattr(cell[policy], metric):>10.3f}"
            else:
                row += f"{'-':>10s}"
        lines.append(row)
    return "\n".join(lines)
