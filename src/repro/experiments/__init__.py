"""Experiment harness: one module per paper figure/table (DESIGN.md §3)."""

from repro.experiments.execution import (
    Coordinator,
    CoordinatorServer,
    HttpTransport,
    InProcessTransport,
    SweepWorker,
    Transport,
    TransportError,
    WorkLedger,
)
from repro.experiments.parallel import CellTiming, ParallelRunner
from repro.experiments.results import (
    CellResult,
    SweepResults,
    cell_manifest,
)
from repro.experiments.runner import (
    PolicyFactory,
    ScenarioResult,
    ScenarioSpec,
    default_policies,
    run_cell,
    run_matrix,
    run_scenario,
)
from repro.experiments.sharding import (
    ShardPlan,
    manifest_digest,
    merge_partials,
    run_shard,
)

__all__ = [
    "CellResult",
    "CellTiming",
    "Coordinator",
    "CoordinatorServer",
    "HttpTransport",
    "InProcessTransport",
    "ParallelRunner",
    "PolicyFactory",
    "ScenarioResult",
    "ScenarioSpec",
    "ShardPlan",
    "SweepResults",
    "SweepWorker",
    "Transport",
    "TransportError",
    "WorkLedger",
    "cell_manifest",
    "default_policies",
    "manifest_digest",
    "merge_partials",
    "run_cell",
    "run_matrix",
    "run_scenario",
    "run_shard",
]
