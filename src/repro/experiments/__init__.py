"""Experiment harness: one module per paper figure/table (DESIGN.md §3)."""

from repro.experiments.parallel import CellTiming, ParallelRunner
from repro.experiments.runner import (
    PolicyFactory,
    ScenarioResult,
    ScenarioSpec,
    default_policies,
    run_cell,
    run_matrix,
    run_scenario,
)

__all__ = [
    "CellTiming",
    "ParallelRunner",
    "PolicyFactory",
    "ScenarioResult",
    "ScenarioSpec",
    "default_policies",
    "run_cell",
    "run_matrix",
    "run_scenario",
]
