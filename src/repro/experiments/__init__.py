"""Experiment harness: one module per paper figure/table (DESIGN.md §3)."""

from repro.experiments.runner import (
    PolicyFactory,
    ScenarioResult,
    ScenarioSpec,
    default_policies,
    run_matrix,
    run_scenario,
)

__all__ = [
    "PolicyFactory",
    "ScenarioResult",
    "ScenarioSpec",
    "default_policies",
    "run_matrix",
    "run_scenario",
]
