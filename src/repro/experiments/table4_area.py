"""Table IV: area breakdown of a MoCA-enabled accelerator tile.

The component areas come from the paper's GF 12 nm synthesis + P&R
(they are data, not something a Python model can re-derive); this
experiment reproduces the *accounting*: per-component percentages, the
MoCA engine's overhead relative to the memory interface and to the
whole tile, and the SoC-level totals for the 8-tile configuration.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.accelerator.area import AreaModel
from repro.config import DEFAULT_SOC, SoCConfig


def run_table4(soc: SoCConfig = DEFAULT_SOC) -> Tuple[AreaModel, dict]:
    """Build the area model and the headline overhead numbers."""
    model = AreaModel()
    headline = {
        "moca_pct_of_tile": 100.0 * model.moca_overhead_of_tile,
        "moca_pct_of_memory_interface": (
            100.0 * model.moca_overhead_of_memory_interface
        ),
        "memory_interface_pct_of_tile": (
            100.0 * model.fraction_of_tile("memory_interface")
        ),
        "soc_total_mm2": model.soc_accelerator_area_um2(soc.num_tiles) / 1e6,
    }
    return model, headline


def format_table4(soc: SoCConfig = DEFAULT_SOC) -> str:
    """Render Table IV plus the paper's overhead claims."""
    model, headline = run_table4(soc)
    lines: List[str] = [model.format_table(), ""]
    lines.append(
        f"MoCA hardware: {headline['moca_pct_of_tile']:.3f}% of tile area "
        "(paper: 0.02%)"
    )
    lines.append(
        f"MoCA hardware vs memory interface: "
        f"{headline['moca_pct_of_memory_interface']:.2f}% "
        "(paper: grows the memory interface by ~1.7% of its size)"
    )
    lines.append(
        f"{soc.num_tiles}-tile SoC accelerator area: "
        f"{headline['soc_total_mm2']:.2f} mm^2"
    )
    return "\n".join(lines)
