"""Figure 8: fairness normalized to Planaria.

Same nine scenarios; the metric is Equation 1's priority-weighted
proportional-progress fairness, each bar normalized to Planaria.
Shapes to hold: MoCA improves fairness over every baseline (paper:
1.8x geomean over Prema, 1.07x over static, 1.2x over Planaria), with
the largest benefit on Workload-B where memory-intensive layers starve
co-runners without regulation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.config import SoCConfig
from repro.experiments.fig5_sla import Matrix, run_fig5
from repro.experiments.runner import (
    POLICY_ORDER,
    ScenarioSpec,
    geomean_improvement,
)


def run_fig8(
    num_tasks: int = 250,
    seeds: Tuple[int, ...] = (1, 2, 3),
    soc: Optional[SoCConfig] = None,
    specs: Optional[Sequence[ScenarioSpec]] = None,
) -> Matrix:
    """Figure 8 reuses the Figure 5 matrix (same simulations)."""
    return run_fig5(num_tasks=num_tasks, seeds=seeds, soc=soc, specs=specs)


def fairness_normalized_to_planaria(
    matrix: Matrix,
) -> Dict[str, Dict[str, float]]:
    """``{scenario: {policy: fairness / Planaria's fairness}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for label, cell in matrix.items():
        base = cell["planaria"].fairness
        out[label] = {
            policy: (result.fairness / base if base > 0 else float("nan"))
            for policy, result in cell.items()
        }
    return out


def format_fig8(matrix: Matrix) -> str:
    """Render Figure 8 plus summary ratios."""
    norm = fairness_normalized_to_planaria(matrix)
    lines = [
        "Figure 8: fairness normalized to Planaria",
        f"{'scenario':<22s}" + "".join(f"{p:>10s}" for p in POLICY_ORDER),
    ]
    for label, row in norm.items():
        line = f"{label:<22s}"
        for policy in POLICY_ORDER:
            line += f"{row.get(policy, float('nan')):>10.3f}"
        lines.append(line)
    lines.append("")
    lines.append("MoCA fairness improvement (geomean):")
    for baseline in ("prema", "static", "planaria"):
        geo = geomean_improvement(matrix, "fairness", baseline)
        lines.append(
            f"  vs {baseline:<9s} x{geo:.2f} "
            f"(paper: {_PAPER_FAIRNESS[baseline]})"
        )
    return "\n".join(lines)


_PAPER_FAIRNESS = {
    "prema": "1.8x geomean, 2.4x max",
    "static": "1.07x geomean, 1.2x max",
    "planaria": "1.2x geomean, 1.3x max",
}
