"""Deterministic, seeded fault injection for the sweep pipeline.

Failure paths are only trustworthy if they are *testable*, and they
are only testable if failures can be produced on demand, on the exact
cell, on the exact attempt, every time.  This module is that harness:
a :class:`FaultPlan` names which cells fail, how, and on which
attempts, and the decision is a pure function of ``(plan, cell index,
attempt)`` — no wall clock, no ambient randomness — so a test (or
``scripts/ci.sh``) that injects a worker crash reproduces byte-for-
byte on every run.

Fault kinds
-----------

``crash``
    The worker process dies via ``os._exit`` — the hard way, no
    cleanup handlers — which surfaces to the parent as a
    ``BrokenProcessPool``.  Only ever fires inside a pool worker
    (detected via the install flag the pool initializer sets);
    injecting it into the parent would kill the harness itself.
``hang``
    The cell sleeps ``seconds`` (default far beyond any sane cell
    time) before running, exercising the supervisor's wall-clock cell
    timeout.  Worker-only, like ``crash``.
``transient``
    Raises :class:`~repro.sim.engine.SimulationError` before the cell
    runs — the retryable failure class.  Fires anywhere (workers and
    the in-process serial path), so retry/backoff is testable without
    a pool.
``corrupt``
    Does nothing inside the worker; instead the *parent* consults
    :meth:`FaultPlan.corrupts` when persisting the cell's journal
    entry and flips a byte in the serialized payload
    (:func:`corrupt_bytes`).  The checkpoint reader's per-line
    checksum must then detect the damage and treat the cell as
    missing — corruption degrades to a re-run, never to silently
    wrong bytes.

Activation
----------

A plan is *installed* process-globally (:func:`install_plan`) — in
workers via the pool initializer (every worker of a pool sees the
same plan), in the parent by the supervised serial path.  The
``in_worker`` flag recorded at install time gates the process-fatal
kinds.  ``_run_cell`` consults :func:`maybe_inject` exactly once per
execution attempt.

Attempt gating makes retry semantics testable: a rule with
``attempts=1`` fires only on the first attempt (a retried cell
succeeds — the transient-fault shape), while ``attempts=ALL_ATTEMPTS``
fires forever (the poison-cell shape the quarantine path exists for).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "ALL_ATTEMPTS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "clear_plan",
    "corrupt_bytes",
    "install_plan",
    "installed_plan",
    "maybe_inject",
]

#: The injectable failure modes.
FAULT_KINDS = ("crash", "hang", "transient", "corrupt")

#: Sentinel ``attempts`` value: the rule fires on every attempt (a
#: persistently failing "poison" cell that must end up quarantined).
ALL_ATTEMPTS = 0

#: Exit status an injected crash dies with — distinctive enough to
#: recognise in a worker post-mortem, meaningless otherwise.
CRASH_EXIT_STATUS = 86


@dataclass(frozen=True)
class FaultRule:
    """One deterministic injection rule.

    A rule selects cells either *explicitly* (``cells``) or
    *statistically* (``rate`` of all cells, chosen by a seeded hash —
    still fully deterministic: the same ``(seed, index)`` always makes
    the same draw).  ``attempts`` bounds which execution attempts
    fire: attempt numbers below it do, so ``attempts=1`` means "first
    try only" and :data:`ALL_ATTEMPTS` (0) means "every try".

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        cells: Explicit global cell indices to hit, or ``None`` to
            select by ``rate``.
        rate: Probability in ``[0, 1]`` that a given cell is hit when
            ``cells`` is ``None``.
        seed: Seed of the per-cell selection hash.
        attempts: Fire on attempt numbers ``< attempts``;
            :data:`ALL_ATTEMPTS` fires on every attempt.
        seconds: Sleep duration for ``hang`` rules.
    """

    kind: str
    cells: Optional[Tuple[int, ...]] = None
    rate: float = 0.0
    seed: int = 0
    attempts: int = 1
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.cells is None and not 0.0 < self.rate <= 1.0:
            raise ValueError(
                f"fault rule needs cells=I,J,... or rate in (0, 1]; "
                f"got rate={self.rate}"
            )
        if self.cells is not None:
            if not self.cells:
                raise ValueError("cells= must name at least one index")
            if any(i < 0 for i in self.cells):
                raise ValueError("cell indices must be >= 0")
        if self.attempts < 0:
            raise ValueError(
                "attempts must be >= 1, or 0/'all' for every attempt"
            )
        if self.seconds <= 0:
            raise ValueError("hang seconds must be positive")

    def selects(self, index: int) -> bool:
        """Whether this rule targets cell ``index`` (attempt-agnostic)."""
        if self.cells is not None:
            return index in self.cells
        return _uniform(self.seed, index) < self.rate

    def fires(self, index: int, attempt: int) -> bool:
        """Whether this rule fires on ``(index, attempt)``."""
        if not self.selects(index):
            return False
        return self.attempts == ALL_ATTEMPTS or attempt < self.attempts


def _uniform(seed: int, index: int) -> float:
    """Deterministic uniform draw in [0, 1) for (seed, cell index).

    SHA-256 based rather than ``random.Random`` so the value is
    stable across Python versions and processes — fault selection is
    part of reproducibility.
    """
    digest = hashlib.sha256(f"fault:{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultRule`\\ s.

    The first matching rule wins (evaluation order is rule order), so
    a plan can e.g. crash cell 3 while transiently failing 10% of the
    rest.  Plans are frozen dataclasses of primitives — they pickle
    across the pool initializer boundary and compare by value.
    """

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def fault_for(self, index: int, attempt: int) -> Optional[FaultRule]:
        """The first rule firing on ``(index, attempt)``, if any.

        ``corrupt`` rules never fire here — they act at persistence
        time via :meth:`corrupts`, not at execution time.
        """
        for rule in self.rules:
            if rule.kind != "corrupt" and rule.fires(index, attempt):
                return rule
        return None

    def corrupts(self, index: int) -> bool:
        """Whether a ``corrupt`` rule targets cell ``index``."""
        return any(
            rule.kind == "corrupt" and rule.selects(index)
            for rule in self.rules
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--inject-faults`` specification.

        Grammar: rules separated by ``;``, each rule
        ``KIND[:key=value]...`` with keys ``cells`` (comma-separated
        indices), ``rate``, ``seed``, ``attempts`` (integer or
        ``all``), ``seconds``.  Examples::

            crash:cells=2
            crash:cells=2:attempts=all
            transient:rate=0.25:seed=7
            hang:cells=1:seconds=30;transient:cells=0:attempts=2
            corrupt:cells=4

        Raises:
            ValueError: On malformed specs, with a message naming the
                offending fragment.
        """
        rules = []
        for fragment in spec.split(";"):
            fragment = fragment.strip()
            if not fragment:
                raise ValueError(
                    f"empty fault rule in {spec!r} (doubled or "
                    f"trailing ';'?)"
                )
            parts = fragment.split(":")
            kind = parts[0].strip()
            kwargs: dict = {"kind": kind}
            for part in parts[1:]:
                if "=" not in part:
                    raise ValueError(
                        f"malformed fault option {part!r} in "
                        f"{fragment!r} (expected key=value)"
                    )
                key, _, value = part.partition("=")
                key, value = key.strip(), value.strip()
                try:
                    if key == "cells":
                        kwargs["cells"] = tuple(
                            int(v) for v in value.split(",") if v.strip()
                        )
                    elif key == "rate":
                        kwargs["rate"] = float(value)
                    elif key == "seed":
                        kwargs["seed"] = int(value)
                    elif key == "attempts":
                        kwargs["attempts"] = (
                            ALL_ATTEMPTS if value == "all" else int(value)
                        )
                    elif key == "seconds":
                        kwargs["seconds"] = float(value)
                    else:
                        raise ValueError(
                            f"unknown fault option {key!r} in "
                            f"{fragment!r}; choose from cells, rate, "
                            f"seed, attempts, seconds"
                        )
                except ValueError as exc:
                    if "fault option" in str(exc):
                        raise
                    raise ValueError(
                        f"bad value for {key}= in {fragment!r}: {exc}"
                    ) from None
            try:
                rules.append(FaultRule(**kwargs))
            except ValueError as exc:
                raise ValueError(f"bad fault rule {fragment!r}: {exc}")
        return cls(rules=tuple(rules))


# ----------------------------------------------------------------------
# Process-global activation
# ----------------------------------------------------------------------

_ACTIVE_PLAN: Optional[FaultPlan] = None
_IN_WORKER = False


def install_plan(plan: Optional[FaultPlan], in_worker: bool) -> None:
    """Activate ``plan`` in this process (``None`` deactivates).

    ``in_worker`` records whether this process is a disposable pool
    worker; the process-fatal kinds (``crash``, ``hang``) only fire
    when it is.
    """
    global _ACTIVE_PLAN, _IN_WORKER
    _ACTIVE_PLAN = plan
    _IN_WORKER = in_worker


def clear_plan() -> None:
    """Deactivate any installed plan in this process."""
    install_plan(None, in_worker=False)


def activate_in_worker_process(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` treating the *whole current process* as the
    disposable worker.

    ``sweep --worker URL --inject-faults`` uses this: the entire
    worker process is expendable from the coordinator's point of view
    (its leases expire and the work is re-leased), so ``crash`` kills
    the process itself — deterministically, with
    :data:`CRASH_EXIT_STATUS` — instead of being suppressed as it is
    in a supervising parent.  This must NOT be combined with routing
    the same plan through ``Supervision`` (which installs it
    parent-side with the fatal kinds suppressed, then clears it when
    the supervised run returns).
    """
    install_plan(plan, in_worker=True)


def installed_plan() -> Optional[FaultPlan]:
    """The plan active in this process, if any."""
    return _ACTIVE_PLAN


def maybe_inject(index: int, attempt: int) -> None:
    """Fire the installed plan's fault for ``(index, attempt)``, if any.

    Called once per cell execution attempt (by
    :func:`repro.experiments.parallel._run_cell`).  No-op without an
    installed plan.  ``crash`` and ``hang`` are suppressed outside
    pool workers — a plan meant for a pool must not take down a
    serial run or the supervising parent.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    rule = plan.fault_for(index, attempt)
    if rule is None:
        return
    if rule.kind == "crash":
        if _IN_WORKER:
            os._exit(CRASH_EXIT_STATUS)
        return
    if rule.kind == "hang":
        if _IN_WORKER:
            time.sleep(rule.seconds)
        return
    if rule.kind == "transient":
        from repro.sim.engine import SimulationError

        raise SimulationError(
            f"injected transient fault (cell {index}, "
            f"attempt {attempt})"
        )


def corrupt_bytes(data: bytes, seed: int = 0) -> bytes:
    """Deterministically damage ``data`` (flip one byte).

    The position and XOR mask derive from a hash of ``(seed,
    len(data))``, so the same input corrupts the same way every time —
    corruption-detection tests stay reproducible.  The flipped byte is
    never a newline (and never flips *to* one): journal corruption
    must damage a line's content, not its framing.
    """
    if not data:
        return data
    digest = hashlib.sha256(f"corrupt:{seed}:{len(data)}".encode()).digest()
    out = bytearray(data)
    pos = int.from_bytes(digest[:4], "big") % len(out)
    for offset in range(len(out)):
        i = (pos + offset) % len(out)
        flipped = out[i] ^ (digest[4] | 0x01)
        if out[i] != 0x0A and flipped != 0x0A:
            out[i] = flipped
            break
    return bytes(out)
